//! Exhaustive verification on a tiny format.
//!
//! For an 8-bit format (1 + 3 + 4) the full operand space is 256×256
//! pairs — small enough to check **every** addition, subtraction,
//! multiplication and division against an exact rational-arithmetic
//! oracle built from integers, with round-to-nearest-even and truncation
//! resolved by hand. This is independent of native IEEE hardware and of
//! the implementation's own shift/sticky machinery, so it catches any
//! systematic rounding defect the sampled property tests might miss.

use fpfpga_softfp::{add_bits, div_bits, mul_bits, sqrt_bits, sub_bits, FpFormat, RoundMode};

const FMT: FpFormat = FpFormat::new(3, 4);

/// A value of the tiny format as an exact rational `num / 2^scale`
/// (num may be negative), or a special.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Exact {
    /// num / 2^scale; num == 0 encodes a (signed) zero.
    Finite {
        num: i128,
        scale: u32,
        sign: bool,
    },
    Inf(bool),
}

/// Decode an encoding into the exact value (flush-to-zero semantics:
/// denormal encodings read as zero; all-ones exponent is ±∞).
fn decode(bits: u64) -> Exact {
    let (sign, e, f) = FMT.unpack_fields(bits);
    if e == FMT.inf_biased_exp() {
        return Exact::Inf(sign);
    }
    if e == 0 {
        return Exact::Finite {
            num: 0,
            scale: 0,
            sign,
        };
    }
    // value = (2^4 + f) · 2^(e - bias - 4)
    let sig = (1i128 << 4) + f as i128;
    let exp = e as i32 - FMT.bias() - 4;
    let (num, scale) = if exp >= 0 {
        (sig << exp, 0)
    } else {
        (sig, (-exp) as u32)
    };
    Exact::Finite {
        num: if sign { -num } else { num },
        scale,
        sign,
    }
}

/// Round an exact non-zero rational to the format under the library's
/// documented semantics: normalize exactly, round the significand to
/// 4 fraction bits (nearest-even or truncate), then range-check the
/// exponent — overflow saturates (±∞ for nearest, ±max-finite for
/// truncate), underflow flushes to signed zero. All arithmetic here is
/// exact integer arithmetic on `num / 2^scale`.
fn round_exact(num: i128, scale: u32, mode: RoundMode) -> u64 {
    assert!(num != 0);
    let sign = num < 0;
    let xn = num.unsigned_abs();
    let msb = 127 - xn.leading_zeros(); // position of the leading one
    let e = msb as i32 - scale as i32; // |x| = m·2^e with m ∈ [1,2)
                                       // Significand scaled to 4 fraction bits: q + rem/2^msb with q ∈ [16,32).
    let num16 = xn << 4;
    let mut q = (num16 >> msb) as u64;
    let rem = if msb == 0 {
        0u128
    } else {
        num16 & ((1u128 << msb) - 1)
    };
    let mut e = e;
    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            if rem == 0 {
                false
            } else {
                let half = 1u128 << (msb - 1);
                rem > half || (rem == half && q & 1 == 1)
            }
        }
    };
    q += round_up as u64;
    if q == 32 {
        q = 16;
        e += 1;
    }
    let sign_bit = (sign as u64) << FMT.sign_shift();
    if e > FMT.max_exp() {
        return match mode {
            RoundMode::NearestEven => FMT.pos_inf() | sign_bit,
            RoundMode::Truncate => FMT.max_finite() | sign_bit,
        };
    }
    if e < FMT.min_exp() {
        return sign_bit; // flush to signed zero
    }
    FMT.pack(sign, (e + FMT.bias()) as u64, q - 16)
}

/// Oracle for a binary op under flush-to-zero / no-NaN semantics.
fn oracle(op: char, a: u64, b: u64, mode: RoundMode) -> Option<u64> {
    let (x, y) = (decode(a), decode(b));
    use Exact::*;
    // Specials mirror the library's documented rules; return None where
    // the oracle chooses not to model (none — all cases covered).
    let fin = |e: &Exact| matches!(e, Finite { .. });
    match op {
        '+' => match (x, y) {
            (Inf(s1), Inf(s2)) => Some(if s1 == s2 {
                FMT.pack(s1, FMT.inf_biased_exp(), 0)
            } else {
                FMT.pos_inf()
            }),
            (Inf(s), _) => Some(FMT.pack(s, FMT.inf_biased_exp(), 0)),
            (_, Inf(s)) => Some(FMT.pack(s, FMT.inf_biased_exp(), 0)),
            (
                Finite {
                    num: n1,
                    scale: s1,
                    sign: g1,
                },
                Finite {
                    num: n2,
                    scale: s2,
                    sign: g2,
                },
            ) => {
                let s = s1.max(s2);
                let sum = (n1 << (s - s1)) + (n2 << (s - s2));
                if sum == 0 {
                    // exact zero: +0 unless both zeros are negative
                    let both_neg_zero = n1 == 0 && n2 == 0 && g1 && g2;
                    Some(if both_neg_zero {
                        FMT.pack(true, 0, 0)
                    } else {
                        0
                    })
                } else if n1 == 0 {
                    Some(b) // x + (±0) returns the other operand bit-exactly
                } else if n2 == 0 {
                    Some(a)
                } else {
                    Some(round_exact(sum, s, mode))
                }
            }
        },
        '*' => match (x, y) {
            (Inf(_), Finite { num: 0, .. }) | (Finite { num: 0, .. }, Inf(_)) => Some(0),
            (Inf(s1), Inf(s2)) => Some(FMT.pack(s1 ^ s2, FMT.inf_biased_exp(), 0)),
            (Inf(s1), Finite { sign, .. }) | (Finite { sign, .. }, Inf(s1)) => {
                Some(FMT.pack(s1 ^ sign, FMT.inf_biased_exp(), 0))
            }
            (
                Finite {
                    num: n1,
                    scale: s1,
                    sign: g1,
                },
                Finite {
                    num: n2,
                    scale: s2,
                    sign: g2,
                },
            ) => {
                if n1 == 0 || n2 == 0 {
                    Some(FMT.pack(g1 ^ g2, 0, 0))
                } else {
                    let prod = n1 * n2;
                    debug_assert!(prod != 0);
                    Some(round_exact(prod, s1 + s2, mode))
                }
            }
        },
        '/' => match (x, y) {
            (Finite { num: 0, .. }, Finite { num: 0, .. }) => Some(0), // invalid → +0
            (Inf(_), Inf(_)) => Some(FMT.pos_inf()),                   // invalid → +∞
            (Inf(s1), Finite { sign, .. }) => Some(FMT.pack(s1 ^ sign, FMT.inf_biased_exp(), 0)),
            (Finite { sign, .. }, Inf(s2)) => Some(FMT.pack(sign ^ s2, 0, 0)),
            (
                Finite {
                    num: 0, sign: g1, ..
                },
                Finite { sign: g2, .. },
            ) => Some(FMT.pack(g1 ^ g2, 0, 0)),
            (
                Finite { sign: g1, .. },
                Finite {
                    num: 0, sign: g2, ..
                },
            ) => Some(FMT.pack(g1 ^ g2, FMT.inf_biased_exp(), 0)),
            (
                Finite {
                    num: n1, scale: s1, ..
                },
                Finite {
                    num: n2, scale: s2, ..
                },
            ) if fin(&x) => {
                // x/y = (n1·2^s2)/(n2·2^s1); scale numerator up enough
                // that truncation error is below any rounding boundary,
                // and track exactness via the remainder.
                let sign = (n1 < 0) ^ (n2 < 0);
                let (a_n, b_n) = (n1.unsigned_abs() as i128, n2.unsigned_abs() as i128);
                const EXTRA: u32 = 40;
                let num = (a_n << (s2 + EXTRA)) / b_n;
                let rem = (a_n << (s2 + EXTRA)) % b_n;
                // A nonzero remainder perturbs the value by < 2^-EXTRA
                // ulps of the guard field; jam it like the hardware does.
                let num = num | (rem != 0) as i128;
                let signed = if sign { -num } else { num };
                Some(round_exact(signed, s1 + EXTRA, mode))
            }
            _ => unreachable!(),
        },
        _ => unreachable!(),
    }
}

#[test]
fn exhaustive_add_nearest_even() {
    exhaustive_binary('+', RoundMode::NearestEven, |a, b| {
        add_bits(FMT, a, b, RoundMode::NearestEven).0
    });
}

#[test]
fn exhaustive_add_truncate() {
    exhaustive_binary('+', RoundMode::Truncate, |a, b| {
        add_bits(FMT, a, b, RoundMode::Truncate).0
    });
}

#[test]
fn exhaustive_mul_nearest_even() {
    exhaustive_binary('*', RoundMode::NearestEven, |a, b| {
        mul_bits(FMT, a, b, RoundMode::NearestEven).0
    });
}

#[test]
fn exhaustive_mul_truncate() {
    exhaustive_binary('*', RoundMode::Truncate, |a, b| {
        mul_bits(FMT, a, b, RoundMode::Truncate).0
    });
}

#[test]
fn exhaustive_div_nearest_even() {
    exhaustive_binary('/', RoundMode::NearestEven, |a, b| {
        div_bits(FMT, a, b, RoundMode::NearestEven).0
    });
}

#[test]
fn exhaustive_sub_consistent_with_add() {
    // a − b must equal a + (−b) for every pair.
    for a in 0..=FMT.enc_mask() {
        for b in 0..=FMT.enc_mask() {
            let (s, fs) = sub_bits(FMT, a, b, RoundMode::NearestEven);
            let nb = b ^ (1 << FMT.sign_shift());
            let (t, ft) = add_bits(FMT, a, nb, RoundMode::NearestEven);
            assert_eq!((s, fs), (t, ft), "a={a:#x} b={b:#x}");
        }
    }
}

#[test]
fn exhaustive_sqrt_squares() {
    // For every non-negative finite input: result is the correctly
    // rounded root — verified via the square bracketing r² ≤ x < (r+ulp)²
    // in exact arithmetic (round-to-nearest needs the midpoint test).
    for a in 0..=FMT.enc_mask() >> 1 {
        let (r, _) = sqrt_bits(FMT, a, RoundMode::NearestEven);
        match (decode(a), decode(r)) {
            (Exact::Inf(false), Exact::Inf(false)) => {}
            (Exact::Finite { num: 0, .. }, Exact::Finite { num: 0, .. }) => {}
            (
                Exact::Finite { num, scale, .. },
                Exact::Finite {
                    num: rn, scale: rs, ..
                },
            ) => {
                assert!(num >= 0);
                if num == 0 {
                    continue;
                }
                // |x - r²| must be minimal: check both neighbours of r.
                let err = |cn: i128, cs: u32| -> (i128, u32) {
                    // |x - c²| = |num·2^(2cs) - cn²·2^scale| / 2^(scale+2cs)
                    (((num) << (2 * cs)) - ((cn * cn) << scale))
                        .abs()
                        .pipe(|d| (d, scale + 2 * cs))
                };
                let (e0, s0) = err(rn, rs);
                for (nn, ns) in neighbours(r) {
                    let (e1, s1) = err(nn, ns);
                    let m = s0.max(s1);
                    assert!(
                        (e0 as u128) << (m - s0) <= (e1 as u128) << (m - s1),
                        "sqrt({a:#x}) = {r:#x} is not nearest"
                    );
                }
            }
            (x, y) => panic!("sqrt({a:#x}) = {r:#x}: unexpected classes {x:?} {y:?}"),
        }
    }
}

/// The finite decoded neighbours (one ulp down/up) of an encoding.
fn neighbours(r: u64) -> Vec<(i128, u32)> {
    let mut out = Vec::new();
    for cand in [r.wrapping_sub(1), r + 1] {
        if cand <= FMT.max_finite() {
            if let Exact::Finite { num, scale, .. } = decode(cand) {
                if num > 0 {
                    out.push((num, scale));
                }
            }
        }
    }
    out
}

trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl<T> Pipe for T {}

fn exhaustive_binary(op: char, mode: RoundMode, f: impl Fn(u64, u64) -> u64) {
    let mut checked = 0u64;
    for a in 0..=FMT.enc_mask() {
        for b in 0..=FMT.enc_mask() {
            if let Some(want) = oracle(op, a, b, mode) {
                let got = f(a, b);
                assert_eq!(
                    got, want,
                    "{a:#04x} {op} {b:#04x} ({mode:?}): got {got:#04x}, oracle {want:#04x}"
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 256 * 256, "oracle must cover the whole space");
}
