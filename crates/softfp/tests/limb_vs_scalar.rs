//! Differential property suite: for every format that fits in 64 bits,
//! the limb kernels must be *bit-identical* — result encoding AND
//! exception flags — to the scalar IEEE reference (`softfp::ieee`).
//!
//! This is the reduction proof for the `softfp::limb` tentpole: narrow
//! formats take the exact same decisions (swap rule, sticky jams,
//! rounding boundary, after-rounding tininess, NaN precedence) through
//! the multi-limb datapath as through the scalar one, so a single test
//! oracle covers both.
//!
//! On a mismatch the failing case is first minimized with the
//! conformance harness's greedy reducer and reported in the one-line
//! `conform` reproducer format, ready to be appended to
//! `crates/conform/tests/conform_corpus/`.

use fpfpga_conform::diff::{Case, Op};
use fpfpga_conform::shrink::{minimize_with, render_case};
use fpfpga_softfp::ieee::{ieee_add, ieee_fma, ieee_mul, ieee_sub, quiet_nan};
use fpfpga_softfp::limb::{limb_add, limb_fma, limb_mul, limb_sub, LimbFormat};
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use proptest::prelude::*;

/// Scalar reference result for one case.
fn scalar_eval(case: &Case) -> (u64, Flags) {
    let (f, m) = (case.fmt, case.mode);
    match case.op {
        Op::Add => ieee_add(f, case.a, case.b, m),
        Op::Sub => ieee_sub(f, case.a, case.b, m),
        Op::Mul => ieee_mul(f, case.a, case.b, m),
        Op::Fma => ieee_fma(f, case.a, case.b, case.c, m),
        other => unreachable!("op {other:?} has no limb kernel"),
    }
}

/// Same case through the limb datapath; a ≤64-bit format packs into a
/// single limb, so the result vector is exactly one limb long.
fn limb_eval(case: &Case) -> (u64, Flags) {
    let fmt = LimbFormat::from_fp(case.fmt);
    assert_eq!(fmt.limbs(), 1);
    let (bits, flags) = match case.op {
        Op::Add => limb_add(fmt, &[case.a], &[case.b], case.mode),
        Op::Sub => limb_sub(fmt, &[case.a], &[case.b], case.mode),
        Op::Mul => limb_mul(fmt, &[case.a], &[case.b], case.mode),
        Op::Fma => limb_fma(fmt, &[case.a], &[case.b], &[case.c], case.mode),
        other => unreachable!("op {other:?} has no limb kernel"),
    };
    (bits[0], flags)
}

fn diverges(case: &Case) -> bool {
    scalar_eval(case) != limb_eval(case)
}

/// Check one case; on divergence shrink it and fail with a reproducer.
fn check(case: Case) -> Result<(), String> {
    if !diverges(&case) {
        return Ok(());
    }
    let min = minimize_with(&case, diverges);
    let (sv, sf) = scalar_eval(&min);
    let (lv, lf) = limb_eval(&min);
    Err(format!(
        "limb kernel diverged from scalar ieee path\n  reproducer: {}\n  scalar {sv:#x} {sf:?}\n  limb   {lv:#x} {lf:?}",
        render_case(&min)
    ))
}

/// Random format geometry spanning the full legal scalar space:
/// exponent 2..=15 bits, fraction 2..=56 bits, total ≤ 64 bits.
fn formats() -> impl Strategy<Value = FpFormat> {
    (2u32..=15, 0u32..=54).prop_map(|(e, f_raw)| {
        let f_max = 56.min(63 - e);
        FpFormat::new(e, 2 + f_raw % (f_max - 1))
    })
}

fn modes() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

/// Turn a raw 64-bit draw plus a class selector into an operand that
/// exercises the interesting regions: raw patterns, signed specials,
/// NaNs (quiet and signaling), denormals and near-1 exponents so that
/// add/fma see heavy cancellation instead of always-dominant operands.
fn operand(fmt: FpFormat, raw: u64, class: u8) -> u64 {
    let mask = fmt.enc_mask();
    let sign = (raw >> 63) << (fmt.total_bits() - 1);
    match class % 8 {
        0 | 1 => raw & mask,
        2 => sign,                 // ±0
        3 => sign | fmt.pos_inf(), // ±inf
        4 => quiet_nan(fmt),       // qNaN
        // sNaN: quiet bit (fraction MSB) cleared, payload nonzero
        5 => (quiet_nan(fmt) ^ (1 << (fmt.frac_bits() - 1))) | 1,
        6 => sign | (raw & fmt.frac_mask()), // ±denormal
        _ => {
            // biased exponent squashed to bias ± 2: maximal overlap
            let e = (fmt.bias() as i64 + ((raw >> 48) % 5) as i64 - 2)
                .clamp(1, fmt.max_biased_exp() as i64) as u64;
            sign | (e << fmt.frac_bits()) | (raw & fmt.frac_mask())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn limb_add_sub_mul_match_scalar(
        fmt in formats(),
        mode in modes(),
        opsel in 0u8..3,
        ra in any::<u64>(),
        rb in any::<u64>(),
        ca in any::<u8>(),
        cb in any::<u8>(),
    ) {
        let op = [Op::Add, Op::Sub, Op::Mul][opsel as usize];
        let a = operand(fmt, ra, ca);
        let b = operand(fmt, rb, cb);
        check(Case { op, fmt, mode, a, b, c: 0 })?;
    }

    #[test]
    fn limb_fma_matches_scalar(
        fmt in formats(),
        mode in modes(),
        ra in any::<u64>(),
        rb in any::<u64>(),
        rc in any::<u64>(),
        ca in any::<u8>(),
        cb in any::<u8>(),
        cc in any::<u8>(),
    ) {
        let a = operand(fmt, ra, ca);
        let b = operand(fmt, rb, cb);
        let c = operand(fmt, rc, cc);
        check(Case { op: Op::Fma, fmt, mode, a, b, c })?;
    }
}

/// The named scalar formats, pinned explicitly (the random geometry
/// above could in principle under-sample them).
#[test]
fn named_formats_pinned() {
    let mut z = 0x1234_5678_9abc_def0u64;
    for fmt in [FpFormat::SINGLE, FpFormat::FP48, FpFormat::DOUBLE] {
        for _ in 0..20_000 {
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
            let a = operand(fmt, z, (z >> 8) as u8);
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
            let b = operand(fmt, z, (z >> 16) as u8);
            for mode in [RoundMode::NearestEven, RoundMode::Truncate] {
                for op in [Op::Add, Op::Sub, Op::Mul, Op::Fma] {
                    let c = z.rotate_left(23) & fmt.enc_mask();
                    if let Err(e) = check(Case {
                        op,
                        fmt,
                        mode,
                        a,
                        b,
                        c,
                    }) {
                        panic!("{e}");
                    }
                }
            }
        }
    }
}
