//! Reproduction of every table and figure in the paper's evaluation.
//!
//! Each function computes one artifact as plain data; the `repro` binary
//! in `fpfpga-bench` renders them as text, and the integration tests
//! assert the paper's qualitative claims against them. The experiment ↔
//! module map lives in `DESIGN.md`; paper-vs-measured numbers are
//! recorded in `EXPERIMENTS.md`.

use crate::prelude::*;
use fpfpga_fabric::report::ImplementationReport;

/// The tool flow used throughout the evaluation (the paper's throughput
/// numbers use speed objectives).
pub fn paper_flow() -> (Tech, SynthesisOptions) {
    (Tech::virtex2pro(), SynthesisOptions::SPEED)
}

/// The process-wide synthesis-sweep cache. Every artifact in this
/// module re-sweeps the same handful of `(op, format)` design spaces;
/// sharing one [`SweepCache`] makes the first artifact pay the
/// synthesis cost and every later one a pure memoized read (the cache's
/// hit/miss counters make redundant synthesis observable in tests).
pub fn shared_cache() -> SweepCache {
    static CACHE: std::sync::OnceLock<SweepCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(SweepCache::default).clone()
}

// ---------------------------------------------------------------- Fig. 2

/// One Figure 2 curve: frequency/area vs pipeline stages.
#[derive(Clone, Debug)]
pub struct Fig2Curve {
    /// Precision label ("32-bit", …).
    pub precision: String,
    /// (stages, MHz/slice) points.
    pub points: Vec<(u32, f64)>,
}

/// Figure 2: freq/area vs stages for adders (a) and multipliers (b).
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Part (a): adders at 32/48/64-bit.
    pub adders: Vec<Fig2Curve>,
    /// Part (b): multipliers at 32/48/64-bit.
    pub multipliers: Vec<Fig2Curve>,
}

/// Compute Figure 2.
pub fn fig2() -> Fig2 {
    let (tech, opts) = paper_flow();
    let analysis = PrecisionAnalysis::run_parallel_cached(&tech, opts, &shared_cache());
    let curve = |s: &CoreSweep| Fig2Curve {
        precision: s.format.to_string(),
        points: s.freq_area_curve(),
    };
    Fig2 {
        adders: analysis.adders.iter().map(curve).collect(),
        multipliers: analysis.multipliers.iter().map(curve).collect(),
    }
}

// ------------------------------------------------------------ Tables 1-2

/// One min/max/opt column triple of Table 1 or 2.
#[derive(Clone, Debug)]
pub struct UnitTableBlock {
    /// Precision label.
    pub precision: String,
    /// Least-pipelined implementation.
    pub min: ImplementationReport,
    /// Deepest implementation.
    pub max: ImplementationReport,
    /// Highest freq/area implementation (the paper's "opt").
    pub opt: ImplementationReport,
}

/// Table 1 (adders) or Table 2 (multipliers): one block per precision.
pub type UnitTable = Vec<UnitTableBlock>;

fn unit_table(kind: CoreKind) -> UnitTable {
    let (tech, opts) = paper_flow();
    let analysis = PrecisionAnalysis::run_parallel_cached(&tech, opts, &shared_cache());
    FpFormat::PAPER_PRECISIONS
        .iter()
        .map(|&f| {
            let sweep = analysis.sweep(kind, f);
            UnitTableBlock {
                precision: f.to_string(),
                min: sweep.min().clone(),
                max: sweep.max().clone(),
                opt: sweep.opt().clone(),
            }
        })
        .collect()
}

/// Table 1: 32/48/64-bit floating-point adders.
pub fn table1() -> UnitTable {
    unit_table(CoreKind::Adder)
}

/// Table 2: 32/48/64-bit floating-point multipliers.
pub fn table2() -> UnitTable {
    unit_table(CoreKind::Multiplier)
}

// ------------------------------------------------------------ Tables 3-4

/// Table 3: 32-bit cores vs Nallatech and Quixilica.
pub fn table3() -> Table3 {
    let (tech, opts) = paper_flow();
    Table3::build(&tech, opts)
}

/// Table 4: 64-bit cores vs the NEU parameterized library, with power.
pub fn table4() -> Table4 {
    let (tech, opts) = paper_flow();
    Table4::build(&tech, opts)
}

// ---------------------------------------------------------------- Fig. 3

/// One Figure 3 curve: power vs pipeline stages at 100 MHz.
#[derive(Clone, Debug)]
pub struct Fig3Curve {
    /// Precision label.
    pub precision: String,
    /// (stages, mW at 100 MHz) points.
    pub points: Vec<(u32, f64)>,
}

/// Figure 3: power vs stages for adders (a) and multipliers (b).
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Part (a): adders.
    pub adders: Vec<Fig3Curve>,
    /// Part (b): multipliers.
    pub multipliers: Vec<Fig3Curve>,
}

/// Compute Figure 3. "These power values include only the clocks, signal
/// and logic power" at 100 MHz, as in the paper.
pub fn fig3() -> Fig3 {
    let (tech, opts) = paper_flow();
    let model = PowerModel::virtex2pro();
    let analysis = PrecisionAnalysis::run_parallel_cached(&tech, opts, &shared_cache());
    let curve = |s: &CoreSweep| Fig3Curve {
        precision: s.format.to_string(),
        points: s
            .reports
            .iter()
            .map(|r| {
                let area = AreaCost {
                    luts: r.luts as f64,
                    ffs: r.ffs as f64,
                    bmults: r.bmults,
                    brams: r.brams,
                    routing_slices: 0.0,
                };
                let p = model.power_mw(&area, 100.0, 0.3);
                // unit-level power: clocks + signals + logic (+ embedded),
                // no I/O or quiescent terms — as the paper counts it
                (r.stages, p.total_mw())
            })
            .collect(),
    };
    Fig3 {
        adders: analysis.adders.iter().map(curve).collect(),
        multipliers: analysis.multipliers.iter().map(curve).collect(),
    }
}

// ------------------------------------------------------------- Section 4.2

/// The device-level GFLOPS result and processor comparison.
#[derive(Clone, Debug)]
pub struct GflopsReport {
    /// Single-precision device fill.
    pub single: DeviceFill,
    /// Double-precision device fill.
    pub double: DeviceFill,
    /// Single-precision processor comparison.
    pub comparison: ProcessorComparison,
}

/// Compute the Section 4.2 result on the XC2VP125.
pub fn gflops() -> GflopsReport {
    let (tech, opts) = paper_flow();
    let fill = |fmt: FpFormat| {
        let units =
            UnitSet::for_level_cached(fmt, PipeliningLevel::Maximum, &tech, opts, &shared_cache());
        DeviceFill::new(Device::XC2VP125, &units, 64, &tech)
    };
    let single = fill(FpFormat::SINGLE);
    let double = fill(FpFormat::DOUBLE);
    let comparison = ProcessorComparison::new(single.gflops(), single.power_w(0.3));
    GflopsReport {
        single,
        double,
        comparison,
    }
}

// ---------------------------------------------------------------- Fig. 4

/// One Figure 4 bar: the PE energy distribution for a (problem size,
/// pipelining level) pair.
#[derive(Clone, Debug)]
pub struct Fig4Bar {
    /// Problem size n.
    pub n: u32,
    /// Pipelining level label ("pl=10" …).
    pub level: String,
    /// Energy (nJ) per component class, in `ComponentClass::ALL` order.
    pub by_class: Vec<(ComponentClass, f64)>,
    /// Total energy (nJ).
    pub total_nj: f64,
}

/// Figure 4: energy distribution for a small (n = 10) and a 3× larger
/// (n = 30) problem, under the three pipelining levels.
pub fn fig4() -> Vec<Fig4Bar> {
    let (tech, opts) = paper_flow();
    let mut bars = Vec::new();
    for &n in &[10u32, 30] {
        for level in PipeliningLevel::ALL {
            let units =
                UnitSet::for_level_cached(FpFormat::SINGLE, level, &tech, opts, &shared_cache());
            let arch = ArchitectureEnergy::new(units, n, n, &tech);
            let rep = arch.charge_flat(n, &tech);
            bars.push(Fig4Bar {
                n,
                level: level.label(),
                by_class: ComponentClass::ALL
                    .iter()
                    .map(|&c| (c, rep.bill.class_nj(c)))
                    .collect(),
                total_nj: rep.total_nj(),
            });
        }
    }
    bars
}

// ------------------------------------------------------------- Figs. 5-6

/// One sweep point of Figure 5 or 6.
#[derive(Clone, Debug)]
pub struct ArchPoint {
    /// The swept parameter (problem size n, or block size b).
    pub x: u32,
    /// Pipelining level label.
    pub level: String,
    /// Total energy (nJ).
    pub energy_nj: f64,
    /// Array slices.
    pub slices: u32,
    /// Embedded multipliers.
    pub bmults: u32,
    /// Block RAMs.
    pub brams: u32,
    /// Latency (µs).
    pub latency_us: f64,
}

/// Figure 5: energy / resources / latency vs problem size n, for
/// PL ∈ {10, 19, 25} (n-PE flat designs).
pub fn fig5(problem_sizes: &[u32]) -> Vec<ArchPoint> {
    let (tech, opts) = paper_flow();
    let mut out = Vec::new();
    for level in PipeliningLevel::ALL {
        let units =
            UnitSet::for_level_cached(FpFormat::SINGLE, level, &tech, opts, &shared_cache());
        for &n in problem_sizes {
            let arch = ArchitectureEnergy::new(units.clone(), n, n, &tech);
            let rep = arch.charge_flat(n, &tech);
            out.push(ArchPoint {
                x: n,
                level: level.label(),
                energy_nj: rep.total_nj(),
                slices: rep.slices,
                bmults: rep.bmults,
                brams: rep.brams,
                latency_us: rep.latency_us,
            });
        }
    }
    out
}

/// Figure 6: energy / resources / latency vs block size b at fixed
/// problem size N, for PL ∈ {10, 19, 25} (b-PE blocked designs).
pub fn fig6(n: u32, block_sizes: &[u32]) -> Vec<ArchPoint> {
    let (tech, opts) = paper_flow();
    let mut out = Vec::new();
    for level in PipeliningLevel::ALL {
        let units =
            UnitSet::for_level_cached(FpFormat::SINGLE, level, &tech, opts, &shared_cache());
        for &b in block_sizes {
            let plan = BlockMatMul::square(n, b, level.pl()).expect("figure grid is positive");
            let arch = ArchitectureEnergy::new(units.clone(), b, b, &tech);
            let rep = arch.charge_blocked(&plan, &tech);
            out.push(ArchPoint {
                x: b,
                level: level.label(),
                energy_nj: rep.total_nj(),
                slices: rep.slices,
                bmults: rep.bmults,
                brams: rep.brams,
                latency_us: rep.latency_us,
            });
        }
    }
    out
}

/// The default Figure 5 x-axis.
pub const FIG5_PROBLEM_SIZES: [u32; 6] = [4, 8, 12, 16, 32, 64];
/// The default Figure 6 problem size and x-axis.
pub const FIG6_PROBLEM_SIZE: u32 = 160;
/// Block sizes swept in Figure 6 (all divide 160).
pub const FIG6_BLOCK_SIZES: [u32; 5] = [4, 8, 16, 32, 80];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_six_curves() {
        let f = fig2();
        assert_eq!(f.adders.len(), 3);
        assert_eq!(f.multipliers.len(), 3);
        for c in f.adders.iter().chain(&f.multipliers) {
            assert!(c.points.len() > 8, "{} too short", c.precision);
        }
    }

    #[test]
    fn tables_have_ordered_stage_columns() {
        for table in [table1(), table2()] {
            for block in table {
                assert!(block.min.stages < block.opt.stages);
                assert!(block.opt.stages < block.max.stages);
                assert!(block.opt.freq_per_area() >= block.min.freq_per_area());
                assert!(block.opt.freq_per_area() >= block.max.freq_per_area());
            }
        }
    }

    #[test]
    fn fig3_power_grows_with_stages() {
        let f = fig3();
        for c in f.adders.iter().chain(&f.multipliers) {
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(last > first, "{}: {first} -> {last}", c.precision);
        }
    }

    #[test]
    fn gflops_report_consistent() {
        let g = gflops();
        assert!(g.single.gflops() > g.double.gflops());
        assert!(g.comparison.fpga_gflops > 0.0);
    }

    #[test]
    fn fig4_has_all_bars() {
        let bars = fig4();
        assert_eq!(bars.len(), 6); // 2 sizes × 3 levels
        for b in &bars {
            assert_eq!(b.by_class.len(), 4);
            let sum: f64 = b.by_class.iter().map(|(_, e)| e).sum();
            assert!((sum - b.total_nj).abs() < 1e-6 * b.total_nj.max(1.0));
        }
    }

    #[test]
    fn fig6_block_sizes_divide() {
        for &b in &FIG6_BLOCK_SIZES {
            assert_eq!(FIG6_PROBLEM_SIZE % b, 0);
        }
    }

    #[test]
    fn artifacts_share_one_sweep_cache() {
        let cache = shared_cache();
        let _ = fig2(); // populates Add/Mul × 3 precisions
        let misses = cache.misses();
        assert!(misses > 0, "first artifact must synthesize");
        let hits = cache.hits();
        let _ = fig2();
        let _ = table1();
        let _ = fig3();
        assert_eq!(
            cache.misses(),
            misses,
            "warm artifacts must not re-synthesize"
        );
        assert!(cache.hits() > hits, "warm artifacts must read the cache");
    }
}
