//! # fpfpga — Analysis of High-Performance Floating-Point Arithmetic on FPGAs
//!
//! A full reproduction, in Rust, of Govindu, Zhuo, Choi and Prasanna,
//! *"Analysis of High-performance Floating-point Arithmetic on FPGAs"*
//! (IPPS/IPDPS-RAW 2004), built on a calibrated behavioral + analytical
//! model of a Virtex-II Pro class FPGA (no HDL toolchain required).
//!
//! The workspace layers, re-exported here:
//!
//! * [`softfp`] — parameterized bit-exact floating point (32/48/64-bit,
//!   round-to-nearest / truncate, flush-to-zero, no NaNs) — the
//!   numerical reference;
//! * [`fabric`] — the FPGA substrate model: primitives with delay atoms
//!   and area bills, netlists, critical-path pipelining, synthesis/P&R
//!   objectives, the Virtex-II Pro device catalogue;
//! * [`fpu`] — the paper's cores: pipeline-parameterized adder/subtractor
//!   and multiplier, simulated stage by stage and swept for
//!   frequency/area analysis;
//! * [`power`] — XPower-style power and domain-specific energy models;
//! * [`matmul`] — the linear-array matrix-multiply kernel: cycle-accurate
//!   simulation, block algorithm with zero padding, device-fill GFLOPS
//!   and energy reports;
//! * [`baselines`] — Nallatech/Quixilica/NEU cores and Pentium 4 / G4
//!   processor models;
//! * [`serve`] — the multi-tenant serving layer: a sharded worker pool
//!   with bounded queues, backpressure, coalescing, deadlines and
//!   metrics, bit-identical to serial execution at any worker count.
//!
//! [`repro`] computes every table and figure of the paper's evaluation as
//! plain data structures; the `fpfpga-bench` crate renders them.
//!
//! ## Quickstart
//!
//! ```
//! use fpfpga::prelude::*;
//!
//! // Sweep any core kind's pipeline depth and pick the
//! // highest-throughput/area implementation (the paper's "opt"):
//! let tech = Tech::virtex2pro();
//! let sweep = CoreSweep::builder(CoreKind::Adder, FpFormat::SINGLE)
//!     .run(&tech, SynthesisOptions::SPEED);
//! let opt = sweep.opt();
//! println!("opt: {} stages, {} slices, {:.0} MHz", opt.stages, opt.slices, opt.clock_mhz);
//!
//! // Stream a batch through the core's cycle-accurate simulator —
//! // bit-identical to clocking it by hand, one call:
//! let mut unit = AdderDesign::new(FpFormat::SINGLE).simulator(opt.stages);
//! let one = 1.0f32.to_bits() as u64;
//! let results = unit.run_batch(&[(one, one), (one, one)]);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].0 as u32, 2.0f32.to_bits());
//!
//! // Multiply two matrices on a cycle-accurate linear array, over the
//! // batched streaming engine:
//! let fmt = FpFormat::SINGLE;
//! let a = Matrix::from_fn(fmt, 8, 8, |i, j| (i + j) as f64);
//! let b = Matrix::identity(fmt, 8);
//! let (c, stats) = LinearArray::multiply_batched(
//!     fmt, RoundMode::NearestEven, 7, 9, &a, &b, UnitBackend::Fast);
//! assert_eq!(c, a);
//! assert_eq!(stats.useful_macs, 8 * 8 * 8);
//! ```

pub use fpfpga_baselines as baselines;
pub use fpfpga_fabric as fabric;
pub use fpfpga_fpu as fpu;
pub use fpfpga_matmul as matmul;
pub use fpfpga_power as power;
pub use fpfpga_serve as serve;
pub use fpfpga_softfp as softfp;

pub mod repro;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use fpfpga_baselines::{Processor, ProcessorComparison, Table3, Table4, VendorCore};
    pub use fpfpga_fabric::ApFormat;
    pub use fpfpga_fabric::{
        timing, AreaCost, Device, Netlist, Objective, PipelineStrategy, SynthesisOptions, Tech,
    };
    pub use fpfpga_fpu::{
        analysis::CoreKind, AdderDesign, CoreConfig, CoreConfigBuilder, CoreSweep, DelayLineUnit,
        DividerDesign, FpPipe, MultiplierDesign, PipelinedUnit, PrecisionAnalysis, SqrtDesign,
        StreamSession, SweepCache,
    };
    pub use fpfpga_matmul::pe::UnitBackend;
    pub use fpfpga_matmul::{
        ArchitectureEnergy, BlockMatMul, Candidate, Constraints, DeviceFill, DotProductUnit,
        Explorer, FnTiles, LinearArray, Matrix, MatrixTiles, MultiMatMul, MultiStats, MvmEngine,
        PeResources, PipeliningLevel, PlanError, Schedule, TileSource, UnitSet,
    };
    pub use fpfpga_matmul::{ErrorBudget, ErrorMeter, ErrorStats};
    pub use fpfpga_power::{ComponentClass, EnergyBill, PowerBreakdown, PowerModel};
    pub use fpfpga_serve::{
        run_serial, run_serial_with, synth_trace, ApOp, Job, JobHandle, JobOutcome, JobResult,
        JobSpec, Kernel, MetricsSnapshot, PolicyBook, PolicySel, Priority, ServeConfig, ServePool,
        SubmitError, TraceConfig,
    };
    pub use fpfpga_softfp::limb::{limb_add, limb_fma, limb_mul, limb_sub, LimbFormat};
    pub use fpfpga_softfp::{Flags, FpFormat, PrecisionPolicy, RoundMode, SoftFloat};
}
