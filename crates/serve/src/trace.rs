//! Synthetic request traces: Poisson arrivals, mixed precisions,
//! mixed kernels — fully determined by a seed.
//!
//! The generator drives everything from one [`SmallRng`], so `(seed,
//! jobs, rate)` names the trace exactly: replaying it against any
//! worker count must produce bit-identical
//! [`JobResult`](crate::job::JobResult)s (the
//! serving-equivalence property test relies on this).

use std::time::Duration;

use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fpu::analysis::CoreKind;
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::{Cplx, Matrix};
use fpfpga_softfp::{FpFormat, PrecisionPolicy, RoundMode, SoftFloat};
use rand::SmallRng;

use fpfpga_softfp::limb::LimbFormat;

use crate::job::{ApOp, EltOp, Job, Kernel};
use crate::pool::{JobSpec, Priority};

/// Parameters of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// RNG seed; the whole trace is a pure function of it.
    pub seed: u64,
    /// Number of requests.
    pub jobs: usize,
    /// Mean Poisson arrival rate in requests per second.
    pub rate_hz: f64,
    /// Multiplier on payload sizes (vector lengths, matrix dims, FFT
    /// points). 1 = the light default mix; throughput benches raise it
    /// so per-job compute dominates scheduling overhead.
    pub payload_scale: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            seed: 7,
            jobs: 256,
            rate_hz: 20_000.0,
            payload_scale: 1,
        }
    }
}

/// One timed request of a trace.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Arrival offset from trace start.
    pub at: Duration,
    /// The request.
    pub spec: JobSpec,
}

/// Scramble the user-facing seed before it reaches the xorshift state
/// (whose own seeding collapses seeds differing only in bit 0).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Synth {
    rng: SmallRng,
    scale: usize,
}

impl Synth {
    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        (((self.rng.next_u64() >> 11) + 1) as f64) / ((1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n
    }

    /// A well-scaled finite operand in roughly ±8.
    fn value(&mut self) -> f64 {
        (self.below(3200) as f64 - 1600.0) / 200.0
    }

    fn nonzero(&mut self) -> f64 {
        (self.below(1600) as f64 + 25.0) / 200.0 * if self.below(2) == 0 { 1.0 } else { -1.0 }
    }

    fn format(&mut self) -> FpFormat {
        FpFormat::PAPER_PRECISIONS[self.below(3) as usize]
    }

    fn priority(&mut self) -> Priority {
        match self.below(10) {
            0 => Priority::Low,
            1 => Priority::High,
            _ => Priority::Normal,
        }
    }

    fn encode(&mut self, fmt: FpFormat, v: f64) -> u64 {
        SoftFloat::from_f64(fmt, v).bits()
    }

    fn vector(&mut self, fmt: FpFormat, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| {
                let v = self.value();
                self.encode(fmt, v)
            })
            .collect()
    }

    fn matrix(&mut self, fmt: FpFormat, rows: usize, cols: usize) -> Matrix {
        let entries: Vec<f64> = (0..rows * cols).map(|_| self.value()).collect();
        Matrix::from_f64(fmt, rows, cols, &entries)
    }

    /// Diagonally dominant square matrix — safe for no-pivot LU.
    fn dominant_matrix(&mut self, fmt: FpFormat, n: usize) -> Matrix {
        let mut entries: Vec<f64> = (0..n * n).map(|_| self.value()).collect();
        for i in 0..n {
            let row_sum: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| entries[i * n + j].abs())
                .sum();
            entries[i * n + i] = row_sum + 1.0 + self.unit();
        }
        Matrix::from_f64(fmt, n, n, &entries)
    }

    /// A policy for an accumulating kernel stored in `fmt`: uniform
    /// two times in three, f64-accumulate mixed otherwise — so the
    /// equivalence proptests exercise the mixed kernels routinely.
    fn accum_policy(&mut self, fmt: FpFormat) -> PrecisionPolicy {
        if self.below(3) == 0 {
            PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE)
        } else {
            PrecisionPolicy::uniform(fmt)
        }
    }

    /// A policy for an elementwise kernel stored in `fmt`: uniform
    /// three times in four, wide (f64) compute otherwise.
    fn eltwise_policy(&mut self, fmt: FpFormat) -> PrecisionPolicy {
        if self.below(4) == 0 {
            PrecisionPolicy::new(FpFormat::DOUBLE, FpFormat::DOUBLE, fmt)
        } else {
            PrecisionPolicy::uniform(fmt)
        }
    }

    fn job(&mut self) -> Job {
        let fmt = self.format();
        let mode = RoundMode::NearestEven;
        match self.below(100) {
            // Coalescible elementwise streams dominate the mix, drawn
            // from a small set of depths so streams actually share
            // classes and the pool's batching has something to win.
            0..=44 => {
                let op = match self.below(5) {
                    0 => EltOp::Add,
                    1 => EltOp::Sub,
                    2 => EltOp::Mul,
                    3 => EltOp::Div,
                    _ => EltOp::Sqrt,
                };
                let stages = [4u32, 6, 8][self.below(3) as usize];
                let n = (1 + self.below(8) as usize) * self.scale;
                let pairs = (0..n)
                    .map(|_| {
                        let (a, b) = match op {
                            EltOp::Div => (self.value(), self.nonzero()),
                            EltOp::Sqrt => (self.value().abs(), 0.0),
                            _ => (self.value(), self.value()),
                        };
                        (self.encode(fmt, a), self.encode(fmt, b))
                    })
                    .collect();
                let policy = self.eltwise_policy(fmt);
                Job::new(Kernel::Eltwise { op, stages, pairs }, policy, mode)
            }
            45..=59 => {
                let n = (4 + self.below(13) as usize) * self.scale;
                let kernel = Kernel::Dot {
                    mult_stages: 4 + self.below(4) as u32,
                    add_stages: 4 + self.below(4) as u32,
                    x: self.vector(fmt, n),
                    y: self.vector(fmt, n),
                };
                let policy = self.accum_policy(fmt);
                Job::new(kernel, policy, mode)
            }
            60..=69 => {
                let rows = (3 + self.below(4) as usize) * self.scale;
                let cols = (3 + self.below(4) as usize) * self.scale;
                let kernel = Kernel::Mvm {
                    mult_stages: 5,
                    add_stages: 4,
                    p: 1 + self.below(3) as usize,
                    a: self.matrix(fmt, rows, cols),
                    x: self.vector(fmt, cols),
                };
                let policy = self.accum_policy(fmt);
                Job::new(kernel, policy, mode)
            }
            70..=77 => {
                // One matmul in three is rectangular/ragged, so uniform
                // draws exercise the serving layer's multi-array path
                // (any non-square problem routes there) and mixed draws
                // exercise the rectangular mixed kernel — at every
                // worker count, via the equivalence proptests.
                let m = (2 + self.below(3) as usize) * self.scale;
                let (k, n) = if self.below(3) == 0 {
                    (
                        (1 + self.below(5) as usize) * self.scale,
                        (2 + self.below(4) as usize) * self.scale,
                    )
                } else {
                    (m, m)
                };
                let kernel = Kernel::MatMul {
                    mult_stages: 5,
                    add_stages: 4,
                    a: self.matrix(fmt, m, k),
                    b: self.matrix(fmt, k, n),
                    backend: UnitBackend::Fast,
                };
                let policy = self.accum_policy(fmt);
                Job::new(kernel, policy, mode)
            }
            78..=85 => {
                let n = (3 + self.below(3) as usize) * self.scale;
                let kernel = Kernel::Lu {
                    div_stages: 8,
                    mac_stages: 6,
                    p: 1 + self.below(2) as u32,
                    a: self.dominant_matrix(fmt, n),
                };
                Job::uniform(kernel, fmt, mode)
            }
            86..=91 => {
                // Arbitrary-precision streams: the wide format rides in
                // the kernel (the policy stays uniform and is ignored
                // past its rounding mode), operands are canonical limb
                // arrays with exponents clustered around the bias so
                // the arithmetic exercises real alignment work.
                let wide = [LimbFormat::F128, LimbFormat::F256][self.below(2) as usize];
                let op = match self.below(4) {
                    0 => ApOp::Add,
                    1 => ApOp::Sub,
                    2 => ApOp::Mul,
                    _ => ApOp::Fma,
                };
                let n = (1 + self.below(6) as usize) * self.scale;
                let operand = |s: &mut Self| {
                    let sign = s.below(2) == 1;
                    let exp = (wide.bias() + s.below(41) as i64 - 20) as u64;
                    let frac: Vec<u64> = (0..wide.limbs()).map(|_| s.rng.next_u64()).collect();
                    wide.pack_parts(sign, exp, &frac)
                };
                let a: Vec<Vec<u64>> = (0..n).map(|_| operand(self)).collect();
                let b: Vec<Vec<u64>> = (0..n).map(|_| operand(self)).collect();
                let c: Vec<Vec<u64>> = if op == ApOp::Fma {
                    (0..n).map(|_| operand(self)).collect()
                } else {
                    vec![]
                };
                let kernel = Kernel::Apfloat {
                    op,
                    fmt: wide,
                    a,
                    b,
                    c,
                };
                Job::uniform(kernel, fmt, mode)
            }
            92..=95 => {
                // FFT lengths must stay powers of two under scaling.
                let n = [4usize, 8, 16][self.below(3) as usize] * self.scale.next_power_of_two();
                let data = (0..n)
                    .map(|_| {
                        let (re, im) = (self.value(), self.value());
                        Cplx::from_f64(fmt, re, im)
                    })
                    .collect();
                let kernel = Kernel::Fft {
                    mult_stages: 5,
                    add_stages: 4,
                    data,
                    inverse: self.below(2) == 1,
                };
                Job::uniform(kernel, fmt, mode)
            }
            _ => {
                let kind = [
                    CoreKind::Adder,
                    CoreKind::Multiplier,
                    CoreKind::Divider,
                    CoreKind::Sqrt,
                ][self.below(4) as usize];
                let opts = if self.below(2) == 0 {
                    SynthesisOptions::SPEED
                } else {
                    SynthesisOptions::AREA
                };
                Job::uniform(Kernel::Sweep { kind, opts }, fmt, mode)
            }
        }
    }
}

/// Generate the trace named by `cfg`: `jobs` requests with
/// exponentially distributed inter-arrival gaps (a Poisson process at
/// `rate_hz`), kernels and precisions mixed per fixed weights. Purely
/// a function of the config.
pub fn synth_trace(cfg: &TraceConfig) -> Vec<TraceEvent> {
    assert!(cfg.rate_hz > 0.0, "arrival rate must be positive");
    assert!(cfg.payload_scale >= 1, "payload scale must be at least 1");
    let mut s = Synth {
        rng: SmallRng::seed_from_u64(splitmix(cfg.seed)),
        scale: cfg.payload_scale,
    };
    let mut at = 0.0f64;
    (0..cfg.jobs)
        .map(|_| {
            at += -s.unit().ln() / cfg.rate_hz;
            let spec = JobSpec::new(s.job()).with_priority(s.priority());
            TraceEvent {
                at: Duration::from_secs_f64(at),
                spec,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let cfg = TraceConfig {
            seed: 42,
            jobs: 64,
            rate_hz: 10_000.0,
            ..TraceConfig::default()
        };
        let t1 = synth_trace(&cfg);
        let t2 = synth_trace(&cfg);
        assert_eq!(t1.len(), 64);
        let hash = |ev: &TraceEvent| ev.spec.fixed_job().expect("pinned policy").class_hash();
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.at, b.at);
            assert_eq!(hash(a), hash(b));
        }
        let t3 = synth_trace(&TraceConfig { seed: 43, ..cfg });
        assert!(
            t1.iter().zip(&t3).any(|(a, b)| hash(a) != hash(b)),
            "different seeds must differ"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_jobs_valid() {
        let trace = synth_trace(&TraceConfig::default());
        let mut prev = Duration::ZERO;
        for ev in &trace {
            assert!(ev.at >= prev, "arrival times must be non-decreasing");
            prev = ev.at;
            ev.spec
                .fixed_job()
                .expect("trace policies are pinned")
                .validate()
                .expect("synthetic jobs must be valid");
        }
    }

    #[test]
    fn the_mix_covers_every_kernel() {
        let trace = synth_trace(&TraceConfig {
            seed: 1,
            jobs: 512,
            rate_hz: 1e6,
            ..TraceConfig::default()
        });
        let mut seen = [false; 8];
        let mut mixed = 0usize;
        for ev in &trace {
            let i = match ev.spec.kernel {
                Kernel::Eltwise { .. } => 0,
                Kernel::Dot { .. } => 1,
                Kernel::MatMul { .. } => 2,
                Kernel::Mvm { .. } => 3,
                Kernel::Lu { .. } => 4,
                Kernel::Fft { .. } => 5,
                Kernel::Sweep { .. } => 6,
                Kernel::Apfloat { .. } => 7,
            };
            seen[i] = true;
            let job = ev.spec.fixed_job().expect("pinned policy");
            if !job.policy.is_uniform() {
                mixed += 1;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "mix must cover all kernels: {seen:?}"
        );
        assert!(
            mixed > 0,
            "the mix must include mixed-precision policies so the \
             equivalence proptests exercise the mixed kernels"
        );
    }
}
