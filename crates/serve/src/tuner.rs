//! The ULP-budget auto-tuner: pick the cheapest precision policy that
//! meets an accuracy budget.
//!
//! A caller that knows its storage format and its error tolerance —
//! but not the fabric trade-offs — submits
//! [`PolicySel::Auto`](crate::pool::PolicySel::Auto). The tuner then:
//!
//! 1. enumerates candidate policies over the paper's three precisions
//!    (every compute format paired with every accumulate format that
//!    covers it, storage pinned to the caller's format);
//! 2. measures each candidate's error on a fixed probe workload — a
//!    family of mixed-precision dot products of several depths against
//!    the `f64` reference (dot products are the accuracy-critical
//!    primitive: every matmul/MVM element is one);
//! 3. prices each candidate by the paper's area model: opt-point
//!    slices of a multiplier in the compute format plus an adder in
//!    the accumulate format (both through the shared [`SweepCache`],
//!    so repeated tuning is a pure cache read);
//! 4. returns the cheapest candidate whose probe error the
//!    [`ErrorBudget`] accepts, or an error naming the best achievable
//!    error if none qualifies.
//!
//! Everything is deterministic: the probe is a pure function of the
//! storage format, candidates are enumerated in a fixed order, and
//! ties break on the policy's canonical name.

use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::analysis::{CoreKind, CoreSweep};
use fpfpga_fpu::SweepCache;
use fpfpga_matmul::accuracy::{ErrorMeter, ErrorStats};
use fpfpga_matmul::{mixed_dot, ErrorBudget};
use fpfpga_softfp::{FpFormat, PrecisionPolicy, RoundMode, SoftFloat};

/// Probe dot-product depths. Several depths so accumulation-order
/// error growth (the thing a wider accumulate format suppresses) is
/// actually exercised, not just final rounding.
pub const PROBE_DEPTHS: [usize; 3] = [16, 64, 256];

/// Pipeline depths used by the probe kernels (any fixed values work;
/// the accumulator-bank size `add_stages` shapes the summation order).
const PROBE_MULT_STAGES: u32 = 5;
const PROBE_ADD_STAGES: u32 = 4;

/// The tuner's verdict: the selected policy with its price and its
/// measured probe error.
#[derive(Clone, Debug)]
pub struct TunedPolicy {
    /// Cheapest policy meeting the budget.
    pub policy: PrecisionPolicy,
    /// Fabric price: opt multiplier (compute) + opt adder (accumulate)
    /// slices.
    pub cost_slices: u32,
    /// Probe error of the selected policy.
    pub stats: ErrorStats,
    /// How many candidate policies were evaluated.
    pub evaluated: usize,
}

/// Candidate policies for a given storage format: every paper
/// precision as compute, paired with every paper precision that covers
/// it as accumulate, in a fixed enumeration order.
pub fn candidate_policies(storage: FpFormat) -> Vec<PrecisionPolicy> {
    let mut out = Vec::new();
    for &compute in FpFormat::PAPER_PRECISIONS.iter() {
        for &accumulate in FpFormat::PAPER_PRECISIONS.iter() {
            let p = PrecisionPolicy::new(compute, accumulate, storage);
            if p.accumulate_covers_compute() {
                out.push(p);
            }
        }
    }
    out
}

/// A deterministic pseudo-random stream (splitmix64) — no `rand`
/// dependency on the tuning path, identical on every call.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The probe operands: `max(PROBE_DEPTHS)` positive values of similar
/// magnitude, encoded in (and exactly representable by) `storage`.
/// A growing positive sum is the regime where a narrow accumulator
/// visibly swallows low-order bits of each addend while a covering
/// accumulate format keeps them — exactly the separation the budget
/// has to price.
fn probe_operands(storage: FpFormat) -> (Vec<u64>, Vec<u64>, Vec<f64>, Vec<f64>) {
    let n = *PROBE_DEPTHS.iter().max().expect("non-empty depths");
    let mut state = 0x5EED_0FF0_CAFE_u64;
    let mut draw = |lo: f64, hi: f64| {
        let u = (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    };
    let mut xb = Vec::with_capacity(n);
    let mut yb = Vec::with_capacity(n);
    let mut xv = Vec::with_capacity(n);
    let mut yv = Vec::with_capacity(n);
    for _ in 0..n {
        let x = SoftFloat::from_f64(storage, draw(0.5, 4.0));
        let y = SoftFloat::from_f64(storage, draw(0.5, 4.0));
        xb.push(x.bits());
        yb.push(y.bits());
        xv.push(x.to_f64());
        yv.push(y.to_f64());
    }
    (xb, yb, xv, yv)
}

/// Measure one policy's probe error: dot products of every
/// [`PROBE_DEPTHS`] prefix, each compared in the storage format
/// against the `f64` reference of the *decoded* operands (so only the
/// policy's arithmetic is charged, never the storage encoding).
pub fn probe_stats(policy: PrecisionPolicy, mode: RoundMode) -> ErrorStats {
    let (xb, yb, xv, yv) = probe_operands(policy.storage);
    let mut meter = ErrorMeter::new(policy.storage, 1e-30);
    for &depth in PROBE_DEPTHS.iter() {
        let d = mixed_dot(
            policy,
            mode,
            &xb[..depth],
            &yb[..depth],
            PROBE_MULT_STAGES,
            PROBE_ADD_STAGES,
        );
        let baseline: f64 = xv[..depth]
            .iter()
            .zip(&yv[..depth])
            .map(|(&a, &b)| a * b)
            .sum();
        meter.record(d.bits, baseline);
    }
    meter.stats()
}

/// The fabric price of a policy: opt-point slices of a multiplier in
/// the compute format plus an adder in the accumulate format, both
/// under the SPEED objective (memoized through `cache`).
pub fn policy_cost(policy: PrecisionPolicy, tech: &Tech, cache: &SweepCache) -> u32 {
    let mult = CoreSweep::builder(CoreKind::Multiplier, policy.compute)
        .cached(cache)
        .run(tech, SynthesisOptions::SPEED);
    let add = CoreSweep::builder(CoreKind::Adder, policy.accumulate)
        .cached(cache)
        .run(tech, SynthesisOptions::SPEED);
    mult.opt().slices + add.opt().slices
}

/// Pick the cheapest candidate policy for `storage` whose probe error
/// `budget` accepts. Deterministic; ties break on the canonical policy
/// name. `Err` carries a human-readable diagnosis naming the best
/// achievable error.
pub fn autotune(
    storage: FpFormat,
    budget: &ErrorBudget,
    tech: &Tech,
    cache: &SweepCache,
) -> Result<TunedPolicy, String> {
    let mode = RoundMode::NearestEven;
    let candidates = candidate_policies(storage);
    let evaluated = candidates.len();
    let mut best: Option<TunedPolicy> = None;
    let mut closest: Option<(PrecisionPolicy, ErrorStats)> = None;
    for policy in candidates {
        let stats = probe_stats(policy, mode);
        if closest
            .as_ref()
            .is_none_or(|(_, s)| stats.max_ulp < s.max_ulp)
        {
            closest = Some((policy, stats));
        }
        if !budget.accepts(&stats) {
            continue;
        }
        let cost_slices = policy_cost(policy, tech, cache);
        let better = best.as_ref().is_none_or(|b| {
            (cost_slices, policy.canonical_name()) < (b.cost_slices, b.policy.canonical_name())
        });
        if better {
            best = Some(TunedPolicy {
                policy,
                cost_slices,
                stats,
                evaluated,
            });
        }
    }
    best.ok_or_else(|| {
        let (p, s) = closest.expect("at least one candidate");
        format!(
            "no policy with storage {} meets {budget}: best is {p} at max_ulp={:.3}, \
             max_rel={:.3e} ({evaluated} candidates)",
            storage.canonical_name(),
            s.max_ulp,
            s.max_rel
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_and_only_cover() {
        let cs = candidate_policies(FpFormat::SINGLE);
        assert!(cs.iter().all(|p| p.accumulate_covers_compute()));
        assert!(cs.iter().all(|p| p.storage == FpFormat::SINGLE));
        // f32 pairs with all three accumulators, f48 and f64 with f64
        // only (f48's 11-bit exponent rules out the f32 accumulator,
        // and f64's mantissa rules out f48).
        assert!(cs.contains(&PrecisionPolicy::new(
            FpFormat::SINGLE,
            FpFormat::FP48,
            FpFormat::SINGLE
        )));
        assert!(!cs.contains(&PrecisionPolicy::new(
            FpFormat::DOUBLE,
            FpFormat::SINGLE,
            FpFormat::SINGLE
        )));
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn probe_is_deterministic_and_separates_accumulators() {
        let uniform = probe_stats(
            PrecisionPolicy::uniform(FpFormat::SINGLE),
            RoundMode::NearestEven,
        );
        let again = probe_stats(
            PrecisionPolicy::uniform(FpFormat::SINGLE),
            RoundMode::NearestEven,
        );
        assert_eq!(uniform, again, "probe must be a pure function");
        let wide = probe_stats(
            PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE),
            RoundMode::NearestEven,
        );
        assert!(
            wide.max_ulp * 2.0 < uniform.max_ulp,
            "double accumulation must clearly beat single: wide={} uniform={}",
            wide.max_ulp,
            uniform.max_ulp
        );
    }

    #[test]
    fn tightening_the_budget_changes_the_selected_policy() {
        let tech = Tech::virtex2pro();
        let cache = SweepCache::new();
        let uniform = probe_stats(
            PrecisionPolicy::uniform(FpFormat::SINGLE),
            RoundMode::NearestEven,
        );
        // Loose: everything passes, so the cheapest core pair — the
        // all-single policy — wins.
        let loose = autotune(
            FpFormat::SINGLE,
            &ErrorBudget::MaxUlp(uniform.max_ulp * 2.0),
            &tech,
            &cache,
        )
        .expect("loose budget must be satisfiable");
        assert_eq!(loose.policy, PrecisionPolicy::uniform(FpFormat::SINGLE));
        // Tight: the uniform policy provably fails, so the tuner must
        // spend area on a wider accumulator.
        let tight = autotune(
            FpFormat::SINGLE,
            &ErrorBudget::MaxUlp(uniform.max_ulp / 2.0),
            &tech,
            &cache,
        )
        .expect("a wider accumulator must rescue the tight budget");
        assert_ne!(tight.policy, loose.policy);
        assert!(!tight.policy.is_uniform());
        assert_eq!(tight.policy.compute, FpFormat::SINGLE, "mult stays cheap");
        assert!(tight.cost_slices > loose.cost_slices, "accuracy costs area");
    }

    #[test]
    fn impossible_budgets_are_diagnosed() {
        let tech = Tech::virtex2pro();
        let cache = SweepCache::new();
        let err = autotune(
            FpFormat::SINGLE,
            &ErrorBudget::MaxRelative(0.0),
            &tech,
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("no policy"), "{err}");
        assert!(err.contains("f32"), "{err}");
    }

    #[test]
    fn autotune_is_deterministic() {
        let tech = Tech::virtex2pro();
        let cache = SweepCache::new();
        let budget = ErrorBudget::MaxUlp(1e6);
        let a = autotune(FpFormat::FP48, &budget, &tech, &cache).unwrap();
        let b = autotune(FpFormat::FP48, &budget, &tech, &cache).unwrap();
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.cost_slices, b.cost_slices);
        assert!(cache.hits() > 0, "the second run must reuse the cache");
    }
}
