//! The serving layer's unit of work: one [`Job`] per request.
//!
//! A job is a [`Kernel`] payload plus the run-time [`PrecisionPolicy`]
//! and rounding mode it executes under. The policy names three
//! formats — compute, accumulate, storage — so one request can, say,
//! store single-precision operands, multiply in single and accumulate
//! in double (the classic mixed-precision dot product). Uniform
//! policies take the exact code paths the crate always had; mixed
//! policies dispatch to the `fpfpga-matmul` mixed kernels.
//!
//! Execution is a pure function of the job payload: [`Job::run`] on
//! any thread, against any (warm or cold) [`SweepCache`], returns
//! bit-identical [`JobResult`]s, which is what lets the pool schedule
//! freely while the property tests pin the numerics.

use std::hash::{Hash, Hasher};

use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::analysis::{CoreKind, CoreSweep};
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_fpu::SweepCache;
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::{
    array::ArrayStats, mixed, BlockMatMul, Cplx, DotProductUnit, FftEngine, LinearArray, LuEngine,
    Matrix, MultiMatMul, MvmEngine, PlanError,
};
use fpfpga_softfp::limb::{limb_add, limb_fma, limb_mul, limb_sub, LimbFormat};
use fpfpga_softfp::{convert, Flags, FpFormat, PrecisionPolicy, RoundMode, SoftFloat};

/// Uniform square matmuls up to this size run on the classic single
/// n-PE array; anything larger — or any non-square problem, which the
/// square array cannot run at all — routes to the multi-array blocked
/// planner ([`MultiMatMul`]).
pub const MULTI_ARRAY_THRESHOLD: usize = 64;

/// Block (and per-array PE count) the serving layer tiles multi-array
/// problems with. 32 keeps the padded period at the array size for
/// every unit set in the paper (PL ≤ 25 < 32).
pub const MULTI_ARRAY_BLOCK: u32 = 32;

/// Cap on simulated arrays per job: enough to cover
/// [`MULTI_ARRAY_THRESHOLD`]-busting problems without letting one job
/// fan out unboundedly.
pub const MULTI_ARRAY_MAX_ARRAYS: u32 = 8;

/// Does this (uniform-policy) matmul take the multi-array path?
pub fn matmul_routes_to_multi(a: &Matrix, b: &Matrix) -> bool {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    !(m == k && k == n) || m > MULTI_ARRAY_THRESHOLD
}

/// The multi-array plan the serving layer would run this problem with:
/// block size [`MULTI_ARRAY_BLOCK`], one array per output tile up to
/// [`MULTI_ARRAY_MAX_ARRAYS`]. Zero dimensions or zero combined stage
/// count are typed [`PlanError`]s — `validate` maps them to
/// `SubmitError::Invalid` so they can never panic a worker.
pub fn matmul_multi_plan(
    mult_stages: u32,
    add_stages: u32,
    a: &Matrix,
    b: &Matrix,
) -> Result<MultiMatMul, PlanError> {
    let plan = BlockMatMul::new(
        a.rows() as u32,
        a.cols() as u32,
        b.cols() as u32,
        MULTI_ARRAY_BLOCK,
        mult_stages + add_stages,
    )?;
    let arrays = plan.output_tiles().min(MULTI_ARRAY_MAX_ARRAYS as u64) as u32;
    Ok(MultiMatMul { plan, arrays })
}

/// Elementwise operation of a coalescible eltwise stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EltOp {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
    /// a ÷ b
    Div,
    /// √a (second operand ignored)
    Sqrt,
}

/// Operation of an arbitrary-precision ([`Kernel::Apfloat`]) stream —
/// the four multi-limb kernels the wide datapath implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApOp {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
    /// a × b + c, single rounding
    Fma,
}

impl EltOp {
    fn delay_op(self) -> DelayOp {
        match self {
            EltOp::Add => DelayOp::Add,
            EltOp::Sub => DelayOp::Sub,
            EltOp::Mul => DelayOp::Mul,
            EltOp::Div => DelayOp::Div,
            EltOp::Sqrt => DelayOp::Sqrt,
        }
    }
}

/// The class of jobs that may share one [`FpPipe::run_batch`] call:
/// same operation, precision policy, rounding mode and pipeline depth.
/// Streams of the same class concatenate without changing any
/// element's result (each element's value is independent of its batch
/// position — property-tested).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    /// Elementwise operation.
    pub op: EltOp,
    /// Precision policy (the unit runs in `policy.compute`; operands
    /// and results live in `policy.storage`).
    pub policy: PrecisionPolicy,
    /// Rounding mode.
    pub mode: RoundMode,
    /// Pipeline depth of the serving unit.
    pub stages: u32,
}

/// A kernel payload: *what* to run, with its pipeline configuration,
/// but without the numeric formats — those come from the enclosing
/// [`Job`]'s [`PrecisionPolicy`] and rounding mode.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// A coalescible elementwise stream: `op(a, b)` per pair, through
    /// one pipelined unit at initiation interval 1.
    Eltwise {
        /// Elementwise operation.
        op: EltOp,
        /// Pipeline depth of the unit.
        stages: u32,
        /// Operand pairs (raw encodings in the policy's storage format).
        pairs: Vec<(u64, u64)>,
    },
    /// Dot product on the round-robin accumulator-bank unit.
    Dot {
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth (= accumulator bank size).
        add_stages: u32,
        /// Left vector.
        x: Vec<u64>,
        /// Right vector.
        y: Vec<u64>,
    },
    /// Square matrix multiply on the linear PE array.
    MatMul {
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// Left operand.
        a: Matrix,
        /// Right operand.
        b: Matrix,
        /// PE pipe backend.
        backend: UnitBackend,
    },
    /// Matrix-vector multiply on a `p`-PE engine.
    Mvm {
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// PE count.
        p: usize,
        /// The matrix.
        a: Matrix,
        /// The vector.
        x: Vec<u64>,
    },
    /// LU factorization (no pivoting). Uniform policies only.
    Lu {
        /// Divider pipeline depth.
        div_stages: u32,
        /// Fused-MAC pipeline depth.
        mac_stages: u32,
        /// Update PEs.
        p: u32,
        /// The matrix to factor.
        a: Matrix,
    },
    /// Radix-2 FFT on one butterfly unit. Uniform policies only.
    Fft {
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// Input samples (power-of-two length ≥ 2).
        data: Vec<Cplx>,
        /// Inverse transform?
        inverse: bool,
    },
    /// An arbitrary-precision elementwise stream through the
    /// multi-limb (`softfp::limb`) kernels. The wide format travels
    /// with the kernel — [`LimbFormat`] reaches past the 64-bit
    /// [`FpFormat`] cap, so the job's precision policy cannot express
    /// it; the policy must be uniform and only the rounding mode of
    /// the enclosing [`Job`] applies. Operands are canonical
    /// little-endian limb arrays of exactly `fmt.limbs()` words each.
    Apfloat {
        /// Which wide kernel.
        op: ApOp,
        /// The wide format the operands and results are encoded in.
        fmt: LimbFormat,
        /// First operands, one limb array per element.
        a: Vec<Vec<u64>>,
        /// Second operands, same length as `a`.
        b: Vec<Vec<u64>>,
        /// Addends for [`ApOp::Fma`] (same length as `a`); must be
        /// empty for the two-operand kernels.
        c: Vec<Vec<u64>>,
    },
    /// A design-space depth sweep of the policy's compute format
    /// (served from the worker's [`SweepCache`] shard; repeats of the
    /// same key are cache hits). Uniform policies only.
    Sweep {
        /// Which core.
        kind: CoreKind,
        /// Tool objective.
        opts: SynthesisOptions,
    },
}

/// One request against the serving layer: a [`Kernel`] under a
/// [`PrecisionPolicy`] and rounding mode.
#[derive(Clone, Debug)]
pub struct Job {
    /// The kernel payload.
    pub kernel: Kernel,
    /// Compute/accumulate/storage formats for this request.
    pub policy: PrecisionPolicy,
    /// Rounding mode.
    pub mode: RoundMode,
}

/// The result of one [`Job`], bit-exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JobResult {
    /// Per-pair results with flags, in input order.
    Eltwise(Vec<(u64, Flags)>),
    /// Dot product value, accumulated flags, cycles consumed.
    Dot {
        /// Result encoding (in the policy's storage format).
        value: u64,
        /// Accumulated exception flags.
        flags: Flags,
        /// Cycles consumed by the unit.
        cycles: u64,
    },
    /// Product matrix and the array's run statistics.
    MatMul {
        /// C = A·B.
        c: Matrix,
        /// Cycle/MAC statistics of the run. The mixed-precision path
        /// counts useful MACs but does not model array cycles
        /// (`cycles` = 0 there).
        stats: ArrayStats,
    },
    /// Result vector and cycles.
    Mvm {
        /// y = A·x.
        y: Vec<u64>,
        /// Cycles consumed.
        cycles: u64,
    },
    /// Packed LU factors and run counters.
    Lu {
        /// L (unit diagonal implicit) and U packed together.
        lu: Matrix,
        /// Cycles consumed.
        cycles: u64,
        /// Division operations issued.
        divs: u64,
        /// Fused MACs issued.
        macs: u64,
        /// Accumulated exception flags.
        flags: Flags,
    },
    /// The transform and cycles.
    Fft {
        /// Transformed samples.
        data: Vec<Cplx>,
        /// Cycles consumed.
        cycles: u64,
    },
    /// Per-element wide results with flags, in input order. Each
    /// result is a canonical limb array of the request's
    /// [`LimbFormat`].
    Apfloat(Vec<(Vec<u64>, Flags)>),
    /// The sweep's opt point and the sweep depth count.
    Sweep {
        /// Highest freq/area implementation.
        opt: ImplementationReport,
        /// Number of depths swept.
        depths: usize,
    },
}

impl Job {
    /// A job running `kernel` under `policy`.
    pub fn new(kernel: Kernel, policy: PrecisionPolicy, mode: RoundMode) -> Job {
        Job {
            kernel,
            policy,
            mode,
        }
    }

    /// A job whose compute, accumulate and storage formats are all
    /// `fmt` — exactly the pre-policy behaviour of every kernel.
    pub fn uniform(kernel: Kernel, fmt: FpFormat, mode: RoundMode) -> Job {
        Job::new(kernel, PrecisionPolicy::uniform(fmt), mode)
    }

    /// The flop-ish size of the job — used for throughput accounting,
    /// never for scheduling decisions.
    pub fn work_items(&self) -> u64 {
        match &self.kernel {
            Kernel::Eltwise { pairs, .. } => pairs.len() as u64,
            Kernel::Dot { x, .. } => 2 * x.len() as u64,
            Kernel::MatMul { a, b, .. } => 2 * a.rows() as u64 * a.cols() as u64 * b.cols() as u64,
            Kernel::Mvm { a, .. } => 2 * (a.rows() * a.cols()) as u64,
            Kernel::Lu { a, .. } => {
                let n = a.rows() as u64;
                2 * n * n * n / 3
            }
            Kernel::Fft { data, .. } => {
                let n = data.len() as u64;
                5 * n * (n.max(2).ilog2() as u64)
            }
            // Wide elements cost roughly their limb count in 64-bit
            // unit passes.
            Kernel::Apfloat { fmt, a, .. } => a.len() as u64 * fmt.limbs() as u64,
            Kernel::Sweep { .. } => 1,
        }
    }

    /// The job's *class* — everything about its configuration except
    /// the payload data: kernel kind and stage counts, precision
    /// policy, rounding mode. Jobs of one class route to one worker
    /// shard, so repeated sweeps hit a warm cache and coalescible
    /// streams meet in one queue.
    pub fn class_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::mem::discriminant(&self.kernel).hash(&mut h);
        (self.policy, self.mode).hash(&mut h);
        match &self.kernel {
            Kernel::Eltwise { op, stages, .. } => (op, stages).hash(&mut h),
            Kernel::Dot {
                mult_stages,
                add_stages,
                ..
            } => (mult_stages, add_stages).hash(&mut h),
            Kernel::MatMul {
                mult_stages,
                add_stages,
                backend,
                ..
            } => {
                let fast = matches!(backend, UnitBackend::Fast);
                (mult_stages, add_stages, fast).hash(&mut h);
            }
            Kernel::Mvm {
                mult_stages,
                add_stages,
                p,
                ..
            } => (mult_stages, add_stages, p).hash(&mut h),
            Kernel::Lu {
                div_stages,
                mac_stages,
                p,
                ..
            } => (div_stages, mac_stages, p).hash(&mut h),
            Kernel::Fft {
                mult_stages,
                add_stages,
                inverse,
                ..
            } => (mult_stages, add_stages, inverse).hash(&mut h),
            Kernel::Apfloat { op, fmt, .. } => (op, fmt).hash(&mut h),
            Kernel::Sweep { kind, opts } => (kind, opts).hash(&mut h),
        }
        h.finish()
    }

    /// The coalescing class, for jobs that may share one `run_batch`.
    pub fn coalesce_key(&self) -> Option<CoalesceKey> {
        match self.kernel {
            Kernel::Eltwise { op, stages, .. } => Some(CoalesceKey {
                op,
                policy: self.policy,
                mode: self.mode,
                stages,
            }),
            _ => None,
        }
    }

    /// Check the payload against the kernel's preconditions — and the
    /// policy against the kernel's capabilities — so a bad request is
    /// refused at submission instead of killing a worker.
    pub fn validate(&self) -> Result<(), String> {
        let p = self.policy;
        let uniform_only = |what: &str| -> Result<(), String> {
            if p.is_uniform() {
                Ok(())
            } else {
                Err(format!(
                    "{what} requires a uniform precision policy, got {p}"
                ))
            }
        };
        let storage_matrix = |name: &str, m: &Matrix| -> Result<(), String> {
            if m.format() == p.storage {
                Ok(())
            } else {
                Err(format!(
                    "matrix {name} is in format {}, policy stores {}",
                    m.format().canonical_name(),
                    p.storage.canonical_name()
                ))
            }
        };
        let covering = || -> Result<(), String> {
            if p.accumulate_covers_compute() {
                Ok(())
            } else {
                Err(format!(
                    "accumulate format {} does not cover compute format {}",
                    p.accumulate.canonical_name(),
                    p.compute.canonical_name()
                ))
            }
        };
        match &self.kernel {
            Kernel::Eltwise { stages, .. } => {
                if *stages == 0 {
                    return Err("eltwise unit needs at least 1 stage".into());
                }
            }
            Kernel::Dot { x, y, .. } => {
                covering()?;
                if x.len() != y.len() {
                    return Err(format!(
                        "dot vector lengths differ: {} vs {}",
                        x.len(),
                        y.len()
                    ));
                }
            }
            Kernel::MatMul {
                mult_stages,
                add_stages,
                a,
                b,
                ..
            } => {
                covering()?;
                storage_matrix("a", a)?;
                storage_matrix("b", b)?;
                if a.cols() != b.rows() {
                    return Err(format!(
                        "matmul inner dimensions differ: {}×{} · {}×{}",
                        a.rows(),
                        a.cols(),
                        b.rows(),
                        b.cols()
                    ));
                }
                if a.rows() == 0 || a.cols() == 0 || b.cols() == 0 {
                    return Err("matmul needs nonzero dimensions".into());
                }
                if mult_stages + add_stages == 0 {
                    return Err("matmul needs at least 1 pipeline stage".into());
                }
                if self.policy.is_uniform() && matmul_routes_to_multi(a, b) {
                    // Surface any remaining planner refusal as a typed
                    // submission error, never a worker panic.
                    matmul_multi_plan(*mult_stages, *add_stages, a, b)
                        .map_err(|e| e.to_string())?;
                }
            }
            Kernel::Mvm { a, x, p: pes, .. } => {
                covering()?;
                storage_matrix("a", a)?;
                if a.cols() != x.len() {
                    return Err(format!(
                        "mvm dimension mismatch: {}×{} · {}",
                        a.rows(),
                        a.cols(),
                        x.len()
                    ));
                }
                if *pes == 0 {
                    return Err("mvm needs at least 1 PE".into());
                }
            }
            Kernel::Lu { a, p: pes, .. } => {
                uniform_only("LU")?;
                storage_matrix("a", a)?;
                if a.rows() != a.cols() {
                    return Err("LU needs a square matrix".into());
                }
                if *pes == 0 {
                    return Err("LU needs at least 1 update PE".into());
                }
                for k in 0..a.rows() {
                    if SoftFloat::from_bits(p.compute, a.get(k, k)).is_zero() {
                        return Err(format!("zero pivot at row {k} (no pivoting)"));
                    }
                }
            }
            Kernel::Fft { data, .. } => {
                uniform_only("FFT")?;
                if !data.len().is_power_of_two() || data.len() < 2 {
                    return Err(format!(
                        "FFT length {} is not a power of two ≥ 2",
                        data.len()
                    ));
                }
            }
            Kernel::Apfloat { op, fmt, a, b, c } => {
                // The ≤64-bit policy formats cannot name a wide format;
                // refuse anything but a uniform policy so nobody
                // mistakes the policy for the operative precision.
                uniform_only("apfloat")?;
                if a.len() != b.len() {
                    return Err(format!(
                        "apfloat operand streams differ in length: {} vs {}",
                        a.len(),
                        b.len()
                    ));
                }
                if *op == ApOp::Fma {
                    if c.len() != a.len() {
                        return Err(format!(
                            "apfloat fma addend stream has {} elements, operands have {}",
                            c.len(),
                            a.len()
                        ));
                    }
                } else if !c.is_empty() {
                    return Err(format!(
                        "apfloat {op:?} takes two operands but {} addends were supplied",
                        c.len()
                    ));
                }
                for (name, stream) in [("a", a), ("b", b), ("c", c)] {
                    for (i, enc) in stream.iter().enumerate() {
                        if !fmt.is_canonical(enc) {
                            return Err(format!(
                                "apfloat operand {name}[{i}] is not a canonical {} encoding",
                                fmt.canonical_name()
                            ));
                        }
                    }
                }
            }
            Kernel::Sweep { .. } => uniform_only("a depth sweep")?,
        }
        Ok(())
    }

    /// Execute the job. Pure in the payload: the `cache` only memoizes
    /// [`Kernel::Sweep`] synthesis (identical results warm or cold),
    /// and every kernel starts from freshly built, empty pipelines, so
    /// the result is bit-identical no matter which thread, worker count
    /// or batch the job ran in. Uniform policies take the crate's
    /// original kernel paths; mixed policies take the
    /// [`fpfpga_matmul::mixed`] kernels (whose uniform degeneration is
    /// itself property-tested).
    pub fn run(&self, tech: &Tech, cache: &SweepCache) -> JobResult {
        let p = self.policy;
        let mode = self.mode;
        match &self.kernel {
            Kernel::Eltwise { op, stages, pairs } => {
                let mut unit = DelayLineUnit::new(p.compute, mode, op.delay_op(), *stages);
                let mut results = Vec::with_capacity(pairs.len());
                eltwise_batch_into(&mut unit, p, mode, pairs, &mut results);
                JobResult::Eltwise(results)
            }
            Kernel::Dot {
                mult_stages,
                add_stages,
                x,
                y,
            } => {
                if p.is_uniform() {
                    let mut unit = DotProductUnit::new(p.compute, mode, *mult_stages, *add_stages);
                    let (value, cycles) = unit.dot_batched(x, y);
                    JobResult::Dot {
                        value,
                        flags: unit.flags,
                        cycles,
                    }
                } else {
                    let d = mixed::mixed_dot(p, mode, x, y, *mult_stages, *add_stages);
                    JobResult::Dot {
                        value: d.bits,
                        flags: d.flags,
                        cycles: d.cycles,
                    }
                }
            }
            Kernel::MatMul {
                mult_stages,
                add_stages,
                a,
                b,
                backend,
            } => {
                if p.is_uniform() {
                    if matmul_routes_to_multi(a, b) {
                        // Over-threshold or non-square: blocked multi-array
                        // path. The job itself stays single-threaded
                        // (threads = 1) — the pool's workers are the
                        // parallelism — and the result is thread-count
                        // invariant anyway, so run_serial agrees bit for
                        // bit. Stats are summed across arrays.
                        let mm = matmul_multi_plan(*mult_stages, *add_stages, a, b)
                            .expect("matmul plan was validated at submission");
                        let (c, ms) = mm
                            .run(mode, *mult_stages, *add_stages, a, b, *backend, 1)
                            .expect("operands match the plan built from them");
                        JobResult::MatMul { c, stats: ms.total }
                    } else {
                        let (c, stats) = LinearArray::multiply_batched(
                            p.compute,
                            mode,
                            *mult_stages,
                            *add_stages,
                            a,
                            b,
                            *backend,
                        );
                        JobResult::MatMul { c, stats }
                    }
                } else {
                    let (c, _flags) = mixed::mixed_matmul(p, mode, a, b);
                    let (n, m, cols) = (a.rows() as u64, a.cols() as u64, b.cols() as u64);
                    // The mixed path has no array-cycle model; report
                    // MAC counts only.
                    let stats = ArrayStats {
                        useful_macs: n * m * cols,
                        ..ArrayStats::default()
                    };
                    JobResult::MatMul { c, stats }
                }
            }
            Kernel::Mvm {
                mult_stages,
                add_stages,
                p: pes,
                a,
                x,
            } => {
                if p.is_uniform() {
                    let engine = MvmEngine::new(p.compute, mode, *mult_stages, *add_stages, *pes);
                    let (y, cycles) = engine.multiply_batched(a, x);
                    JobResult::Mvm { y, cycles }
                } else {
                    let (y, _flags, cycles) =
                        mixed::mixed_mvm(p, mode, a, x, *mult_stages, *add_stages);
                    JobResult::Mvm { y, cycles }
                }
            }
            Kernel::Lu {
                div_stages,
                mac_stages,
                p: pes,
                a,
            } => {
                let engine = LuEngine::new(p.compute, mode, *div_stages, *mac_stages, *pes);
                let r = engine.factor_batched(a);
                JobResult::Lu {
                    lu: r.lu,
                    cycles: r.cycles,
                    divs: r.divs,
                    macs: r.macs,
                    flags: r.flags,
                }
            }
            Kernel::Fft {
                mult_stages,
                add_stages,
                data,
                inverse,
            } => {
                let engine = FftEngine::new(p.compute, mode, *mult_stages, *add_stages);
                let (out, cycles) = engine.run_batched(data, *inverse);
                JobResult::Fft { data: out, cycles }
            }
            Kernel::Apfloat { op, fmt, a, b, c } => {
                let results = a
                    .iter()
                    .zip(b)
                    .enumerate()
                    .map(|(i, (x, y))| match op {
                        ApOp::Add => limb_add(*fmt, x, y, mode),
                        ApOp::Sub => limb_sub(*fmt, x, y, mode),
                        ApOp::Mul => limb_mul(*fmt, x, y, mode),
                        ApOp::Fma => limb_fma(*fmt, x, y, &c[i], mode),
                    })
                    .collect();
                JobResult::Apfloat(results)
            }
            Kernel::Sweep { kind, opts } => {
                let sweep = CoreSweep::builder(*kind, p.compute)
                    .cached(cache)
                    .run(tech, *opts);
                JobResult::Sweep {
                    opt: sweep.opt().clone(),
                    depths: sweep.reports.len(),
                }
            }
        }
    }
}

/// Stream one eltwise payload through `unit` (which must be built in
/// `policy.compute`), converting operands in from `policy.storage` and
/// results back out, accumulating the conversion flags per element.
/// With `storage == compute` this is exactly the unit's own
/// `run_batch_into`, untouched bits and all. The unit drains fully per
/// call, so results are independent of batching.
fn eltwise_batch_into(
    unit: &mut DelayLineUnit,
    policy: PrecisionPolicy,
    mode: RoundMode,
    pairs: &[(u64, u64)],
    out: &mut Vec<(u64, Flags)>,
) {
    if policy.storage == policy.compute {
        unit.run_batch_into(pairs, out);
        return;
    }
    let mut in_flags = Vec::with_capacity(pairs.len());
    let converted: Vec<(u64, u64)> = pairs
        .iter()
        .map(|&(a, b)| {
            let (ca, fa) = convert::convert(policy.storage, a, policy.compute, mode);
            let (cb, fb) = convert::convert(policy.storage, b, policy.compute, mode);
            in_flags.push(fa | fb);
            (ca, cb)
        })
        .collect();
    let mut computed = Vec::with_capacity(converted.len());
    unit.run_batch_into(&converted, &mut computed);
    out.reserve(computed.len());
    for ((bits, f), inf) in computed.into_iter().zip(in_flags) {
        let (sb, nf) = convert::convert(policy.compute, bits, policy.storage, mode);
        out.push((sb, inf | f | nf));
    }
}

/// Run a coalesced batch of eltwise streams of one [`CoalesceKey`]
/// through a single shared unit, one bulk call per job straight into
/// that job's result vector — no concatenation, no re-splitting, no
/// intermediate allocation. Each element's value depends only on its
/// own operands (and the delay line is empty between bulk calls), so
/// this is bit-identical to running the jobs one by one
/// (property-tested) — for mixed policies too, since the format
/// converters are stateless.
pub fn run_coalesced(key: CoalesceKey, batches: &[&[(u64, u64)]]) -> Vec<JobResult> {
    let mut unit = DelayLineUnit::new(key.policy.compute, key.mode, key.op.delay_op(), key.stages);
    batches
        .iter()
        .map(|b| {
            let mut results = Vec::with_capacity(b.len());
            eltwise_batch_into(&mut unit, key.policy, key.mode, b, &mut results);
            JobResult::Eltwise(results)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RM: RoundMode = RoundMode::NearestEven;

    fn enc(fmt: FpFormat, v: f64) -> u64 {
        SoftFloat::from_f64(fmt, v).bits()
    }

    #[test]
    fn eltwise_runs_and_flags() {
        let fmt = FpFormat::SINGLE;
        let job = Job::uniform(
            Kernel::Eltwise {
                op: EltOp::Add,
                stages: 6,
                pairs: vec![
                    (enc(fmt, 1.5), enc(fmt, 2.25)),
                    (enc(fmt, -1.0), enc(fmt, 1.0)),
                ],
            },
            fmt,
            RM,
        );
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::Eltwise(rs) => {
                assert_eq!(rs.len(), 2);
                assert_eq!(SoftFloat::from_bits(fmt, rs[0].0).to_f64(), 3.75);
                assert_eq!(SoftFloat::from_bits(fmt, rs[1].0).to_f64(), 0.0);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn eltwise_narrow_compute_rounds_through_the_compute_format() {
        // Storage f64, compute f32: the small addend must vanish in the
        // compute format even though storage could represent the sum.
        let policy = PrecisionPolicy::new(FpFormat::SINGLE, FpFormat::SINGLE, FpFormat::DOUBLE);
        let st = FpFormat::DOUBLE;
        let tiny = 2f64.powi(-30);
        let job = Job::new(
            Kernel::Eltwise {
                op: EltOp::Add,
                stages: 4,
                pairs: vec![(enc(st, 1.0), enc(st, tiny))],
            },
            policy,
            RM,
        );
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::Eltwise(rs) => {
                assert_eq!(SoftFloat::from_bits(st, rs[0].0).to_f64(), 1.0);
                assert!(rs[0].1.inexact, "losing the addend must raise inexact");
            }
            other => panic!("wrong result kind: {other:?}"),
        }
        // The uniform job at storage precision keeps the addend.
        let job64 = Job::uniform(
            Kernel::Eltwise {
                op: EltOp::Add,
                stages: 4,
                pairs: vec![(enc(st, 1.0), enc(st, tiny))],
            },
            st,
            RM,
        );
        match job64.run(&Tech::virtex2pro(), &cache) {
            JobResult::Eltwise(rs) => {
                assert_eq!(SoftFloat::from_bits(st, rs[0].0).to_f64(), 1.0 + tiny);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn mixed_dot_job_matches_the_mixed_kernel() {
        let policy = PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE);
        let fmt = policy.storage;
        let x: Vec<u64> = (0..37).map(|i| enc(fmt, (i as f64 * 0.31).sin())).collect();
        let y: Vec<u64> = (0..37).map(|i| enc(fmt, (i as f64 * 0.17).cos())).collect();
        let job = Job::new(
            Kernel::Dot {
                mult_stages: 5,
                add_stages: 4,
                x: x.clone(),
                y: y.clone(),
            },
            policy,
            RM,
        );
        let want = mixed::mixed_dot(policy, RM, &x, &y, 5, 4);
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::Dot {
                value,
                flags,
                cycles,
            } => {
                assert_eq!(value, want.bits);
                assert_eq!(flags, want.flags);
                assert_eq!(cycles, want.cycles);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn coalesced_matches_individual_runs() {
        // One uniform and one mixed key: the shared-unit path must be
        // bit-identical to solo runs for both.
        for policy in [
            PrecisionPolicy::uniform(FpFormat::FP48),
            PrecisionPolicy::new(FpFormat::DOUBLE, FpFormat::DOUBLE, FpFormat::FP48),
        ] {
            let st = policy.storage;
            let key = CoalesceKey {
                op: EltOp::Mul,
                policy,
                mode: RM,
                stages: 9,
            };
            let mk = |vals: &[(f64, f64)]| -> Vec<(u64, u64)> {
                vals.iter()
                    .map(|&(a, b)| (enc(st, a), enc(st, b)))
                    .collect()
            };
            let b1 = mk(&[(1.5, 2.0), (3.0, -0.25)]);
            let b2 = mk(&[(1e10, 1e-10)]);
            let b3 = mk(&[]);
            let coalesced = run_coalesced(key, &[&b1, &b2, &b3]);
            let tech = Tech::virtex2pro();
            let cache = SweepCache::new();
            for (got, pairs) in coalesced.iter().zip([&b1, &b2, &b3]) {
                let solo = Job::new(
                    Kernel::Eltwise {
                        op: key.op,
                        stages: key.stages,
                        pairs: pairs.clone(),
                    },
                    policy,
                    key.mode,
                )
                .run(&tech, &cache);
                assert_eq!(*got, solo);
            }
        }
    }

    #[test]
    fn class_hash_ignores_payload_but_not_config_or_policy() {
        let fmt = FpFormat::SINGLE;
        let elt = |stages: u32, pairs: Vec<(u64, u64)>| Kernel::Eltwise {
            op: EltOp::Add,
            stages,
            pairs,
        };
        let j1 = Job::uniform(elt(6, vec![(1, 2)]), fmt, RM);
        let j2 = Job::uniform(elt(6, vec![(3, 4), (5, 6)]), fmt, RM);
        let j3 = Job::uniform(elt(7, vec![(1, 2)]), fmt, RM);
        let j4 = Job::new(
            elt(6, vec![(1, 2)]),
            PrecisionPolicy::new(FpFormat::DOUBLE, FpFormat::DOUBLE, fmt),
            RM,
        );
        assert_eq!(j1.class_hash(), j2.class_hash());
        assert_ne!(j1.class_hash(), j3.class_hash());
        assert_ne!(
            j1.class_hash(),
            j4.class_hash(),
            "policy is part of the class"
        );
    }

    #[test]
    fn validate_catches_bad_payloads() {
        let fmt = FpFormat::SINGLE;
        assert!(Job::uniform(
            Kernel::Dot {
                mult_stages: 5,
                add_stages: 5,
                x: vec![1, 2],
                y: vec![1],
            },
            fmt,
            RM,
        )
        .validate()
        .is_err());
        assert!(Job::uniform(
            Kernel::Fft {
                mult_stages: 5,
                add_stages: 5,
                data: vec![Cplx::zero(); 3],
                inverse: false,
            },
            fmt,
            RM,
        )
        .validate()
        .is_err());
        // Zero diagonal → refused up front instead of a worker panic.
        let a = Matrix::zero(fmt, 3, 3);
        assert!(Job::uniform(
            Kernel::Lu {
                div_stages: 8,
                mac_stages: 6,
                p: 2,
                a,
            },
            fmt,
            RM,
        )
        .validate()
        .is_err());
    }

    #[test]
    fn validate_enforces_policy_capabilities() {
        let fmt = FpFormat::SINGLE;
        // LU under a mixed policy is refused.
        let lu = Kernel::Lu {
            div_stages: 8,
            mac_stages: 6,
            p: 1,
            a: Matrix::identity(fmt, 2),
        };
        let mixed_policy = PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE);
        let err = Job::new(lu, mixed_policy, RM).validate().unwrap_err();
        assert!(err.contains("uniform"), "{err}");
        // A narrowing accumulate format is refused for dot products.
        let narrow = PrecisionPolicy::new(FpFormat::DOUBLE, FpFormat::SINGLE, FpFormat::DOUBLE);
        let err = Job::new(
            Kernel::Dot {
                mult_stages: 5,
                add_stages: 4,
                x: vec![0],
                y: vec![0],
            },
            narrow,
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("does not cover"), "{err}");
        // A matrix in the wrong storage format is refused.
        let err = Job::new(
            Kernel::MatMul {
                mult_stages: 5,
                add_stages: 4,
                a: Matrix::identity(FpFormat::DOUBLE, 2),
                b: Matrix::identity(FpFormat::DOUBLE, 2),
                backend: UnitBackend::Fast,
            },
            PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE),
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("policy stores"), "{err}");
    }

    #[test]
    fn matmul_zero_and_stageless_payloads_are_refused_not_panics() {
        let fmt = FpFormat::SINGLE;
        // 0×0 operands used to pass the square check and then panic in
        // the worker at `pes[0]`.
        let err = Job::uniform(
            Kernel::MatMul {
                mult_stages: 5,
                add_stages: 4,
                a: Matrix::zero(fmt, 0, 0),
                b: Matrix::zero(fmt, 0, 0),
                backend: UnitBackend::Fast,
            },
            fmt,
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("nonzero"), "{err}");
        // mult+add = 0 used to trip Schedule::new's assert on a worker.
        let err = Job::uniform(
            Kernel::MatMul {
                mult_stages: 0,
                add_stages: 0,
                a: Matrix::identity(fmt, 2),
                b: Matrix::identity(fmt, 2),
                backend: UnitBackend::Fast,
            },
            fmt,
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("stage"), "{err}");
        // Mismatched inner dimensions are a typed refusal.
        let err = Job::uniform(
            Kernel::MatMul {
                mult_stages: 5,
                add_stages: 4,
                a: Matrix::zero(fmt, 2, 3),
                b: Matrix::zero(fmt, 2, 2),
                backend: UnitBackend::Fast,
            },
            fmt,
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("inner dimensions"), "{err}");
    }

    #[test]
    fn rectangular_uniform_matmul_routes_to_multi_and_matches_reference() {
        let fmt = FpFormat::SINGLE;
        let a = Matrix::from_fn(fmt, 7, 3, |i, j| ((i * 3 + j) as f64 * 0.2).sin());
        let b = Matrix::from_fn(fmt, 3, 5, |i, j| ((i + 2 * j) as f64 * 0.3).cos());
        assert!(matmul_routes_to_multi(&a, &b));
        let job = Job::uniform(
            Kernel::MatMul {
                mult_stages: 5,
                add_stages: 4,
                a: a.clone(),
                b: b.clone(),
                backend: UnitBackend::Fast,
            },
            fmt,
            RM,
        );
        job.validate().expect("rectangular matmul is now valid");
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::MatMul { c, stats } => {
                let want = fpfpga_matmul::reference::reference_matmul(&a, &b, RM);
                assert_eq!(c, want);
                assert_eq!(stats.useful_macs, 7 * 3 * 5);
                assert!(stats.cycles > 0, "multi path models array cycles");
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn over_threshold_square_matmul_matches_the_legacy_array() {
        // A 80×80 uniform matmul routes to the multi-array path; the
        // product must still be bit-identical (flags too, via stats
        // equivalence tests in fpfpga-matmul) to the single flat array.
        let fmt = FpFormat::SINGLE;
        let n = MULTI_ARRAY_THRESHOLD + 16;
        let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.001).sin());
        let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + 3 * j) as f64 * 0.002).cos());
        assert!(matmul_routes_to_multi(&a, &b));
        assert!(!matmul_routes_to_multi(
            &Matrix::identity(fmt, MULTI_ARRAY_THRESHOLD),
            &Matrix::identity(fmt, MULTI_ARRAY_THRESHOLD)
        ));
        let job = Job::uniform(
            Kernel::MatMul {
                mult_stages: 5,
                add_stages: 4,
                a: a.clone(),
                b: b.clone(),
                backend: UnitBackend::Fast,
            },
            fmt,
            RM,
        );
        job.validate().unwrap();
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::MatMul { c, .. } => {
                let (want, _) =
                    LinearArray::multiply_batched(fmt, RM, 5, 4, &a, &b, UnitBackend::Fast);
                assert_eq!(c, want);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn apfloat_job_matches_the_serial_limb_kernels() {
        let fmt = LimbFormat::F128;
        let enc = |e_off: i64, lo: u64, hi: u64| {
            fmt.pack_parts(false, (fmt.bias() + e_off) as u64, &[lo, hi])
        };
        let a = vec![enc(0, 0, 0), enc(3, 0xdead_beef, 0x1234), enc(-80, 7, 0)];
        let b = vec![enc(1, 0, 0), enc(-2, 1, 0xffff), enc(90, 0, 0x42)];
        let c = vec![enc(2, 5, 0), enc(0, 0, 0), enc(11, 1, 1)];
        let cache = SweepCache::new();
        let tech = Tech::virtex2pro();
        type BinKernel = fn(LimbFormat, &[u64], &[u64], RoundMode) -> (Vec<u64>, Flags);
        let binaries: [(ApOp, BinKernel); 3] = [
            (ApOp::Add, limb_add),
            (ApOp::Sub, limb_sub),
            (ApOp::Mul, limb_mul),
        ];
        for (op, kernel) in binaries {
            let job = Job::uniform(
                Kernel::Apfloat {
                    op,
                    fmt,
                    a: a.clone(),
                    b: b.clone(),
                    c: vec![],
                },
                FpFormat::SINGLE,
                RM,
            );
            job.validate().expect("canonical payload is valid");
            match job.run(&tech, &cache) {
                JobResult::Apfloat(rs) => {
                    let want: Vec<_> = a
                        .iter()
                        .zip(&b)
                        .map(|(x, y)| kernel(fmt, x, y, RM))
                        .collect();
                    assert_eq!(rs, want, "{op:?}");
                }
                other => panic!("wrong result kind: {other:?}"),
            }
        }
        let job = Job::uniform(
            Kernel::Apfloat {
                op: ApOp::Fma,
                fmt,
                a: a.clone(),
                b: b.clone(),
                c: c.clone(),
            },
            FpFormat::SINGLE,
            RM,
        );
        job.validate().unwrap();
        match job.run(&tech, &cache) {
            JobResult::Apfloat(rs) => {
                let want: Vec<_> = (0..a.len())
                    .map(|i| limb_fma(fmt, &a[i], &b[i], &c[i], RM))
                    .collect();
                assert_eq!(rs, want);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn apfloat_validate_refuses_bad_payloads_and_policies() {
        let fmt = LimbFormat::F256;
        let one = fmt.pack_parts(false, fmt.bias() as u64, &[0, 0, 0, 0]);
        let base = |op, a: Vec<Vec<u64>>, b: Vec<Vec<u64>>, c: Vec<Vec<u64>>| {
            Job::uniform(Kernel::Apfloat { op, fmt, a, b, c }, FpFormat::SINGLE, RM)
        };
        // Mismatched stream lengths.
        let err = base(
            ApOp::Add,
            vec![one.clone(), one.clone()],
            vec![one.clone()],
            vec![],
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("differ in length"), "{err}");
        // Fma without addends; non-fma with addends.
        let err = base(ApOp::Fma, vec![one.clone()], vec![one.clone()], vec![])
            .validate()
            .unwrap_err();
        assert!(err.contains("addend"), "{err}");
        let err = base(
            ApOp::Mul,
            vec![one.clone()],
            vec![one.clone()],
            vec![one.clone()],
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("two operands"), "{err}");
        // Non-canonical operand: wrong limb count.
        let err = base(ApOp::Add, vec![vec![0; 3]], vec![one.clone()], vec![])
            .validate()
            .unwrap_err();
        assert!(err.contains("canonical"), "{err}");
        // Stray bits above total_bits (a format with top-limb padding;
        // f256 is exactly 4 limbs, so it has none).
        let pad = LimbFormat::new(19, 200);
        let pad_one = pad.pack_parts(false, pad.bias() as u64, &[0, 0, 0, 0]);
        let mut stray = pad_one.clone();
        *stray.last_mut().unwrap() |= 1 << 63;
        let err = Job::uniform(
            Kernel::Apfloat {
                op: ApOp::Add,
                fmt: pad,
                a: vec![stray],
                b: vec![pad_one],
                c: vec![],
            },
            FpFormat::SINGLE,
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("canonical"), "{err}");
        // Mixed policies cannot express a wide format.
        let err = Job::new(
            Kernel::Apfloat {
                op: ApOp::Add,
                fmt,
                a: vec![one.clone()],
                b: vec![one.clone()],
                c: vec![],
            },
            PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE),
            RM,
        )
        .validate()
        .unwrap_err();
        assert!(err.contains("uniform"), "{err}");
    }

    #[test]
    fn sweep_job_uses_the_shard_cache() {
        let cache = SweepCache::new();
        let tech = Tech::virtex2pro();
        let job = Job::uniform(
            Kernel::Sweep {
                kind: CoreKind::Adder,
                opts: SynthesisOptions::SPEED,
            },
            FpFormat::SINGLE,
            RM,
        );
        let r1 = job.run(&tech, &cache);
        assert_eq!(cache.misses(), 1);
        let r2 = job.run(&tech, &cache);
        assert_eq!(cache.misses(), 1, "second run must be a cache hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(r1, r2);
    }
}
