//! The serving layer's unit of work: one [`Job`] per request.
//!
//! Every variant wraps one of the library's kernels with its own
//! per-job format and stage-count configuration — the run-time
//! mixed-precision job stream the multi-precision-core literature
//! serves from one device. Execution is a pure function of the job
//! payload: [`Job::run`] on any thread, against any (warm or cold)
//! [`SweepCache`], returns bit-identical [`JobResult`]s, which is what
//! lets the pool schedule freely while the property tests pin the
//! numerics.

use std::hash::{Hash, Hasher};

use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::analysis::{CoreKind, CoreSweep};
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_fpu::SweepCache;
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::{
    array::ArrayStats, Cplx, DotProductUnit, FftEngine, LinearArray, LuEngine, Matrix, MvmEngine,
};
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};

/// Elementwise operation of a coalescible [`Job::Eltwise`] stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EltOp {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
    /// a ÷ b
    Div,
    /// √a (second operand ignored)
    Sqrt,
}

impl EltOp {
    fn delay_op(self) -> DelayOp {
        match self {
            EltOp::Add => DelayOp::Add,
            EltOp::Sub => DelayOp::Sub,
            EltOp::Mul => DelayOp::Mul,
            EltOp::Div => DelayOp::Div,
            EltOp::Sqrt => DelayOp::Sqrt,
        }
    }
}

/// The class of jobs that may share one [`FpPipe::run_batch`] call:
/// same operation, format, rounding mode and pipeline depth. Streams
/// of the same class concatenate without changing any element's result
/// (each element's value is independent of its batch position —
/// property-tested).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    /// Elementwise operation.
    pub op: EltOp,
    /// Operand format.
    pub fmt: FpFormat,
    /// Rounding mode.
    pub mode: RoundMode,
    /// Pipeline depth of the serving unit.
    pub stages: u32,
}

/// One request against the serving layer.
#[derive(Clone, Debug)]
pub enum Job {
    /// A coalescible elementwise stream: `op(a, b)` per pair, through
    /// one pipelined unit at initiation interval 1.
    Eltwise {
        /// Elementwise operation.
        op: EltOp,
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Pipeline depth of the unit.
        stages: u32,
        /// Operand pairs (raw encodings in `fmt`).
        pairs: Vec<(u64, u64)>,
    },
    /// Dot product on the round-robin accumulator-bank unit.
    Dot {
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth (= accumulator bank size).
        add_stages: u32,
        /// Left vector.
        x: Vec<u64>,
        /// Right vector.
        y: Vec<u64>,
    },
    /// Square matrix multiply on the linear PE array.
    MatMul {
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// Left operand.
        a: Matrix,
        /// Right operand.
        b: Matrix,
        /// PE pipe backend.
        backend: UnitBackend,
    },
    /// Matrix-vector multiply on a `p`-PE engine.
    Mvm {
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// PE count.
        p: usize,
        /// The matrix.
        a: Matrix,
        /// The vector.
        x: Vec<u64>,
    },
    /// LU factorization (no pivoting).
    Lu {
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Divider pipeline depth.
        div_stages: u32,
        /// Fused-MAC pipeline depth.
        mac_stages: u32,
        /// Update PEs.
        p: u32,
        /// The matrix to factor.
        a: Matrix,
    },
    /// Radix-2 FFT on one butterfly unit.
    Fft {
        /// Operand format.
        fmt: FpFormat,
        /// Rounding mode.
        mode: RoundMode,
        /// Multiplier pipeline depth.
        mult_stages: u32,
        /// Adder pipeline depth.
        add_stages: u32,
        /// Input samples (power-of-two length ≥ 2).
        data: Vec<Cplx>,
        /// Inverse transform?
        inverse: bool,
    },
    /// A design-space depth sweep (served from the worker's
    /// [`SweepCache`] shard; repeats of the same key are cache hits).
    Sweep {
        /// Which core.
        kind: CoreKind,
        /// Operand format.
        fmt: FpFormat,
        /// Tool objective.
        opts: SynthesisOptions,
    },
}

/// The result of one [`Job`], bit-exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JobResult {
    /// Per-pair results with flags, in input order.
    Eltwise(Vec<(u64, Flags)>),
    /// Dot product value, accumulated flags, cycles consumed.
    Dot {
        /// Result encoding.
        value: u64,
        /// Accumulated exception flags.
        flags: Flags,
        /// Cycles consumed by the unit.
        cycles: u64,
    },
    /// Product matrix and the array's run statistics.
    MatMul {
        /// C = A·B.
        c: Matrix,
        /// Cycle/MAC statistics of the run.
        stats: ArrayStats,
    },
    /// Result vector and cycles.
    Mvm {
        /// y = A·x.
        y: Vec<u64>,
        /// Cycles consumed.
        cycles: u64,
    },
    /// Packed LU factors and run counters.
    Lu {
        /// L (unit diagonal implicit) and U packed together.
        lu: Matrix,
        /// Cycles consumed.
        cycles: u64,
        /// Division operations issued.
        divs: u64,
        /// Fused MACs issued.
        macs: u64,
        /// Accumulated exception flags.
        flags: Flags,
    },
    /// The transform and cycles.
    Fft {
        /// Transformed samples.
        data: Vec<Cplx>,
        /// Cycles consumed.
        cycles: u64,
    },
    /// The sweep's opt point and the sweep depth count.
    Sweep {
        /// Highest freq/area implementation.
        opt: ImplementationReport,
        /// Number of depths swept.
        depths: usize,
    },
}

impl Job {
    /// The flop-ish size of the job — used for throughput accounting,
    /// never for scheduling decisions.
    pub fn work_items(&self) -> u64 {
        match self {
            Job::Eltwise { pairs, .. } => pairs.len() as u64,
            Job::Dot { x, .. } => 2 * x.len() as u64,
            Job::MatMul { a, .. } => {
                let n = a.rows() as u64;
                2 * n * n * n
            }
            Job::Mvm { a, .. } => 2 * (a.rows() * a.cols()) as u64,
            Job::Lu { a, .. } => {
                let n = a.rows() as u64;
                2 * n * n * n / 3
            }
            Job::Fft { data, .. } => {
                let n = data.len() as u64;
                5 * n * (n.max(2).ilog2() as u64)
            }
            Job::Sweep { .. } => 1,
        }
    }

    /// The job's *class* — everything about its configuration except
    /// the payload data. Jobs of one class route to one worker shard,
    /// so repeated sweeps hit a warm cache and coalescible streams
    /// meet in one queue.
    pub fn class_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::mem::discriminant(self).hash(&mut h);
        match self {
            Job::Eltwise {
                op,
                fmt,
                mode,
                stages,
                ..
            } => (op, fmt, mode, stages).hash(&mut h),
            Job::Dot {
                fmt,
                mode,
                mult_stages,
                add_stages,
                ..
            } => (fmt, mode, mult_stages, add_stages).hash(&mut h),
            Job::MatMul {
                fmt,
                mode,
                mult_stages,
                add_stages,
                backend,
                ..
            } => {
                let fast = matches!(backend, UnitBackend::Fast);
                (fmt, mode, mult_stages, add_stages, fast).hash(&mut h);
            }
            Job::Mvm {
                fmt,
                mode,
                mult_stages,
                add_stages,
                p,
                ..
            } => (fmt, mode, mult_stages, add_stages, p).hash(&mut h),
            Job::Lu {
                fmt,
                mode,
                div_stages,
                mac_stages,
                p,
                ..
            } => (fmt, mode, div_stages, mac_stages, p).hash(&mut h),
            Job::Fft {
                fmt,
                mode,
                mult_stages,
                add_stages,
                inverse,
                ..
            } => (fmt, mode, mult_stages, add_stages, inverse).hash(&mut h),
            Job::Sweep { kind, fmt, opts } => (kind, fmt, opts).hash(&mut h),
        }
        h.finish()
    }

    /// The coalescing class, for jobs that may share one `run_batch`.
    pub fn coalesce_key(&self) -> Option<CoalesceKey> {
        match *self {
            Job::Eltwise {
                op,
                fmt,
                mode,
                stages,
                ..
            } => Some(CoalesceKey {
                op,
                fmt,
                mode,
                stages,
            }),
            _ => None,
        }
    }

    /// Check the payload against the kernel's preconditions, so a bad
    /// request is refused at submission instead of killing a worker.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Job::Eltwise { stages, .. } => {
                if *stages == 0 {
                    return Err("eltwise unit needs at least 1 stage".into());
                }
            }
            Job::Dot { x, y, .. } => {
                if x.len() != y.len() {
                    return Err(format!(
                        "dot vector lengths differ: {} vs {}",
                        x.len(),
                        y.len()
                    ));
                }
            }
            Job::MatMul { a, b, .. } => {
                let n = a.rows();
                if a.cols() != n || b.rows() != n || b.cols() != n {
                    return Err("matmul needs square matrices of one size".into());
                }
            }
            Job::Mvm { a, x, p, .. } => {
                if a.cols() != x.len() {
                    return Err(format!(
                        "mvm dimension mismatch: {}×{} · {}",
                        a.rows(),
                        a.cols(),
                        x.len()
                    ));
                }
                if *p == 0 {
                    return Err("mvm needs at least 1 PE".into());
                }
            }
            Job::Lu { a, fmt, p, .. } => {
                if a.rows() != a.cols() {
                    return Err("LU needs a square matrix".into());
                }
                if *p == 0 {
                    return Err("LU needs at least 1 update PE".into());
                }
                for k in 0..a.rows() {
                    if SoftFloat::from_bits(*fmt, a.get(k, k)).is_zero() {
                        return Err(format!("zero pivot at row {k} (no pivoting)"));
                    }
                }
            }
            Job::Fft { data, .. } => {
                if !data.len().is_power_of_two() || data.len() < 2 {
                    return Err(format!(
                        "FFT length {} is not a power of two ≥ 2",
                        data.len()
                    ));
                }
            }
            Job::Sweep { .. } => {}
        }
        Ok(())
    }

    /// Execute the job. Pure in the payload: the `cache` only memoizes
    /// [`Job::Sweep`] synthesis (identical results warm or cold), and
    /// every kernel starts from freshly built, empty pipelines, so the
    /// result is bit-identical no matter which thread, worker count or
    /// batch the job ran in.
    pub fn run(&self, tech: &Tech, cache: &SweepCache) -> JobResult {
        match self {
            Job::Eltwise {
                op,
                fmt,
                mode,
                stages,
                pairs,
            } => {
                let mut unit = DelayLineUnit::new(*fmt, *mode, op.delay_op(), *stages);
                JobResult::Eltwise(unit.run_batch(pairs))
            }
            Job::Dot {
                fmt,
                mode,
                mult_stages,
                add_stages,
                x,
                y,
            } => {
                let mut unit = DotProductUnit::new(*fmt, *mode, *mult_stages, *add_stages);
                let (value, cycles) = unit.dot_batched(x, y);
                JobResult::Dot {
                    value,
                    flags: unit.flags,
                    cycles,
                }
            }
            Job::MatMul {
                fmt,
                mode,
                mult_stages,
                add_stages,
                a,
                b,
                backend,
            } => {
                let (c, stats) = LinearArray::multiply_batched(
                    *fmt,
                    *mode,
                    *mult_stages,
                    *add_stages,
                    a,
                    b,
                    *backend,
                );
                JobResult::MatMul { c, stats }
            }
            Job::Mvm {
                fmt,
                mode,
                mult_stages,
                add_stages,
                p,
                a,
                x,
            } => {
                let engine = MvmEngine::new(*fmt, *mode, *mult_stages, *add_stages, *p);
                let (y, cycles) = engine.multiply_batched(a, x);
                JobResult::Mvm { y, cycles }
            }
            Job::Lu {
                fmt,
                mode,
                div_stages,
                mac_stages,
                p,
                a,
            } => {
                let engine = LuEngine::new(*fmt, *mode, *div_stages, *mac_stages, *p);
                let r = engine.factor_batched(a);
                JobResult::Lu {
                    lu: r.lu,
                    cycles: r.cycles,
                    divs: r.divs,
                    macs: r.macs,
                    flags: r.flags,
                }
            }
            Job::Fft {
                fmt,
                mode,
                mult_stages,
                add_stages,
                data,
                inverse,
            } => {
                let engine = FftEngine::new(*fmt, *mode, *mult_stages, *add_stages);
                let (out, cycles) = engine.run_batched(data, *inverse);
                JobResult::Fft { data: out, cycles }
            }
            Job::Sweep { kind, fmt, opts } => {
                let sweep = CoreSweep::new_cached(*kind, *fmt, tech, *opts, cache);
                JobResult::Sweep {
                    opt: sweep.opt().clone(),
                    depths: sweep.reports.len(),
                }
            }
        }
    }
}

/// Run a coalesced batch of [`Job::Eltwise`] streams of one
/// [`CoalesceKey`] through a single shared unit, one bulk
/// [`FpPipe::run_batch_into`] call per job straight into that job's
/// result vector — no concatenation, no re-splitting, no intermediate
/// allocation. Each element's value depends only on its own operands
/// (and the delay line is empty between bulk calls), so this is
/// bit-identical to running the jobs one by one (property-tested).
pub fn run_coalesced(key: CoalesceKey, batches: &[&[(u64, u64)]]) -> Vec<JobResult> {
    let mut unit = DelayLineUnit::new(key.fmt, key.mode, key.op.delay_op(), key.stages);
    batches
        .iter()
        .map(|b| {
            let mut results = Vec::with_capacity(b.len());
            unit.run_batch_into(b, &mut results);
            JobResult::Eltwise(results)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(fmt: FpFormat, v: f64) -> u64 {
        SoftFloat::from_f64(fmt, v).bits()
    }

    #[test]
    fn eltwise_runs_and_flags() {
        let fmt = FpFormat::SINGLE;
        let job = Job::Eltwise {
            op: EltOp::Add,
            fmt,
            mode: RoundMode::NearestEven,
            stages: 6,
            pairs: vec![
                (enc(fmt, 1.5), enc(fmt, 2.25)),
                (enc(fmt, -1.0), enc(fmt, 1.0)),
            ],
        };
        let cache = SweepCache::new();
        match job.run(&Tech::virtex2pro(), &cache) {
            JobResult::Eltwise(rs) => {
                assert_eq!(rs.len(), 2);
                assert_eq!(SoftFloat::from_bits(fmt, rs[0].0).to_f64(), 3.75);
                assert_eq!(SoftFloat::from_bits(fmt, rs[1].0).to_f64(), 0.0);
            }
            other => panic!("wrong result kind: {other:?}"),
        }
    }

    #[test]
    fn coalesced_matches_individual_runs() {
        let fmt = FpFormat::FP48;
        let key = CoalesceKey {
            op: EltOp::Mul,
            fmt,
            mode: RoundMode::NearestEven,
            stages: 9,
        };
        let mk = |vals: &[(f64, f64)]| -> Vec<(u64, u64)> {
            vals.iter()
                .map(|&(a, b)| (enc(fmt, a), enc(fmt, b)))
                .collect()
        };
        let b1 = mk(&[(1.5, 2.0), (3.0, -0.25)]);
        let b2 = mk(&[(1e10, 1e-10)]);
        let b3 = mk(&[]);
        let coalesced = run_coalesced(key, &[&b1, &b2, &b3]);
        let tech = Tech::virtex2pro();
        let cache = SweepCache::new();
        for (got, pairs) in coalesced.iter().zip([&b1, &b2, &b3]) {
            let solo = Job::Eltwise {
                op: key.op,
                fmt: key.fmt,
                mode: key.mode,
                stages: key.stages,
                pairs: pairs.clone(),
            }
            .run(&tech, &cache);
            assert_eq!(*got, solo);
        }
    }

    #[test]
    fn class_hash_ignores_payload_but_not_config() {
        let fmt = FpFormat::SINGLE;
        let j1 = Job::Eltwise {
            op: EltOp::Add,
            fmt,
            mode: RoundMode::NearestEven,
            stages: 6,
            pairs: vec![(1, 2)],
        };
        let j2 = Job::Eltwise {
            op: EltOp::Add,
            fmt,
            mode: RoundMode::NearestEven,
            stages: 6,
            pairs: vec![(3, 4), (5, 6)],
        };
        let j3 = Job::Eltwise {
            op: EltOp::Add,
            fmt,
            mode: RoundMode::NearestEven,
            stages: 7,
            pairs: vec![(1, 2)],
        };
        assert_eq!(j1.class_hash(), j2.class_hash());
        assert_ne!(j1.class_hash(), j3.class_hash());
    }

    #[test]
    fn validate_catches_bad_payloads() {
        let fmt = FpFormat::SINGLE;
        assert!(Job::Dot {
            fmt,
            mode: RoundMode::NearestEven,
            mult_stages: 5,
            add_stages: 5,
            x: vec![1, 2],
            y: vec![1],
        }
        .validate()
        .is_err());
        assert!(Job::Fft {
            fmt,
            mode: RoundMode::NearestEven,
            mult_stages: 5,
            add_stages: 5,
            data: vec![Cplx::zero(); 3],
            inverse: false,
        }
        .validate()
        .is_err());
        // Zero diagonal → refused up front instead of a worker panic.
        let a = Matrix::zero(fmt, 3, 3);
        assert!(Job::Lu {
            fmt,
            mode: RoundMode::NearestEven,
            div_stages: 8,
            mac_stages: 6,
            p: 2,
            a,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sweep_job_uses_the_shard_cache() {
        let cache = SweepCache::new();
        let tech = Tech::virtex2pro();
        let job = Job::Sweep {
            kind: CoreKind::Adder,
            fmt: FpFormat::SINGLE,
            opts: SynthesisOptions::SPEED,
        };
        let r1 = job.run(&tech, &cache);
        assert_eq!(cache.misses(), 1);
        let r2 = job.run(&tech, &cache);
        assert_eq!(cache.misses(), 1, "second run must be a cache hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(r1, r2);
    }
}
