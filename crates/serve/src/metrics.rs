//! Serving metrics: lock-free counters and a coarse latency histogram.
//!
//! Everything here is plain atomics — workers bump counters on their
//! own hot path without contending on a lock, and a
//! [`MetricsSnapshot`] is a consistent-enough point-in-time read for
//! reports (counters are monotone; the snapshot may straddle an
//! in-flight job by one count, which is fine for observability).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts
/// completions with latency in `[2^i, 2^(i+1))` microseconds, the last
/// bucket is open-ended (≥ ~34 s).
pub const LATENCY_BUCKETS: usize = 26;

/// The pool's live metrics registry. Shared by all workers and the
/// submission path; cheap to read at any time.
#[derive(Default)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    queue_depth: AtomicI64,
    max_queue_depth: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    work_items: AtomicU64,
    mixed_jobs: AtomicU64,
    auto_tuned: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

fn bucket_of(latency: Duration) -> usize {
    let us = latency.as_micros().max(1) as u64;
    (us.ilog2() as usize).min(LATENCY_BUCKETS - 1)
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one accepted submission.
    pub fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one refused submission (backpressure or closed pool).
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one job whose deadline expired before execution.
    pub fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one queued job displaced by a higher-priority submission.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one job cancelled before execution.
    pub fn on_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed job (panic or precondition refusal).
    pub fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completion with its latency and flop-ish size.
    ///
    /// Public so out-of-process observers (the `fpfpga-net` load
    /// generator) can account request latencies in the exact same
    /// histogram the pool uses, making client-side and in-process
    /// reports directly comparable.
    pub fn on_completed(&self, latency: Duration, work_items: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.work_items.fetch_add(work_items, Ordering::Relaxed);
        self.latency[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// A job accepted with a non-uniform (mixed-precision) policy.
    pub(crate) fn on_mixed(&self) {
        self.mixed_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission whose policy was chosen by the auto-tuner.
    pub(crate) fn on_auto_tuned(&self) {
        self.auto_tuned.fetch_add(1, Ordering::Relaxed);
    }

    /// One executed batch that served `jobs` coalesced jobs.
    pub(crate) fn on_batch(&self, jobs: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs, Ordering::Relaxed);
    }

    pub(crate) fn queue_grew(&self, by: usize) {
        let now = self.queue_depth.fetch_add(by as i64, Ordering::Relaxed) + by as i64;
        self.max_queue_depth
            .fetch_max(now.max(0) as u64, Ordering::Relaxed);
    }

    pub(crate) fn queue_shrank(&self, by: usize) {
        self.queue_depth.fetch_sub(by as i64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            work_items: self.work_items.load(Ordering::Relaxed),
            mixed_jobs: self.mixed_jobs.load(Ordering::Relaxed),
            auto_tuned: self.auto_tuned.load(Ordering::Relaxed),
            latency_buckets: std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed)),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }
}

/// A point-in-time copy of the registry, plus the pool's aggregated
/// sweep-cache statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs accepted into a queue (sheds and timeouts included).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Submissions refused because the shard queue was full.
    pub rejected: u64,
    /// Jobs whose deadline expired before execution.
    pub timed_out: u64,
    /// Queued jobs displaced by higher-priority submissions.
    pub shed: u64,
    /// Jobs cancelled via their handle before execution.
    pub cancelled: u64,
    /// Jobs that panicked or were refused by kernel preconditions.
    pub failed: u64,
    /// Jobs currently queued (gauge).
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: u64,
    /// Executed coalescible batches.
    pub batches: u64,
    /// Jobs served by those batches (occupancy numerator).
    pub batched_jobs: u64,
    /// Work items (flop-ish) completed, for throughput accounting.
    pub work_items: u64,
    /// Jobs accepted with a non-uniform (mixed-precision) policy.
    pub mixed_jobs: u64,
    /// Submissions whose policy was chosen by the ULP-budget
    /// auto-tuner ([`crate::pool::PolicySel::Auto`]).
    pub auto_tuned: u64,
    /// Power-of-two latency histogram: bucket `i` counts completions
    /// in `[2^i, 2^(i+1))` µs.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Sweep-cache hits summed over all worker shards.
    pub cache_hits: u64,
    /// Sweep-cache misses summed over all worker shards.
    pub cache_misses: u64,
    /// Sweep-cache LRU evictions summed over all worker shards.
    pub cache_evictions: u64,
}

impl MetricsSnapshot {
    /// Mean coalesced jobs per executed batch (1.0 = no coalescing won).
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_jobs as f64 / self.batches as f64
        }
    }

    /// Sweep-cache hit rate in [0, 1], or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Completions recorded in the histogram.
    pub fn latency_count(&self) -> u64 {
        self.latency_buckets.iter().sum()
    }

    /// Upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1]
    /// — a coarse percentile (within 2× of the true value), or `None`
    /// with no completions.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.latency_count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(1u64 << LATENCY_BUCKETS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(Duration::from_micros(0)), 0);
        assert_eq!(bucket_of(Duration::from_micros(1)), 0);
        assert_eq!(bucket_of(Duration::from_micros(3)), 1);
        assert_eq!(bucket_of(Duration::from_micros(1024)), 10);
        assert_eq!(bucket_of(Duration::from_secs(3600)), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_counts() {
        let m = Metrics::new();
        m.on_submitted();
        m.on_submitted();
        m.queue_grew(2);
        m.queue_shrank(1);
        m.on_completed(Duration::from_micros(100), 64);
        m.on_timed_out();
        m.on_batch(3);
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 2);
        assert_eq!(s.work_items, 64);
        assert_eq!(s.batch_occupancy(), 3.0);
        assert_eq!(s.latency_count(), 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let m = Metrics::new();
        for _ in 0..90 {
            m.on_completed(Duration::from_micros(10), 1);
        }
        for _ in 0..10 {
            m.on_completed(Duration::from_millis(10), 1);
        }
        let s = m.snapshot();
        let p50 = s.latency_quantile_us(0.50).unwrap();
        let p99 = s.latency_quantile_us(0.99).unwrap();
        assert!(p50 <= 16, "p50 bucket bound = {p50}");
        assert!(p99 >= 8192, "p99 bucket bound = {p99}");
        assert!(s.latency_quantile_us(0.0).is_some());
        assert_eq!(Metrics::new().snapshot().latency_quantile_us(0.5), None);
    }
}
