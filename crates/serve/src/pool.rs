//! The sharded worker pool: bounded queues, explicit backpressure,
//! deadlines, priority shedding, coalesced batch execution, and
//! run-time precision-policy resolution.
//!
//! Layout: `N` workers, each owning one shard — a bounded FIFO queue
//! plus a private [`SweepCache`]. A job routes to the shard named by
//! its [`Job::class_hash`], so repeats of one job class warm one cache
//! and coalescible streams meet in one queue, where the worker folds
//! up to `coalesce_window` of them into a single
//! [`run_batch`](fpfpga_fpu::sim::FpPipe::run_batch) call.
//!
//! Submission takes a [`JobSpec`]: a [`Kernel`] plus a *policy
//! selector*. The precision policy is resolved **at submission time**
//! — pinned by the caller ([`PolicySel::Fixed`]), looked up in the
//! pool's per-tenant [`PolicyBook`] ([`PolicySel::Default`]), or
//! chosen by the [ULP-budget auto-tuner](crate::tuner)
//! ([`PolicySel::Auto`]) — so workers only ever see fully resolved
//! [`Job`]s and the replay oracle stays trivial.
//!
//! Overload policy, in order:
//! 1. a full shard queue **sheds** its lowest-priority queued job when
//!    a strictly higher-priority submission arrives (the shed job's
//!    handle reports [`JobOutcome::Shed`] — never a silent drop);
//! 2. otherwise the submission is refused with
//!    [`SubmitError::Rejected`] — the caller sees backpressure
//!    immediately, nothing blocks.
//!
//! Deadlines are checked when a worker picks the job up: an expired
//! job is reported as [`JobOutcome::TimedOut`] (and counted) instead
//! of being run late. Cancellation via [`JobHandle::cancel`] works the
//! same way. Workers never die: a panicking kernel is caught and
//! reported as [`JobOutcome::Failed`].

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::SweepCache;
use fpfpga_matmul::ErrorBudget;
use fpfpga_softfp::{FpFormat, PrecisionPolicy, RoundMode};

use crate::job::{run_coalesced, Job, JobResult, Kernel};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::tuner;

/// Scheduling priority. Shedding removes `Low` before `Normal` before
/// `High`; a submission can only displace strictly lower priorities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort; first to be shed under overload.
    Low,
    /// The default.
    Normal,
    /// Sheds `Low`/`Normal` work when the queue is full.
    High,
}

/// How a [`JobSpec`] names its precision policy.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySel {
    /// Use the pool's [`PolicyBook`]: the submitting tenant's policy,
    /// or the book's default.
    Default,
    /// Exactly this policy.
    Fixed(PrecisionPolicy),
    /// Let the [auto-tuner](crate::tuner) pick the cheapest policy
    /// (by the fabric area model) that keeps the probe error within
    /// `budget`, with operands stored in `storage`.
    Auto {
        /// Storage format of the job's operands and results.
        storage: FpFormat,
        /// The accuracy the caller requires.
        budget: ErrorBudget,
    },
}

/// Per-tenant precision policies, consulted for
/// [`PolicySel::Default`] submissions.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyBook {
    default: PrecisionPolicy,
    tenants: HashMap<String, PrecisionPolicy>,
}

impl Default for PolicyBook {
    /// Uniform single precision for everyone — the pre-policy
    /// behaviour of the serving layer.
    fn default() -> PolicyBook {
        PolicyBook::new(PrecisionPolicy::uniform(FpFormat::SINGLE))
    }
}

impl PolicyBook {
    /// A book with the given default and no tenant overrides.
    pub fn new(default: PrecisionPolicy) -> PolicyBook {
        PolicyBook {
            default,
            tenants: HashMap::new(),
        }
    }

    /// Add (or replace) one tenant's policy.
    pub fn with_tenant(mut self, tenant: impl Into<String>, policy: PrecisionPolicy) -> PolicyBook {
        self.tenants.insert(tenant.into(), policy);
        self
    }

    /// The policy for `tenant` (the default for `None` or unknown
    /// tenants).
    pub fn policy_for(&self, tenant: Option<&str>) -> PrecisionPolicy {
        tenant
            .and_then(|t| self.tenants.get(t).copied())
            .unwrap_or(self.default)
    }
}

/// A kernel plus everything needed to schedule and resolve it: policy
/// selector, rounding mode, tenant, priority and deadline. Built
/// fluently from [`JobSpec::of`], or from a fully resolved [`Job`]
/// via `From`/[`JobSpec::new`].
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The work.
    pub kernel: Kernel,
    /// How to pick the precision policy.
    pub policy: PolicySel,
    /// Rounding mode.
    pub mode: RoundMode,
    /// Submitting tenant, for [`PolicyBook`] lookup and accounting.
    pub tenant: Option<String>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Time budget from submission; expired jobs are not run.
    pub deadline: Option<Duration>,
}

impl From<Job> for JobSpec {
    fn from(job: Job) -> JobSpec {
        JobSpec {
            kernel: job.kernel,
            policy: PolicySel::Fixed(job.policy),
            mode: job.mode,
            tenant: None,
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

impl JobSpec {
    /// A spec for `kernel` with the book-default policy, nearest-even
    /// rounding, normal priority and no deadline.
    pub fn of(kernel: Kernel) -> JobSpec {
        JobSpec {
            kernel,
            policy: PolicySel::Default,
            mode: RoundMode::NearestEven,
            tenant: None,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// A normal-priority spec with no deadline, policy pinned to the
    /// job's.
    pub fn new(job: Job) -> JobSpec {
        JobSpec::from(job)
    }

    /// Pin the precision policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> JobSpec {
        self.policy = PolicySel::Fixed(policy);
        self
    }

    /// Pin a *uniform* policy — every format is `fmt`.
    pub fn with_format(self, fmt: FpFormat) -> JobSpec {
        self.with_policy(PrecisionPolicy::uniform(fmt))
    }

    /// Let the auto-tuner pick the cheapest policy meeting `budget`,
    /// with operands stored in `storage`.
    pub fn auto_policy(mut self, storage: FpFormat, budget: ErrorBudget) -> JobSpec {
        self.policy = PolicySel::Auto { storage, budget };
        self
    }

    /// Set the rounding mode.
    pub fn with_mode(mut self, mode: RoundMode) -> JobSpec {
        self.mode = mode;
        self
    }

    /// Name the submitting tenant (selects its [`PolicyBook`] entry
    /// under [`PolicySel::Default`]).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = Some(tenant.into());
        self
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Set the deadline (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// The job this spec names, if its policy is pinned — traces and
    /// tests use this to inspect a spec without a pool.
    pub fn fixed_job(&self) -> Option<Job> {
        match self.policy {
            PolicySel::Fixed(policy) => Some(Job {
                kernel: self.kernel.clone(),
                policy,
                mode: self.mode,
            }),
            _ => None,
        }
    }

    /// Resolve the policy selector into a concrete [`Job`]: pinned
    /// policies pass through, defaults consult `book`, auto policies
    /// run the [`tuner`] against `tech` through `cache`.
    pub fn resolve(
        self,
        book: &PolicyBook,
        tech: &Tech,
        cache: &SweepCache,
    ) -> Result<Job, SubmitError> {
        let policy = match &self.policy {
            PolicySel::Fixed(p) => *p,
            PolicySel::Default => book.policy_for(self.tenant.as_deref()),
            PolicySel::Auto { storage, budget } => {
                tuner::autotune(*storage, budget, tech, cache)
                    .map_err(|detail| SubmitError::Budget { detail })?
                    .policy
            }
        };
        Ok(Job {
            kernel: self.kernel,
            policy,
            mode: self.mode,
        })
    }
}

/// How one job ended.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// Ran; here is the bit-exact result.
    Completed(JobResult),
    /// Deadline expired before a worker picked it up.
    TimedOut,
    /// Displaced from a full queue by a higher-priority submission.
    Shed,
    /// Cancelled via [`JobHandle::cancel`] before execution.
    Cancelled,
    /// The kernel panicked; the worker survived.
    Failed(String),
}

struct Shared {
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
    cancelled: AtomicBool,
}

/// The submitter's side of one accepted job.
pub struct JobHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobHandle {
    /// Block until the job ends, consuming the handle.
    pub fn wait(self) -> JobOutcome {
        let mut slot = self.shared.outcome.lock().expect("job outcome poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.shared.cv.wait(slot).expect("job outcome poisoned");
        }
    }

    /// Has the job ended (in any way)?
    pub fn is_done(&self) -> bool {
        self.shared
            .outcome
            .lock()
            .expect("job outcome poisoned")
            .is_some()
    }

    /// Ask the pool not to run this job. Takes effect if a worker has
    /// not picked it up yet; the outcome becomes
    /// [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }
}

/// Why [`ServePool::submit`] refused a spec. Acceptance is a plain
/// `Ok(JobHandle)`; every refusal is immediate — a full queue answers
/// with backpressure instead of blocking, and nothing is ever dropped
/// silently.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The payload failed kernel precondition checks (or the resolved
    /// policy is outside the kernel's capabilities); never queued.
    Invalid(String),
    /// The shard's queue is full and nothing lower-priority could be
    /// shed. Retry later or scale out.
    Rejected {
        /// Depth of the refusing queue at rejection time.
        queue_depth: usize,
    },
    /// The pool is shutting down and accepts no new work.
    Closed,
    /// No candidate policy meets the requested
    /// [`ErrorBudget`] ([`PolicySel::Auto`] only).
    Budget {
        /// Human-readable diagnosis, naming the best achievable error.
        detail: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(reason) => write!(f, "invalid job: {reason}"),
            SubmitError::Rejected { queue_depth } => {
                write!(f, "queue full at depth {queue_depth}, submission rejected")
            }
            SubmitError::Closed => write!(f, "pool is closed to new work"),
            SubmitError::Budget { detail } => write!(f, "error budget unsatisfiable: {detail}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker (= shard) count, ≥ 1.
    pub workers: usize,
    /// Bounded capacity of each shard's queue.
    pub queue_capacity: usize,
    /// Max coalescible jobs folded into one `run_batch` call.
    pub coalesce_window: usize,
    /// Per-shard sweep-cache bound (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Per-tenant precision policies for [`PolicySel::Default`]
    /// submissions.
    pub policies: PolicyBook,
    /// Device model used by [`Kernel::Sweep`] and the auto-tuner.
    pub tech: Tech,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 256,
            coalesce_window: 16,
            cache_capacity: Some(128),
            policies: PolicyBook::default(),
            tech: Tech::virtex2pro(),
        }
    }
}

impl ServeConfig {
    /// The default config at a given worker count.
    pub fn with_workers(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }
}

struct Entry {
    job: Job,
    priority: Priority,
    submitted: Instant,
    deadline: Option<Instant>,
    work_items: u64,
    shared: Arc<Shared>,
}

struct ShardState {
    queue: VecDeque<Entry>,
    open: bool,
    paused: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// The serving engine: submit [`JobSpec`]s, await [`JobHandle`]s,
/// observe [`MetricsSnapshot`]s. Dropping the pool drains the queues
/// and joins the workers.
pub struct ServePool {
    shards: Vec<Arc<Shard>>,
    caches: Vec<SweepCache>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    policies: PolicyBook,
    tech: Tech,
    /// Live coalescing window, shared with every worker. Adaptive
    /// tuners (see `fpfpga-net`) adjust it while the pool runs.
    coalesce: Arc<AtomicUsize>,
    /// Submission-side cache for the auto-tuner's core sweeps (the
    /// shard caches belong to the workers).
    tuner_cache: SweepCache,
}

impl ServePool {
    /// Spawn the pool.
    pub fn new(config: ServeConfig) -> ServePool {
        assert!(config.workers >= 1, "pool needs at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be ≥ 1");
        assert!(config.coalesce_window >= 1, "coalesce window must be ≥ 1");
        let metrics = Arc::new(Metrics::new());
        let mut shards = Vec::with_capacity(config.workers);
        let mut caches = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let shard = Arc::new(Shard {
                state: Mutex::new(ShardState {
                    queue: VecDeque::new(),
                    open: true,
                    paused: false,
                }),
                cv: Condvar::new(),
            });
            let cache = match config.cache_capacity {
                Some(cap) => SweepCache::with_capacity(cap),
                None => SweepCache::new(),
            };
            shards.push(shard);
            caches.push(cache);
        }
        let coalesce = Arc::new(AtomicUsize::new(config.coalesce_window));
        for i in 0..config.workers {
            let ctx = WorkerCtx {
                shards: shards.clone(),
                caches: caches.clone(),
                me: i,
                metrics: metrics.clone(),
                tech: config.tech.clone(),
                coalesce: coalesce.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fpserve-{i}"))
                    .spawn(move || ctx.run())
                    .expect("spawn worker"),
            );
        }
        ServePool {
            shards,
            caches,
            metrics,
            workers,
            queue_capacity: config.queue_capacity,
            policies: config.policies,
            tech: config.tech,
            coalesce,
            tuner_cache: SweepCache::new(),
        }
    }

    /// Worker (= shard) count.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The live coalescing window: the max number of compatible jobs a
    /// worker folds into one `run_batch` call.
    pub fn coalesce_window(&self) -> usize {
        self.coalesce.load(Ordering::Relaxed)
    }

    /// Adjust the coalescing window at run time (clamped to ≥ 1).
    /// Workers read the window when they pick up a group, so the new
    /// value applies from the next group on; results are unaffected
    /// (coalescing is bit-invisible by construction — property-tested).
    pub fn set_coalesce_window(&self, window: usize) {
        self.coalesce.store(window.max(1), Ordering::Relaxed);
    }

    /// Submit a spec. Resolves the precision policy (book lookup or
    /// auto-tuning), validates the resulting job, and queues it on its
    /// class shard. Returns immediately: `Ok` with a handle, or a
    /// [`SubmitError`] explaining the refusal (full queue, invalid
    /// payload, unsatisfiable budget, closed pool).
    pub fn submit(&self, spec: impl Into<JobSpec>) -> Result<JobHandle, SubmitError> {
        let spec = spec.into();
        let priority = spec.priority;
        let deadline = spec.deadline;
        let auto = matches!(spec.policy, PolicySel::Auto { .. });
        let job = match spec.resolve(&self.policies, &self.tech, &self.tuner_cache) {
            Ok(job) => job,
            Err(e) => {
                self.metrics.on_failed();
                return Err(e);
            }
        };
        if auto {
            self.metrics.on_auto_tuned();
        }
        if let Err(reason) = job.validate() {
            self.metrics.on_failed();
            return Err(SubmitError::Invalid(reason));
        }
        if !job.policy.is_uniform() {
            self.metrics.on_mixed();
        }
        let shard = &self.shards[(job.class_hash() % self.shards.len() as u64) as usize];
        let now = Instant::now();
        let shared = Arc::new(Shared {
            outcome: Mutex::new(None),
            cv: Condvar::new(),
            cancelled: AtomicBool::new(false),
        });
        let entry = Entry {
            work_items: job.work_items(),
            job,
            priority,
            submitted: now,
            deadline: deadline.map(|d| now + d),
            shared: shared.clone(),
        };

        let mut st = shard.state.lock().expect("shard poisoned");
        if !st.open {
            self.metrics.on_rejected();
            return Err(SubmitError::Closed);
        }
        if st.queue.len() >= self.queue_capacity {
            // Graceful degradation: shed the lowest-priority queued job
            // (latest-submitted among equals) for a strictly
            // higher-priority submission; otherwise refuse.
            let victim = st
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, e)| (e.priority, std::cmp::Reverse(*i)))
                .map(|(i, e)| (i, e.priority));
            match victim {
                Some((i, p)) if p < entry.priority => {
                    let shed = st.queue.remove(i).expect("victim index in range");
                    finish(&shed, JobOutcome::Shed);
                    self.metrics.on_shed();
                    self.metrics.queue_shrank(1);
                }
                _ => {
                    self.metrics.on_rejected();
                    return Err(SubmitError::Rejected {
                        queue_depth: st.queue.len(),
                    });
                }
            }
        }
        st.queue.push_back(entry);
        self.metrics.on_submitted();
        self.metrics.queue_grew(1);
        drop(st);
        // Wake the home worker — and poke every other shard so an idle
        // worker re-runs its steal scan now instead of on its next doze
        // tick (each worker waits on its own shard's condvar only).
        for s in &self.shards {
            s.cv.notify_one();
        }
        Ok(JobHandle { shared })
    }

    /// Stop workers from picking up new jobs (queues keep accepting up
    /// to capacity). Used by drain-style maintenance and the overload
    /// tests; pair with [`ServePool::resume`].
    pub fn pause(&self) {
        for shard in &self.shards {
            shard.state.lock().expect("shard poisoned").paused = true;
            shard.cv.notify_all();
        }
    }

    /// Resume a paused pool.
    pub fn resume(&self) {
        for shard in &self.shards {
            shard.state.lock().expect("shard poisoned").paused = false;
            shard.cv.notify_all();
        }
    }

    /// Metrics snapshot, including sweep-cache stats aggregated over
    /// every worker shard plus the submission-side tuner cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut s = self.metrics.snapshot();
        for c in self.caches.iter().chain([&self.tuner_cache]) {
            s.cache_hits += c.hits();
            s.cache_misses += c.misses();
            s.cache_evictions += c.evictions();
        }
        s
    }

    /// Drain every queue and join the workers. (Queued jobs still run;
    /// new submissions are rejected.)
    pub fn join(mut self) -> MetricsSnapshot {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.metrics()
    }

    /// Begin a drain without consuming the pool: new submissions are
    /// refused with [`SubmitError::Closed`] from this call on, while
    /// already-queued jobs still run to completion (a paused pool is
    /// implicitly resumed so the drain makes progress). Every
    /// outstanding [`JobHandle`] resolves — nothing hangs, nothing is
    /// silently dropped. Call [`ServePool::join`] (or drop the pool) to
    /// wait for the drain to finish.
    pub fn shutdown(&self) {
        self.close();
    }

    fn close(&self) {
        for shard in &self.shards {
            let mut st = shard.state.lock().expect("shard poisoned");
            st.open = false;
            st.paused = false;
            shard.cv.notify_all();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn finish(entry: &Entry, outcome: JobOutcome) {
    let mut slot = entry.shared.outcome.lock().expect("job outcome poisoned");
    *slot = Some(outcome);
    entry.shared.cv.notify_all();
}

/// Pop the head of a shard queue plus every coalescible same-class
/// entry behind it (they need not be adjacent), up to `window`.
fn take_group(st: &mut ShardState, window: usize) -> Vec<Entry> {
    let head = st.queue.pop_front().expect("non-empty queue");
    let mut group = vec![head];
    if let Some(key) = group[0].job.coalesce_key() {
        let mut i = 0;
        while i < st.queue.len() && group.len() < window {
            if st.queue[i].job.coalesce_key() == Some(key) {
                group.push(st.queue.remove(i).expect("index in range"));
            } else {
                i += 1;
            }
        }
    }
    group
}

struct WorkerCtx {
    shards: Vec<Arc<Shard>>,
    caches: Vec<SweepCache>,
    me: usize,
    metrics: Arc<Metrics>,
    tech: Tech,
    coalesce: Arc<AtomicUsize>,
}

impl WorkerCtx {
    fn run(self) {
        while let Some((home, group)) = self.next_group() {
            self.metrics.queue_shrank(group.len());
            self.execute(home, group);
        }
    }

    /// Block until there is work: prefer the worker's own shard, then
    /// steal a group from any other shard (class-hash sharding balances
    /// cache affinity, not load — a run of heavy jobs can pile onto one
    /// shard, and stealing keeps the other workers busy; jobs are pure,
    /// so where they execute is invisible in the results). Returns the
    /// *home* shard index with the group, so stolen sweeps still run
    /// against their home cache. `None` means the pool is shutting down
    /// and every queue this worker can see is empty.
    fn next_group(&self) -> Option<(usize, Vec<Entry>)> {
        let own = &self.shards[self.me];
        let mut st = own.state.lock().expect("shard poisoned");
        loop {
            // Re-read the live window per group so run-time adjustments
            // (adaptive coalescing) apply from the very next batch.
            let window = self.coalesce.load(Ordering::Relaxed).max(1);
            if st.paused {
                st = own.cv.wait(st).expect("shard poisoned");
                continue;
            }
            if !st.queue.is_empty() {
                return Some((self.me, take_group(&mut st, window)));
            }
            let open = st.open;
            drop(st);
            for j in (0..self.shards.len()).filter(|&j| j != self.me) {
                let mut other = self.shards[j].state.lock().expect("shard poisoned");
                if !other.paused && !other.queue.is_empty() {
                    return Some((j, take_group(&mut other, window)));
                }
            }
            if !open {
                return None;
            }
            st = own.state.lock().expect("shard poisoned");
            if st.paused || !st.queue.is_empty() || !st.open {
                continue;
            }
            // Nothing anywhere: doze briefly. The timeout bounds how
            // long newly submitted *remote* work waits for a thief
            // (own-shard work wakes us through the condvar).
            let (guard, _) = own
                .cv
                .wait_timeout(st, Duration::from_millis(1))
                .expect("shard poisoned");
            st = guard;
        }
    }

    fn execute(&self, home: usize, group: Vec<Entry>) {
        // Deadline/cancellation triage at pickup time.
        let now = Instant::now();
        let mut live = Vec::with_capacity(group.len());
        for e in group {
            if e.shared.cancelled.load(Ordering::Relaxed) {
                self.metrics.on_cancelled();
                finish(&e, JobOutcome::Cancelled);
            } else if e.deadline.is_some_and(|d| now >= d) {
                self.metrics.on_timed_out();
                finish(&e, JobOutcome::TimedOut);
            } else {
                live.push(e);
            }
        }
        if live.is_empty() {
            return;
        }

        if live.len() > 1 {
            // A coalesced batch: one unit, one run_batch call.
            let key = live[0].job.coalesce_key().expect("coalesced group");
            let batches: Vec<&[(u64, u64)]> = live
                .iter()
                .map(|e| match &e.job.kernel {
                    Kernel::Eltwise { pairs, .. } => pairs.as_slice(),
                    _ => unreachable!("only eltwise jobs coalesce"),
                })
                .collect();
            self.metrics.on_batch(live.len() as u64);
            match catch_unwind(AssertUnwindSafe(|| run_coalesced(key, &batches))) {
                Ok(results) => {
                    let done = Instant::now();
                    for (e, r) in live.iter().zip(results) {
                        self.metrics.on_completed(done - e.submitted, e.work_items);
                        finish(e, JobOutcome::Completed(r));
                    }
                }
                Err(p) => {
                    for e in &live {
                        self.metrics.on_failed();
                        finish(e, JobOutcome::Failed(panic_text(&p)));
                    }
                }
            }
        } else {
            let e = live.pop().expect("one live entry");
            if e.job.coalesce_key().is_some() {
                self.metrics.on_batch(1);
            }
            match catch_unwind(AssertUnwindSafe(|| {
                e.job.run(&self.tech, &self.caches[home])
            })) {
                Ok(result) => {
                    self.metrics
                        .on_completed(e.submitted.elapsed(), e.work_items);
                    finish(&e, JobOutcome::Completed(result));
                }
                Err(p) => {
                    self.metrics.on_failed();
                    finish(&e, JobOutcome::Failed(panic_text(&p)));
                }
            }
        }
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EltOp;
    use fpfpga_softfp::{FpFormat, RoundMode, SoftFloat};

    const FMT: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn enc(v: f64) -> u64 {
        SoftFloat::from_f64(FMT, v).bits()
    }

    fn add_kernel(vals: &[(f64, f64)]) -> Kernel {
        Kernel::Eltwise {
            op: EltOp::Add,
            stages: 6,
            pairs: vals.iter().map(|&(a, b)| (enc(a), enc(b))).collect(),
        }
    }

    fn add_job(vals: &[(f64, f64)]) -> Job {
        Job::uniform(add_kernel(vals), FMT, RM)
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let pool = ServePool::new(ServeConfig::with_workers(2));
        let h = pool
            .submit(add_job(&[(1.0, 2.0), (3.0, 4.0)]))
            .expect("accepted");
        match h.wait() {
            JobOutcome::Completed(JobResult::Eltwise(rs)) => {
                assert_eq!(SoftFloat::from_bits(FMT, rs[0].0).to_f64(), 3.0);
                assert_eq!(SoftFloat::from_bits(FMT, rs[1].0).to_f64(), 7.0);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        let m = pool.join();
        assert_eq!((m.submitted, m.completed), (1, 1));
        assert_eq!(m.queue_depth, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let pool = ServePool::new(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        pool.pause();
        let _h1 = pool.submit(add_job(&[(1.0, 1.0)])).expect("accepted");
        let _h2 = pool.submit(add_job(&[(2.0, 2.0)])).expect("accepted");
        match pool.submit(add_job(&[(3.0, 3.0)])) {
            Err(SubmitError::Rejected { queue_depth }) => assert_eq!(queue_depth, 2),
            other => panic!("third submission must be rejected, got {other:?}"),
        }
        assert_eq!(pool.metrics().rejected, 1);
        pool.resume();
        let m = pool.join();
        assert_eq!(m.completed, 2);
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn shedding_respects_priority_order() {
        let pool = ServePool::new(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        pool.pause();
        let low = pool
            .submit(JobSpec::new(add_job(&[(1.0, 1.0)])).with_priority(Priority::Low))
            .expect("accepted");
        let normal = pool
            .submit(JobSpec::new(add_job(&[(2.0, 2.0)])).with_priority(Priority::Normal))
            .expect("accepted");
        // High displaces the Low job, not the Normal one.
        let high = pool
            .submit(JobSpec::new(add_job(&[(3.0, 3.0)])).with_priority(Priority::High))
            .expect("accepted");
        assert_eq!(low.wait(), JobOutcome::Shed);
        // Nothing strictly lower than Normal is queued now, so an
        // equal-priority submission cannot shed: rejected.
        match pool.submit(JobSpec::new(add_job(&[(4.0, 4.0)])).with_priority(Priority::Normal)) {
            Err(SubmitError::Rejected { .. }) => {}
            other => panic!("equal priority must not shed, got {other:?}"),
        }
        pool.resume();
        assert!(matches!(normal.wait(), JobOutcome::Completed(_)));
        assert!(matches!(high.wait(), JobOutcome::Completed(_)));
        let m = pool.join();
        assert_eq!(m.shed, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.completed, 2);
    }

    #[test]
    fn expired_deadline_is_reported_not_run() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        pool.pause();
        let h = pool
            .submit(JobSpec::new(add_job(&[(1.0, 1.0)])).with_deadline(Duration::ZERO))
            .expect("accepted");
        // The deadline (submission instant) is already past when the
        // worker triages the job.
        pool.resume();
        assert_eq!(h.wait(), JobOutcome::TimedOut);
        let m = pool.join();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn cancellation_before_pickup() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        pool.pause();
        let h = pool.submit(add_job(&[(1.0, 1.0)])).expect("accepted");
        h.cancel();
        pool.resume();
        assert_eq!(h.wait(), JobOutcome::Cancelled);
        assert_eq!(pool.join().cancelled, 1);
    }

    #[test]
    fn compatible_streams_coalesce_into_one_batch() {
        let pool = ServePool::new(ServeConfig {
            workers: 1,
            queue_capacity: 64,
            coalesce_window: 8,
            ..ServeConfig::default()
        });
        pool.pause();
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                pool.submit(add_job(&[(i as f64, 1.0), (i as f64, 2.0)]))
                    .expect("accepted")
            })
            .collect();
        pool.resume();
        for (i, h) in handles.into_iter().enumerate() {
            match h.wait() {
                JobOutcome::Completed(JobResult::Eltwise(rs)) => {
                    assert_eq!(SoftFloat::from_bits(FMT, rs[0].0).to_f64(), i as f64 + 1.0);
                    assert_eq!(SoftFloat::from_bits(FMT, rs[1].0).to_f64(), i as f64 + 2.0);
                }
                other => panic!("job {i}: {other:?}"),
            }
        }
        let m = pool.join();
        assert_eq!(m.completed, 6);
        assert_eq!(m.batched_jobs, 6);
        assert!(
            m.batch_occupancy() > 1.0,
            "paused-queue streams must coalesce, occupancy = {}",
            m.batch_occupancy()
        );
    }

    #[test]
    fn invalid_jobs_never_reach_a_worker() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        match pool.submit(Job::uniform(
            Kernel::Dot {
                mult_stages: 5,
                add_stages: 5,
                x: vec![1],
                y: vec![],
            },
            FMT,
            RM,
        )) {
            Err(SubmitError::Invalid(reason)) => assert!(reason.contains("lengths differ")),
            other => panic!("mismatched dot must be invalid, got {other:?}"),
        }
        let m = pool.join();
        assert_eq!(m.failed, 1);
        assert_eq!(m.submitted, 0);
    }

    #[test]
    fn closed_pool_refuses_new_work() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        pool.close();
        match pool.submit(add_job(&[(1.0, 1.0)])) {
            Err(SubmitError::Closed) => {}
            other => panic!("closed pool must refuse, got {other:?}"),
        }
    }

    #[test]
    fn tenant_policies_resolve_from_the_book() {
        let book = PolicyBook::default()
            .with_tenant("hft", PrecisionPolicy::uniform(FpFormat::FP48))
            .with_tenant(
                "science",
                PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE),
            );
        let pool = ServePool::new(ServeConfig {
            workers: 1,
            policies: book,
            ..ServeConfig::default()
        });
        // The FP48 tenant's eltwise job computes (and stores) in f48.
        let f48 = FpFormat::FP48;
        let pairs = vec![(
            SoftFloat::from_f64(f48, 1.5).bits(),
            SoftFloat::from_f64(f48, 2.25).bits(),
        )];
        let h = pool
            .submit(
                JobSpec::of(Kernel::Eltwise {
                    op: EltOp::Add,
                    stages: 6,
                    pairs,
                })
                .for_tenant("hft"),
            )
            .expect("accepted");
        match h.wait() {
            JobOutcome::Completed(JobResult::Eltwise(rs)) => {
                assert_eq!(SoftFloat::from_bits(f48, rs[0].0).to_f64(), 3.75);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // The mixed tenant's dot product runs the mixed kernel and is
        // counted in the mixed-jobs metric; unknown tenants get the
        // default (uniform single — not mixed).
        let x: Vec<u64> = (0..9).map(|i| enc(i as f64 * 0.5)).collect();
        let dot = |x: Vec<u64>| Kernel::Dot {
            mult_stages: 5,
            add_stages: 4,
            y: x.clone(),
            x,
        };
        let h = pool
            .submit(JobSpec::of(dot(x.clone())).for_tenant("science"))
            .expect("accepted");
        assert!(matches!(
            h.wait(),
            JobOutcome::Completed(JobResult::Dot { .. })
        ));
        let h = pool
            .submit(JobSpec::of(dot(x)).for_tenant("unknown"))
            .expect("accepted");
        assert!(matches!(
            h.wait(),
            JobOutcome::Completed(JobResult::Dot { .. })
        ));
        let m = pool.join();
        assert_eq!(m.mixed_jobs, 1, "exactly the science job is mixed");
        assert_eq!(m.completed, 3);
    }

    #[test]
    fn auto_policies_resolve_at_submission() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        let x: Vec<u64> = (0..17).map(|i| enc(1.0 + i as f64 * 0.25)).collect();
        let h = pool
            .submit(
                JobSpec::of(Kernel::Dot {
                    mult_stages: 5,
                    add_stages: 4,
                    x: x.clone(),
                    y: x,
                })
                .auto_policy(FMT, ErrorBudget::MaxUlp(1e9)),
            )
            .expect("a sky-high budget must be satisfiable");
        assert!(matches!(
            h.wait(),
            JobOutcome::Completed(JobResult::Dot { .. })
        ));
        // An impossible budget is refused up front, never queued.
        let y: Vec<u64> = vec![enc(1.0)];
        match pool.submit(
            JobSpec::of(Kernel::Dot {
                mult_stages: 5,
                add_stages: 4,
                x: y.clone(),
                y,
            })
            .auto_policy(FMT, ErrorBudget::MaxRelative(0.0)),
        ) {
            Err(SubmitError::Budget { detail }) => assert!(detail.contains("no policy")),
            other => panic!("impossible budget must be refused, got {other:?}"),
        }
        let m = pool.join();
        assert_eq!(m.auto_tuned, 1);
        assert_eq!(m.completed, 1);
        assert_eq!(m.failed, 1);
    }
}
