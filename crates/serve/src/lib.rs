//! # fpfpga-serve — multi-tenant serving of FP-kernel jobs
//!
//! The paper's cores are parameterized by precision and pipeline depth;
//! a deployed accelerator serves a *mixed* stream of such requests.
//! This crate is that serving layer: a [`pool::ServePool`] of worker
//! threads, each owning one shard of the job space — a bounded queue
//! plus a private [`fpfpga_fpu::SweepCache`] — with jobs routed by
//! [`job::Job::class_hash`] so that repeats of one configuration warm
//! one cache and compatible elementwise streams meet in one queue,
//! where they are **coalesced** into a single
//! [`run_batch`](fpfpga_fpu::sim::FpPipe::run_batch) call.
//!
//! **Precision policies.** Every job carries a
//! [`fpfpga_softfp::PrecisionPolicy`] — independent *compute*,
//! *accumulate* and *storage* formats. A [`pool::JobSpec`] names its
//! policy three ways: pinned ([`pool::PolicySel::Fixed`]), per-tenant
//! from the pool's [`pool::PolicyBook`] ([`pool::PolicySel::Default`]),
//! or chosen at submission by the [ULP-budget auto-tuner](tuner) as the
//! cheapest policy (fabric area model) meeting a
//! [`fpfpga_matmul::ErrorBudget`] ([`pool::PolicySel::Auto`]).
//!
//! Scheduling is explicit about overload:
//!
//! * a full shard queue answers [`pool::SubmitError::Rejected`]
//!   immediately — backpressure, never blocking, never a silent drop;
//! * a strictly higher-priority submission may instead **shed** the
//!   lowest-priority queued job, whose handle reports
//!   [`pool::JobOutcome::Shed`];
//! * per-job deadlines time out un-run jobs
//!   ([`pool::JobOutcome::TimedOut`]), and handles can cancel;
//! * every event lands in a lock-free [`metrics::Metrics`] registry
//!   (counters + coarse latency histogram + cache stats).
//!
//! **Determinism.** [`job::Job::run`] is a pure function of the job
//! payload: kernels start from freshly built, empty pipelines; the
//! sweep cache only memoizes pure synthesis; coalescing concatenates
//! independent elements; policy resolution happens once, at
//! submission. Hence for any trace and any worker count the pool's
//! results are bit-identical to serial execution ([`run_serial`]) —
//! including exception [`fpfpga_softfp::Flags`] — which the property
//! tests in `tests/` pin down.
//!
//! ```
//! use fpfpga_serve::job::{EltOp, JobResult, Kernel};
//! use fpfpga_serve::pool::{JobOutcome, JobSpec, ServeConfig, ServePool};
//! use fpfpga_softfp::{FpFormat, SoftFloat};
//!
//! let fmt = FpFormat::SINGLE;
//! let enc = |v: f64| SoftFloat::from_f64(fmt, v).bits();
//! let pool = ServePool::new(ServeConfig::with_workers(2));
//! let handle = pool
//!     .submit(
//!         JobSpec::of(Kernel::Eltwise {
//!             op: EltOp::Mul,
//!             stages: 6,
//!             pairs: vec![(enc(1.5), enc(2.0))],
//!         })
//!         .with_format(fmt),
//!     )
//!     .expect("accepted");
//! match handle.wait() {
//!     JobOutcome::Completed(JobResult::Eltwise(rs)) => {
//!         assert_eq!(SoftFloat::from_bits(fmt, rs[0].0).to_f64(), 3.0);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! let metrics = pool.join();
//! assert_eq!(metrics.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod job;
pub mod metrics;
pub mod pool;
pub mod trace;
pub mod tuner;

pub use job::{
    matmul_multi_plan, matmul_routes_to_multi, ApOp, CoalesceKey, EltOp, Job, JobResult, Kernel,
    MULTI_ARRAY_BLOCK, MULTI_ARRAY_MAX_ARRAYS, MULTI_ARRAY_THRESHOLD,
};
pub use metrics::{Metrics, MetricsSnapshot, LATENCY_BUCKETS};
pub use pool::{
    JobHandle, JobOutcome, JobSpec, PolicyBook, PolicySel, Priority, ServeConfig, ServePool,
    SubmitError,
};
pub use trace::{synth_trace, TraceConfig, TraceEvent};
pub use tuner::{autotune, candidate_policies, TunedPolicy};

use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::SweepCache;

/// The serial reference with an explicit [`PolicyBook`]: resolve every
/// spec's policy against `book` (panicking on unsatisfiable budgets —
/// the oracle has no refusal channel), then run the jobs in order on
/// one thread against one fresh cache.
pub fn run_serial_with(specs: &[JobSpec], tech: &Tech, book: &PolicyBook) -> Vec<JobResult> {
    let cache = SweepCache::new();
    specs
        .iter()
        .map(|s| {
            s.clone()
                .resolve(book, tech, &cache)
                .expect("serial reference spec must resolve")
                .run(tech, &cache)
        })
        .collect()
}

/// The serial reference: run every job of a trace in order, on one
/// thread, against one fresh cache, resolving policies against the
/// default [`PolicyBook`] (mirroring [`ServeConfig::default`]). The
/// pool must reproduce these results bit-for-bit at any worker count —
/// this is the oracle the equivalence property tests compare against.
pub fn run_serial(specs: &[JobSpec], tech: &Tech) -> Vec<JobResult> {
    run_serial_with(specs, tech, &PolicyBook::default())
}
