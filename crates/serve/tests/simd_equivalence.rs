//! The serving layer on top of SIMD dispatch: replaying a trace through
//! a multi-worker [`ServePool`] must be bit-identical to the serial
//! oracle under every [`SimdPolicy`] — the worker threads reach the
//! `softfp::simd` engines through the coalesced eltwise batch path, and
//! no policy (scalar, forced-wide, auto) may change a result bit. One
//! test function owns the process-global policy.

use fpfpga_fabric::tech::Tech;
use fpfpga_serve::{
    run_serial, synth_trace, JobOutcome, JobResult, JobSpec, Priority, ServeConfig, ServePool,
    TraceConfig,
};
use fpfpga_softfp::simd::{set_simd_policy, SimdPolicy};
use proptest::prelude::*;

fn replay(config: ServeConfig, specs: &[JobSpec]) -> Vec<JobResult> {
    let pool = ServePool::new(config);
    pool.pause();
    let handles: Vec<_> = specs
        .iter()
        .map(|s| {
            let spec = JobSpec {
                priority: Priority::Normal,
                deadline: None,
                ..s.clone()
            };
            pool.submit(spec).expect("equivalence job accepted")
        })
        .collect();
    pool.resume();
    handles
        .into_iter()
        .map(|h| match h.wait() {
            JobOutcome::Completed(r) => r,
            other => panic!("equivalence job must complete, got {other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial oracle under forced-scalar == pooled replay under every
    /// policy, including maximal coalescing (paused submission).
    #[test]
    fn pool_results_are_simd_policy_invariant(
        seed in any::<u64>(),
        jobs in 6usize..=16,
        workers in 1usize..=4,
    ) {
        let trace = synth_trace(&TraceConfig { seed, jobs, rate_hz: 1e6, ..TraceConfig::default() });
        let specs: Vec<JobSpec> = trace.into_iter().map(|ev| ev.spec).collect();
        let tech = Tech::virtex2pro();

        set_simd_policy(SimdPolicy::ForceScalar);
        let want = run_serial(&specs, &tech);

        for policy in [
            SimdPolicy::ForceWidePortable,
            SimdPolicy::ForceWide,
            SimdPolicy::Auto,
        ] {
            set_simd_policy(policy);
            let config = ServeConfig {
                workers,
                queue_capacity: specs.len().max(1),
                tech: tech.clone(),
                ..ServeConfig::default()
            };
            let got = replay(config, &specs);
            prop_assert_eq!(&got, &want, "seed={} workers={} {:?}", seed, workers, policy);
        }
        set_simd_policy(SimdPolicy::Auto);
    }
}
