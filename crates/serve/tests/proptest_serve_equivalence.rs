//! The serving layer's defining property: for any synthetic trace and
//! any worker count, replaying the trace through a [`ServePool`]
//! produces **bit-identical** results — values, cycle counts and
//! exception [`Flags`] alike — to running the same jobs serially on
//! one thread ([`run_serial`]). Sharding, queue interleaving and
//! coalescing may reorder and batch execution arbitrarily, but must
//! never change a single result bit.

use fpfpga_fabric::tech::Tech;
use fpfpga_serve::{
    run_serial, synth_trace, JobOutcome, JobResult, JobSpec, Priority, ServeConfig, ServePool,
    TraceConfig,
};
use proptest::prelude::*;

/// Replay `specs` through a fresh pool (optionally pre-paused so the
/// queues fill up and coalescing is maximal) and collect each job's
/// result in submission order.
fn replay(config: ServeConfig, specs: &[JobSpec], pause_first: bool) -> Vec<JobResult> {
    let pool = ServePool::new(config);
    if pause_first {
        pool.pause();
    }
    let handles: Vec<_> = specs
        .iter()
        .map(|s| {
            // Equivalence runs strip the scheduling envelope: ample
            // queues, normal priority, no deadlines, so every job
            // completes.
            let spec = JobSpec {
                priority: Priority::Normal,
                deadline: None,
                ..s.clone()
            };
            pool.submit(spec).expect("equivalence job accepted")
        })
        .collect();
    if pause_first {
        pool.resume();
    }
    handles
        .into_iter()
        .map(|h| match h.wait() {
            JobOutcome::Completed(r) => r,
            other => panic!("equivalence job must complete, got {other:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (trace seed, worker count) → pool results == serial results,
    /// bit for bit, flags included.
    #[test]
    fn pool_matches_serial_at_any_worker_count(
        seed in any::<u64>(),
        jobs in 4usize..=20,
        workers in 1usize..=8,
    ) {
        let trace = synth_trace(&TraceConfig { seed, jobs, rate_hz: 1e6, ..TraceConfig::default() });
        let specs: Vec<JobSpec> = trace.into_iter().map(|ev| ev.spec).collect();
        let tech = Tech::virtex2pro();
        let want = run_serial(&specs, &tech);
        let config = ServeConfig {
            workers,
            queue_capacity: specs.len().max(1),
            tech,
            ..ServeConfig::default()
        };
        let got = replay(config, &specs, false);
        prop_assert_eq!(&got, &want, "seed={} workers={}", seed, workers);
    }

    /// Same property with the pool paused during submission, which
    /// packs the shard queues and forces maximal coalescing — the
    /// batched path must still be bit-identical to serial.
    #[test]
    fn coalesced_replay_matches_serial(
        seed in any::<u64>(),
        jobs in 8usize..=24,
        workers in 1usize..=4,
        window in 2usize..=16,
    ) {
        let trace = synth_trace(&TraceConfig { seed, jobs, rate_hz: 1e6, ..TraceConfig::default() });
        let specs: Vec<JobSpec> = trace.into_iter().map(|ev| ev.spec).collect();
        let tech = Tech::virtex2pro();
        let want = run_serial(&specs, &tech);
        let config = ServeConfig {
            workers,
            queue_capacity: specs.len().max(1),
            coalesce_window: window,
            tech,
            ..ServeConfig::default()
        };
        let got = replay(config, &specs, true);
        prop_assert_eq!(&got, &want, "seed={} workers={} window={}", seed, workers, window);
    }

    /// Replays of one trace agree with each other across different
    /// worker counts (transitivity smoke on top of the serial oracle),
    /// and with a bounded-cache pool (eviction never changes results).
    #[test]
    fn worker_count_and_cache_bound_are_invisible(
        seed in any::<u64>(),
        jobs in 4usize..=16,
    ) {
        let trace = synth_trace(&TraceConfig { seed, jobs, rate_hz: 1e6, ..TraceConfig::default() });
        let specs: Vec<JobSpec> = trace.into_iter().map(|ev| ev.spec).collect();
        let tech = Tech::virtex2pro();
        let base = ServeConfig {
            workers: 1,
            queue_capacity: specs.len().max(1),
            tech,
            ..ServeConfig::default()
        };
        let one = replay(base.clone(), &specs, false);
        let four = replay(ServeConfig { workers: 4, ..base.clone() }, &specs, false);
        let tiny_cache = replay(
            ServeConfig { workers: 2, cache_capacity: Some(1), ..base },
            &specs,
            false,
        );
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&one, &tiny_cache);
    }
}
