//! Shutdown/drain edge cases for [`ServePool`], property-tested over
//! worker counts:
//!
//! - a job submitted after [`ServePool::shutdown`] is refused with
//!   [`SubmitError::Closed`] — never accepted, never hung;
//! - every job accepted *before* shutdown still resolves (the drain
//!   runs the queue dry rather than dropping handles);
//! - a paused pool drains on shutdown (close implies resume, so no
//!   handle waits forever on a parked worker);
//! - jobs whose deadline has already expired when a worker picks them
//!   up resolve as [`JobOutcome::TimedOut`] and are counted in the
//!   metrics snapshot, not silently completed or lost.

use std::time::Duration;

use fpfpga_serve::{EltOp, JobOutcome, JobSpec, Kernel, ServeConfig, ServePool, SubmitError};
use proptest::prelude::*;

/// A tiny eltwise add spec (two pairs) under the default policy.
fn tiny_spec() -> JobSpec {
    JobSpec::of(Kernel::Eltwise {
        op: EltOp::Add,
        stages: 4,
        pairs: vec![(1.0f64.to_bits(), 2.0f64.to_bits()); 2],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Submissions racing a drain: everything accepted before
    /// `shutdown()` resolves, everything after is `Closed`.
    #[test]
    fn drain_resolves_accepted_jobs_and_refuses_late_ones(
        workers in 1usize..=8,
        jobs in 1usize..=24,
    ) {
        let pool = ServePool::new(ServeConfig {
            workers,
            queue_capacity: jobs.max(1),
            ..ServeConfig::default()
        });
        // Pause so the queue genuinely holds work when shutdown lands
        // (otherwise fast workers may drain each job as it arrives and
        // the test degenerates to the empty-queue case).
        pool.pause();
        let handles: Vec<_> = (0..jobs)
            .map(|_| pool.submit(tiny_spec()).expect("accepted before shutdown"))
            .collect();
        pool.shutdown();
        match pool.submit(tiny_spec()) {
            Err(SubmitError::Closed) => {}
            other => prop_assert!(false, "post-shutdown submit must be Closed, got {other:?}"),
        }
        // Shutdown implies resume: every pre-shutdown handle resolves
        // (this would hang forever if drain left the pool paused).
        for h in handles {
            match h.wait() {
                JobOutcome::Completed(_) => {}
                other => prop_assert!(false, "queued job must complete during drain, got {other:?}"),
            }
        }
        let snap = pool.join();
        prop_assert_eq!(snap.submitted, jobs as u64);
        prop_assert_eq!(snap.completed, jobs as u64);
        prop_assert_eq!(snap.rejected, 1, "the post-shutdown submit is counted");
    }

    /// Deadline-expired jobs shed during a drain resolve as
    /// `TimedOut` and land in the metrics, while their unexpired
    /// neighbours still complete.
    #[test]
    fn expired_deadlines_time_out_with_metrics_counted(
        workers in 1usize..=8,
        live in 1usize..=8,
        dead in 1usize..=8,
    ) {
        let pool = ServePool::new(ServeConfig {
            workers,
            queue_capacity: live + dead,
            ..ServeConfig::default()
        });
        pool.pause();
        let mut live_handles = Vec::new();
        let mut dead_handles = Vec::new();
        for i in 0..live.max(dead) {
            if i < live {
                live_handles.push(pool.submit(tiny_spec()).expect("accepted"));
            }
            if i < dead {
                let spec = tiny_spec().with_deadline(Duration::ZERO);
                dead_handles.push(pool.submit(spec).expect("accepted"));
            }
        }
        // Zero deadlines are expired by the time any worker wakes; the
        // drain must report them as TimedOut, not run or drop them.
        pool.shutdown();
        for h in live_handles {
            match h.wait() {
                JobOutcome::Completed(_) => {}
                other => prop_assert!(false, "live job must complete, got {other:?}"),
            }
        }
        for h in dead_handles {
            match h.wait() {
                JobOutcome::TimedOut => {}
                other => prop_assert!(false, "expired job must time out, got {other:?}"),
            }
        }
        let snap = pool.join();
        prop_assert_eq!(snap.completed, live as u64);
        prop_assert_eq!(snap.timed_out, dead as u64);
    }
}

/// Shutdown is idempotent and safe on an idle pool; `join` after an
/// explicit `shutdown` still returns a coherent snapshot.
#[test]
fn shutdown_is_idempotent_on_idle_pool() {
    let pool = ServePool::new(ServeConfig::with_workers(2));
    pool.shutdown();
    pool.shutdown();
    match pool.submit(tiny_spec()) {
        Err(SubmitError::Closed) => {}
        other => panic!("idle closed pool must refuse, got {other:?}"),
    }
    let snap = pool.join();
    assert_eq!(snap.submitted, 0);
    assert_eq!(snap.completed, 0);
}
