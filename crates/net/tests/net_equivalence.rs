//! The tentpole property, over real sockets: for any synthetic trace,
//! worker count and quota configuration, results returned over the
//! wire are **bit-identical** — values, cycles and exception flags —
//! to running the same jobs serially in-process ([`run_serial`]).
//! Plus the tenancy and robustness contracts: an over-budget tenant
//! gets a typed rejection with an honest retry hint while other
//! tenants are unaffected, garbage bytes get a typed reject instead of
//! a wedged server, and a drain answers every accepted job.

use std::net::TcpStream;
use std::time::Duration;

use fpfpga_fabric::tech::Tech;
use fpfpga_net::{
    ErrorCode, NetClient, NetConfig, NetError, NetServer, QuotaConfig, QuotaLimits, Response,
    ServerReport, ShutdownPolicy, StopHandle,
};
use fpfpga_serve::{
    run_serial, synth_trace, JobResult, JobSpec, Priority, ServeConfig, TraceConfig,
};
use proptest::prelude::*;

/// Spin up a server on an ephemeral loopback port in a background
/// thread. Returns the address, the stop handle and the join handle
/// yielding the server's final report.
fn spawn_server(
    config: NetConfig,
) -> (
    std::net::SocketAddr,
    StopHandle,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = NetServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let stop = server.stop_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, stop, join)
}

/// Strip the scheduling envelope (ample queues elsewhere, normal
/// priority, no deadline) so every job completes and the comparison is
/// total.
fn plain(specs: Vec<JobSpec>) -> Vec<JobSpec> {
    specs
        .into_iter()
        .map(|s| JobSpec {
            priority: Priority::Normal,
            deadline: None,
            ..s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// seed × workers × quota config → pipelined wire results equal
    /// the serial oracle bit for bit.
    #[test]
    fn wire_results_match_run_serial(
        seed in any::<u64>(),
        jobs in 4usize..=14,
        workers in 1usize..=4,
        metered_quota in any::<bool>(),
    ) {
        let trace = synth_trace(&TraceConfig { seed, jobs, rate_hz: 1e6, ..TraceConfig::default() });
        let specs = plain(trace.into_iter().map(|ev| ev.spec).collect());
        let tech = Tech::virtex2pro();
        let want = run_serial(&specs, &tech);

        // Quotas must be *present or absent* without changing results:
        // the metered config is generous enough to admit everything.
        let quotas = if metered_quota {
            QuotaConfig::unlimited().with_default(QuotaLimits {
                ops_per_s: Some(1e9),
                bytes_per_s: Some(1e12),
            })
        } else {
            QuotaConfig::unlimited()
        };
        let config = NetConfig {
            serve: ServeConfig {
                workers,
                queue_capacity: specs.len().max(1),
                tech,
                ..ServeConfig::default()
            },
            quotas,
            ..NetConfig::default()
        };
        let (addr, stop, join) = spawn_server(config);
        let mut client = NetClient::connect(addr).expect("connect");
        // Pipeline: fire every request, then collect in order.
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| client.send(s).expect("send"))
            .collect();
        let mut got: Vec<JobResult> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let (rid, resp) = client.recv().expect("recv");
            prop_assert_eq!(rid, id, "responses arrive in submission order");
            match resp {
                Response::Completed(r) => got.push(r),
                Response::Rejected(rej) => {
                    prop_assert!(false, "unexpected reject: {:?}", rej);
                }
            }
        }
        client.goodbye().ok();
        stop.stop();
        let report = join.join().expect("server thread");
        prop_assert_eq!(&got, &want, "seed={} workers={}", seed, workers);
        prop_assert_eq!(report.net.protocol_errors, 0);
        prop_assert_eq!(report.pool.completed, specs.len() as u64);
    }
}

#[test]
fn over_budget_tenant_rejected_others_unaffected() {
    let quotas = QuotaConfig::unlimited().with_tenant(
        "noisy",
        QuotaLimits {
            ops_per_s: Some(2.0),
            bytes_per_s: None,
        },
    );
    let config = NetConfig {
        serve: ServeConfig::with_workers(2),
        quotas,
        ..NetConfig::default()
    };
    let (addr, stop, join) = spawn_server(config);

    let spec = |tenant: &str| {
        let trace = synth_trace(&TraceConfig {
            seed: 11,
            jobs: 1,
            rate_hz: 1e6,
            ..TraceConfig::default()
        });
        let mut s = plain(trace.into_iter().map(|ev| ev.spec).collect()).remove(0);
        s.tenant = Some(tenant.to_string());
        s
    };

    // The noisy tenant bursts 6 requests; its bucket holds 2.
    let mut noisy = NetClient::connect(addr).expect("connect noisy");
    let mut completed = 0;
    let mut quota_rejects = 0;
    for _ in 0..6 {
        match noisy.call(&spec("noisy")).expect("call") {
            Response::Completed(_) => completed += 1,
            Response::Rejected(rej) => {
                assert_eq!(rej.code, ErrorCode::QuotaOps, "typed rejection: {rej:?}");
                assert!(rej.retry_after > Duration::ZERO, "honest retry hint");
                assert!(rej.code.is_retryable());
                quota_rejects += 1;
            }
        }
    }
    assert!(completed >= 2, "burst capacity admitted, got {completed}");
    assert!(quota_rejects >= 1, "over-budget requests refused");

    // A quiet tenant on its own connection is completely unaffected.
    let mut quiet = NetClient::connect(addr).expect("connect quiet");
    for _ in 0..6 {
        match quiet.call(&spec("quiet")).expect("call") {
            Response::Completed(_) => {}
            Response::Rejected(rej) => panic!("quiet tenant rejected: {rej:?}"),
        }
    }

    noisy.goodbye().ok();
    quiet.goodbye().ok();
    stop.stop();
    let report = join.join().expect("server thread");
    let noisy_usage = report
        .tenants
        .iter()
        .find(|(t, _)| t == "noisy")
        .map(|(_, u)| u.clone())
        .expect("noisy metered");
    assert_eq!(noisy_usage.rejected_ops, quota_rejects as u64);
    assert_eq!(noisy_usage.ops, completed as u64);
}

#[test]
fn garbage_bytes_get_typed_reject_and_server_survives() {
    let (addr, stop, join) = spawn_server(NetConfig {
        serve: ServeConfig::with_workers(1),
        ..NetConfig::default()
    });

    // An adversarial peer writes a complete frame with a bogus
    // version byte: the server must answer with a typed reject +
    // goodbye, not wedge or crash.
    {
        use std::io::Write;
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut junk = Vec::new();
        junk.extend_from_slice(&10u32.to_le_bytes()); // len: header only
        junk.push(99); // version — unsupported
        junk.push(1); // kind
        junk.extend_from_slice(&7u64.to_le_bytes()); // req id
        raw.write_all(&junk).expect("write junk");
        // Read whatever comes back until the server closes on us.
        use std::io::Read;
        let mut buf = Vec::new();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let _ = raw.read_to_end(&mut buf);
        assert!(!buf.is_empty(), "server answered the garbage");
    }

    // The next well-behaved client is served normally.
    let trace = synth_trace(&TraceConfig {
        seed: 5,
        jobs: 3,
        rate_hz: 1e6,
        ..TraceConfig::default()
    });
    let specs = plain(trace.into_iter().map(|ev| ev.spec).collect());
    let mut client = NetClient::connect(addr).expect("connect clean");
    for s in &specs {
        match client.call(s).expect("call") {
            Response::Completed(_) => {}
            Response::Rejected(rej) => panic!("clean client rejected: {rej:?}"),
        }
    }
    client.goodbye().ok();
    stop.stop();
    let report = join.join().expect("server thread");
    assert!(report.net.protocol_errors >= 1, "the junk was counted");
    assert_eq!(report.pool.completed, specs.len() as u64);
}

#[test]
fn shutdown_frame_drains_and_answers_everything() {
    let (addr, _stop, join) = spawn_server(NetConfig {
        serve: ServeConfig::with_workers(2),
        ..NetConfig::default()
    });
    let trace = synth_trace(&TraceConfig {
        seed: 23,
        jobs: 8,
        rate_hz: 1e6,
        ..TraceConfig::default()
    });
    let specs = plain(trace.into_iter().map(|ev| ev.spec).collect());
    let mut client = NetClient::connect(addr).expect("connect");
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| client.send(s).expect("send"))
        .collect();
    for &id in &ids {
        let (rid, resp) = client.recv().expect("recv");
        assert_eq!(rid, id);
        assert!(matches!(resp, Response::Completed(_)));
    }
    // The admin drain: server answers with goodbye and run() returns.
    client.shutdown_server().expect("shutdown handshake");
    let report = join.join().expect("server thread");
    assert_eq!(report.pool.completed, specs.len() as u64);
    assert_eq!(report.net.protocol_errors, 0);
}

#[test]
fn ping_with_requests_in_flight_buffers_their_answers() {
    let (addr, stop, join) = spawn_server(NetConfig {
        serve: ServeConfig::with_workers(2),
        ..NetConfig::default()
    });
    let trace = synth_trace(&TraceConfig {
        seed: 31,
        jobs: 3,
        rate_hz: 1e6,
        ..TraceConfig::default()
    });
    let specs = plain(trace.into_iter().map(|ev| ev.spec).collect());
    let mut client = NetClient::connect(addr).expect("connect");
    // Pipeline every request, then ping while they are in flight: the
    // ping must succeed (not choke on Response/Reject frames) and the
    // answers it reads past must still come out of recv, in order.
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| client.send(s).expect("send"))
        .collect();
    client.ping().expect("ping with requests outstanding");
    for &id in &ids {
        let (rid, resp) = client.recv().expect("recv");
        assert_eq!(rid, id, "buffered answers keep submission order");
        assert!(matches!(resp, Response::Completed(_)));
    }
    client.goodbye().ok();
    stop.stop();
    let report = join.join().expect("server thread");
    assert_eq!(report.pool.completed, specs.len() as u64);
    assert_eq!(report.net.protocol_errors, 0);
}

#[test]
fn shutdown_is_denied_by_policy_and_server_keeps_serving() {
    let (addr, stop, join) = spawn_server(NetConfig {
        serve: ServeConfig::with_workers(1),
        shutdown_policy: ShutdownPolicy::Deny,
        ..NetConfig::default()
    });
    // The drain request bounces off with a typed Denied reject…
    let saboteur = NetClient::connect(addr).expect("connect saboteur");
    match saboteur.shutdown_server() {
        Err(NetError::Denied(rej)) => {
            assert_eq!(rej.code, ErrorCode::Denied);
            assert!(!rej.code.is_retryable());
        }
        other => panic!("expected Denied, got {other:?}"),
    }
    // …and the server is still serving everyone else.
    let trace = synth_trace(&TraceConfig {
        seed: 13,
        jobs: 2,
        rate_hz: 1e6,
        ..TraceConfig::default()
    });
    let specs = plain(trace.into_iter().map(|ev| ev.spec).collect());
    let mut client = NetClient::connect(addr).expect("connect clean");
    for s in &specs {
        match client.call(s).expect("call") {
            Response::Completed(_) => {}
            Response::Rejected(rej) => panic!("rejected after denied shutdown: {rej:?}"),
        }
    }
    client.goodbye().ok();
    stop.stop();
    let report = join.join().expect("server thread");
    assert_eq!(report.pool.completed, specs.len() as u64);
}

#[test]
fn connection_limit_refuses_with_retry_hint() {
    let (addr, stop, join) = spawn_server(NetConfig {
        serve: ServeConfig::with_workers(1),
        max_connections: 1,
        ..NetConfig::default()
    });
    // First connection occupies the only slot.
    let mut first = NetClient::connect(addr).expect("connect first");
    first.ping().expect("first connection lives");
    // The second is refused with ConnLimit + retry hint.
    let mut second = NetClient::connect(addr).expect("tcp connect still accepted");
    match second.recv() {
        Ok((_, Response::Rejected(rej))) => {
            assert_eq!(rej.code, ErrorCode::ConnLimit);
            assert!(rej.retry_after > Duration::ZERO);
        }
        other => panic!("expected ConnLimit reject, got {other:?}"),
    }
    first.goodbye().ok();
    stop.stop();
    let report = join.join().expect("server thread");
    assert_eq!(report.net.refused_conns, 1);
}
