//! A blocking, pipelining-friendly client for the wire protocol.
//!
//! [`NetClient`] numbers its requests and lets the caller keep any
//! number in flight ([`NetClient::send`] / [`NetClient::recv`]); the
//! server answers each connection in submission order, so `recv`
//! returns ids in the order `send` issued them. [`NetClient::call`] is
//! the one-shot convenience wrapper.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use fpfpga_serve::{JobResult, JobSpec};

use crate::wire::{
    control_frame, decode_reject, decode_result, encode_spec, read_frame, write_frame, ErrorCode,
    Frame, FrameError, FrameKind, Reject, WireError,
};

/// How one request ended, from the client's point of view.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job ran; the result is bit-identical to a local run.
    Completed(JobResult),
    /// The server refused or could not finish the request.
    Rejected(Reject),
}

/// Client-side failures (transport or protocol, never job-level — job
/// refusals are [`Response::Rejected`] data, not errors).
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent bytes that don't parse.
    Wire(WireError),
    /// The server said goodbye (drain) while we waited for a response.
    ServerClosed,
    /// The server refused an administrative request (e.g. a Shutdown
    /// frame from a peer its policy excludes).
    Denied(Reject),
    /// The server sent a frame kind that makes no sense here.
    Unexpected(FrameKind),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::ServerClosed => write!(f, "server closed the connection"),
            NetError::Denied(rej) => write!(f, "server refused: {}", rej.detail),
            NetError::Unexpected(k) => write!(f, "unexpected frame kind {k:?}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        match e {
            FrameError::Eof => NetError::ServerClosed,
            FrameError::Io(e) => NetError::Io(e),
            FrameError::Wire(w) => NetError::Wire(w),
        }
    }
}

/// One connection to an `fpunetd` server.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    /// Request answers that arrived while waiting for something else
    /// (a pong, say); [`NetClient::recv`] drains these first, so a
    /// [`NetClient::ping`] issued with requests in flight never eats
    /// or chokes on their responses.
    pending: VecDeque<(u64, Response)>,
}

impl NetClient {
    /// Connect (TCP_NODELAY on — frames are small and latency counts).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            next_id: 1,
            pending: VecDeque::new(),
        })
    }

    /// Send one request without waiting; returns its request id.
    /// Responses arrive in send order on this connection.
    pub fn send(&mut self, spec: &JobSpec) -> Result<u64, NetError> {
        let req_id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            kind: FrameKind::Request,
            req_id,
            body: encode_spec(spec),
        };
        write_frame(&mut self.stream, &frame)?;
        Ok(req_id)
    }

    /// Decode a Response/Reject frame into the answer pair.
    fn answer(frame: Frame) -> Result<(u64, Response), NetError> {
        match frame.kind {
            FrameKind::Response => {
                let result = decode_result(&frame.body).map_err(NetError::Wire)?;
                Ok((frame.req_id, Response::Completed(result)))
            }
            FrameKind::Reject => {
                let reject = decode_reject(&frame.body).map_err(NetError::Wire)?;
                Ok((frame.req_id, Response::Rejected(reject)))
            }
            other => Err(NetError::Unexpected(other)),
        }
    }

    /// Block for the next response or reject (answers buffered while
    /// waiting for a pong come first, in arrival order).
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        if let Some(buffered) = self.pending.pop_front() {
            return Ok(buffered);
        }
        loop {
            let frame = read_frame(&mut self.stream)?;
            match frame.kind {
                FrameKind::Response | FrameKind::Reject => return Self::answer(frame),
                FrameKind::Goodbye => return Err(NetError::ServerClosed),
                FrameKind::Pong => continue, // stray keepalive answer
                other => return Err(NetError::Unexpected(other)),
            }
        }
    }

    /// Send one request and wait for its answer.
    pub fn call(&mut self, spec: &JobSpec) -> Result<Response, NetError> {
        let id = self.send(spec)?;
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(NetError::Unexpected(FrameKind::Response));
        }
        Ok(resp)
    }

    /// Liveness probe; returns the round-trip time. Safe to call with
    /// requests in flight: their responses and rejects are buffered in
    /// arrival order for later [`NetClient::recv`] calls, never lost.
    /// (The server answers FIFO, so the measured round trip includes
    /// any queued work ahead of the ping.)
    pub fn ping(&mut self) -> Result<Duration, NetError> {
        let req_id = self.next_id;
        self.next_id += 1;
        let start = Instant::now();
        write_frame(&mut self.stream, &control_frame(FrameKind::Ping, req_id))?;
        loop {
            let frame = read_frame(&mut self.stream)?;
            match frame.kind {
                FrameKind::Pong if frame.req_id == req_id => return Ok(start.elapsed()),
                FrameKind::Pong => continue,
                FrameKind::Response | FrameKind::Reject => {
                    self.pending.push_back(Self::answer(frame)?);
                }
                FrameKind::Goodbye => return Err(NetError::ServerClosed),
                other => return Err(NetError::Unexpected(other)),
            }
        }
    }

    /// Ask the server to drain and exit; waits for its goodbye. Any
    /// responses still owed to this connection arrive first (the
    /// server flushes in order). If this peer is not allowed to drain
    /// the server (see `ShutdownPolicy`), returns
    /// [`NetError::Denied`] with the server's typed reject.
    pub fn shutdown_server(mut self) -> Result<(), NetError> {
        write_frame(&mut self.stream, &control_frame(FrameKind::Shutdown, 0))?;
        loop {
            match read_frame(&mut self.stream) {
                Ok(f) if f.kind == FrameKind::Goodbye => return Ok(()),
                Ok(f) if f.kind == FrameKind::Reject => {
                    // Rejects to earlier pipelined requests drain
                    // through here too; only a Denied-coded reject
                    // answers the shutdown itself.
                    let reject = decode_reject(&f.body).map_err(NetError::Wire)?;
                    if reject.code == ErrorCode::Denied {
                        return Err(NetError::Denied(reject));
                    }
                }
                Ok(_) => continue, // late responses before the goodbye
                Err(FrameError::Eof) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Close this connection politely.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        write_frame(&mut self.stream, &control_frame(FrameKind::Goodbye, 0))?;
        Ok(())
    }
}
