//! `fpfpga-net`: the network front-end for the serving pool.
//!
//! This crate puts [`fpfpga_serve`]'s in-process scheduler behind a
//! TCP wire so the paper's FP kernels can be served to tenants outside
//! the caller's address space, and adds the hardening a shared
//! front-end needs:
//!
//! - **[`wire`]** — a length-prefixed, versioned binary protocol with
//!   a lossless codec for [`fpfpga_serve::JobSpec`] and
//!   [`fpfpga_serve::JobResult`] (floating-point payloads travel as
//!   raw bit patterns, so wire results are bit-identical to local
//!   runs) and typed error codes mirroring
//!   [`fpfpga_serve::SubmitError`].
//! - **[`quota`]** — per-tenant token-bucket request-rate and
//!   byte-rate quotas with honest retry-after hints, layered on the
//!   pool's existing priorities and shedding.
//! - **[`server`]** — the accept loop: connection limits with graceful
//!   backpressure, idle timeouts, per-connection reader/writer threads
//!   preserving response order, and a drain-on-shutdown path that
//!   answers every accepted job before exiting.
//! - **[`client`]** — a blocking, pipelining-friendly client used by
//!   the `fpunet` load generator and the test suites.
//! - **[`adaptive`]** — a feedback tuner driving the pool's live
//!   coalescing window from the batch-occupancy metric.
//!
//! The defining property carries over from the serving layer: for any
//! trace, worker count and quota configuration, results returned over
//! the wire are **bit-identical** (exception flags included) to
//! [`fpfpga_serve::run_serial`] — property-tested over real loopback
//! sockets in `tests/net_equivalence.rs`.

#![deny(missing_docs)]

pub mod adaptive;
pub mod client;
pub mod quota;
pub mod server;
pub mod wire;

pub use adaptive::{next_window, AdaptiveConfig, AdaptiveTuner, IntervalSample};
pub use client::{NetClient, NetError, Response};
pub use quota::{QuotaBook, QuotaConfig, QuotaDenied, QuotaLimits, TenantUsage, TokenBucket};
pub use server::{
    NetConfig, NetServer, NetStatsSnapshot, ServerReport, ShutdownPolicy, StopHandle,
};
pub use wire::{
    ErrorCode, Frame, FrameError, FrameKind, Reject, WireError, MAX_BODY_LEN, MAX_FRAME_LEN,
    WIRE_VERSION,
};
