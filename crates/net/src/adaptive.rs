//! Adaptive coalescing: drive the pool's live batching window from
//! the batch-occupancy metric.
//!
//! A fixed `coalesce_window` is wrong at both ends of the load curve.
//! Under light load the queue rarely holds coalescible neighbours, so
//! a large window only adds scan cost; under heavy load a small window
//! leaves batching (and therefore throughput) on the table. The tuner
//! samples the pool's [`MetricsSnapshot`] at a fixed cadence, computes
//! the *occupancy of recent batches* (batched jobs per batch over the
//! sampling interval, relative to the current window) plus the live
//! queue depth, and nudges [`ServePool::set_coalesce_window`]:
//!
//! - batches nearly full (occupancy ≥ 75 % of the window) and work
//!   queued → grow the window (×2, capped), there is more to fold;
//! - batches nearly empty (occupancy < 25 % of the window) → shrink
//!   (halve, floored), the scan isn't paying for itself;
//! - otherwise hold.
//!
//! The decision logic is the pure function [`next_window`] (unit
//! tested, no clock, no threads); [`AdaptiveTuner`] is the thin
//! sampling loop around it. Window changes are *bit-invisible* to
//! results by the pool's coalescing property, so the tuner needs no
//! coordination with submitters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fpfpga_serve::{MetricsSnapshot, ServePool};

/// Bounds and thresholds for [`next_window`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Smallest window the tuner will set.
    pub min_window: usize,
    /// Largest window the tuner will set.
    pub max_window: usize,
    /// Grow when occupancy/window exceeds this (0..1).
    pub grow_at: f64,
    /// Shrink when occupancy/window falls below this (0..1).
    pub shrink_at: f64,
    /// Sampling cadence of the tuner thread.
    pub interval: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            min_window: 2,
            max_window: 256,
            grow_at: 0.75,
            shrink_at: 0.25,
            interval: Duration::from_millis(20),
        }
    }
}

/// One sampling interval's worth of pool activity, as deltas between
/// two metric snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalSample {
    /// Coalesced batches executed this interval.
    pub batches: u64,
    /// Jobs served by those batches.
    pub batched_jobs: u64,
    /// Queue depth at the end of the interval (gauge).
    pub queue_depth: u64,
}

impl IntervalSample {
    /// The delta between two snapshots (counters are monotonic).
    pub fn between(prev: &MetricsSnapshot, cur: &MetricsSnapshot) -> IntervalSample {
        IntervalSample {
            batches: cur.batches.saturating_sub(prev.batches),
            batched_jobs: cur.batched_jobs.saturating_sub(prev.batched_jobs),
            queue_depth: cur.queue_depth,
        }
    }
}

/// The pure window-update rule. Given the current window and one
/// interval's sample, return the window for the next interval.
pub fn next_window(current: usize, sample: IntervalSample, cfg: &AdaptiveConfig) -> usize {
    let current = current.clamp(cfg.min_window, cfg.max_window);
    if sample.batches == 0 {
        // No coalesced batches ran: with a deep queue the window is
        // not the bottleneck, hold; with an idle pool shrink toward
        // the floor so the next scan is cheap.
        return if sample.queue_depth > 0 {
            current
        } else {
            (current / 2).max(cfg.min_window)
        };
    }
    let occupancy = sample.batched_jobs as f64 / sample.batches as f64;
    let fill = occupancy / current as f64;
    if fill >= cfg.grow_at && sample.queue_depth > 0 {
        (current * 2).min(cfg.max_window)
    } else if fill < cfg.shrink_at {
        (current / 2).max(cfg.min_window)
    } else {
        current
    }
}

/// A background thread adjusting one pool's window until stopped.
pub struct AdaptiveTuner {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdaptiveTuner {
    /// Start tuning `pool` (shared by `Arc`) under `cfg`.
    pub fn start(pool: Arc<ServePool>, cfg: AdaptiveConfig) -> AdaptiveTuner {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("fpunet-tuner".into())
            .spawn(move || {
                let mut prev = pool.metrics();
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.interval);
                    let cur = pool.metrics();
                    let sample = IntervalSample::between(&prev, &cur);
                    let window = next_window(pool.coalesce_window(), sample, &cfg);
                    pool.set_coalesce_window(window);
                    prev = cur;
                }
            })
            .expect("spawn tuner thread");
        AdaptiveTuner {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the tuner and wait for its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdaptiveTuner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: AdaptiveConfig = AdaptiveConfig {
        min_window: 2,
        max_window: 64,
        grow_at: 0.75,
        shrink_at: 0.25,
        interval: Duration::from_millis(20),
    };

    #[test]
    fn full_batches_with_backlog_grow() {
        let s = IntervalSample {
            batches: 10,
            batched_jobs: 80, // occupancy 8 per batch
            queue_depth: 50,
        };
        assert_eq!(next_window(8, s, &CFG), 16);
    }

    #[test]
    fn full_batches_without_backlog_hold() {
        let s = IntervalSample {
            batches: 10,
            batched_jobs: 80,
            queue_depth: 0,
        };
        assert_eq!(next_window(8, s, &CFG), 8);
    }

    #[test]
    fn sparse_batches_shrink() {
        let s = IntervalSample {
            batches: 10,
            batched_jobs: 11, // barely above 1 job per batch
            queue_depth: 3,
        };
        assert_eq!(next_window(16, s, &CFG), 8);
    }

    #[test]
    fn idle_pool_decays_to_floor() {
        let mut w = 64;
        let idle = IntervalSample::default();
        for _ in 0..10 {
            w = next_window(w, idle, &CFG);
        }
        assert_eq!(w, CFG.min_window);
    }

    #[test]
    fn window_respects_bounds() {
        let busy = IntervalSample {
            batches: 1,
            batched_jobs: 64,
            queue_depth: 1000,
        };
        assert_eq!(next_window(64, busy, &CFG), 64, "capped at max");
        let sparse = IntervalSample {
            batches: 100,
            batched_jobs: 100,
            queue_depth: 0,
        };
        assert_eq!(next_window(2, sparse, &CFG), 2, "floored at min");
    }

    #[test]
    fn tuner_thread_adjusts_a_live_pool() {
        use fpfpga_serve::ServeConfig;
        let pool = Arc::new(ServePool::new(ServeConfig::with_workers(1)));
        let tuner = AdaptiveTuner::start(
            pool.clone(),
            AdaptiveConfig {
                interval: Duration::from_millis(1),
                ..AdaptiveConfig::default()
            },
        );
        // Idle pool: the tuner must decay the window to the floor.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.coalesce_window() > 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        tuner.stop();
        assert_eq!(pool.coalesce_window(), 2);
    }
}
