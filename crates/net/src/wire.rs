//! The wire protocol: a length-prefixed binary framing with a full,
//! lossless codec for [`JobSpec`] and [`JobResult`].
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────┬─────────┬─────────┬───────────────┬────────────┐
//! │ len: u32 │ ver: u8 │ kind:u8 │ req_id: u64   │ body …     │
//! │ LE       │ (=1)    │         │ LE            │ (len − 10) │
//! └──────────┴─────────┴─────────┴───────────────┴────────────┘
//! ```
//!
//! `len` counts every byte after itself (version, kind, request id and
//! body), so a reader needs exactly two reads per frame. All integers
//! are little-endian; floating-point payloads travel as raw bit
//! patterns (`u64`), never as text — the protocol is lossless by
//! construction, which is what lets the equivalence property ("wire
//! results are bit-identical to [`fpfpga_serve::run_serial`]") hold.
//!
//! Decoding never panics on malformed input: every length is bounds-
//! checked against [`MAX_FRAME_LEN`] before allocation, every enum tag
//! and format width is validated ([`FpFormat::try_new`]), and a
//! truncated buffer yields [`WireError::Truncated`].

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::{Objective, SynthesisOptions};
use fpfpga_fpu::analysis::CoreKind;
use fpfpga_matmul::array::ArrayStats;
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::{Cplx, ErrorBudget, Matrix};
use fpfpga_serve::{ApOp, EltOp, JobResult, JobSpec, Kernel, PolicySel, Priority};
use fpfpga_softfp::limb::LimbFormat;
use fpfpga_softfp::{Flags, FpFormat, PrecisionPolicy, RoundMode};

/// Protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Hard ceiling on one frame's `len` field (16 MiB). Anything larger
/// is refused before allocation — a malformed or hostile length prefix
/// must not become an out-of-memory.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Bytes of header counted by `len` (version + kind + request id).
const HEADER_AFTER_LEN: u32 = 1 + 1 + 8;

/// Largest body one frame can carry. [`write_frame`] refuses anything
/// bigger, so an oversized payload becomes a typed error at the sender
/// instead of a `TooLarge`/desync at the receiver (or, past 4 GiB, a
/// silently wrapped length prefix).
pub const MAX_BODY_LEN: u32 = MAX_FRAME_LEN - HEADER_AFTER_LEN;

/// What a frame is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: run this [`JobSpec`]; body is the encoded spec.
    Request = 1,
    /// Server → client: the job completed; body is the [`JobResult`].
    Response = 2,
    /// Server → client: the request was refused or did not complete;
    /// body is an [`ErrorCode`], an optional retry-after hint and a
    /// human-readable detail string.
    Reject = 3,
    /// Client → server (admin): drain and exit. The server answers
    /// every in-flight job, sends [`FrameKind::Goodbye`], and shuts
    /// down cleanly.
    Shutdown = 4,
    /// Either direction: the peer is closing this connection after the
    /// frame; no body.
    Goodbye = 5,
    /// Client → server liveness probe; no body.
    Ping = 6,
    /// Server → client answer to [`FrameKind::Ping`]; echoes the id.
    Pong = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Request,
            2 => FrameKind::Response,
            3 => FrameKind::Reject,
            4 => FrameKind::Shutdown,
            5 => FrameKind::Goodbye,
            6 => FrameKind::Ping,
            7 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// Why a request was refused, as carried in a [`FrameKind::Reject`]
/// body. The first four mirror [`fpfpga_serve::SubmitError`] one to
/// one; the rest are transport- and tenancy-layer refusals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload failed kernel preconditions (`SubmitError::Invalid`).
    Invalid = 1,
    /// Shard queue full, backpressure (`SubmitError::Rejected`).
    Rejected = 2,
    /// Pool is draining (`SubmitError::Closed`).
    Closed = 3,
    /// Auto-tune budget unsatisfiable (`SubmitError::Budget`).
    Budget = 4,
    /// Tenant exceeded its request-rate quota.
    QuotaOps = 5,
    /// Tenant exceeded its byte-rate quota.
    QuotaBytes = 6,
    /// Server at its connection limit.
    ConnLimit = 7,
    /// The frame could not be decoded.
    Malformed = 8,
    /// Unsupported protocol version.
    BadVersion = 9,
    /// Frame length over [`MAX_FRAME_LEN`].
    TooLarge = 10,
    /// Accepted, but the deadline expired before a worker ran it.
    TimedOut = 11,
    /// Accepted, but displaced by higher-priority work.
    Shed = 12,
    /// Accepted, but cancelled before execution.
    Cancelled = 13,
    /// The kernel failed while running.
    Failed = 14,
    /// An administrative frame (e.g. [`FrameKind::Shutdown`]) was
    /// refused — the peer is not allowed to issue it.
    Denied = 15,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Invalid,
            2 => ErrorCode::Rejected,
            3 => ErrorCode::Closed,
            4 => ErrorCode::Budget,
            5 => ErrorCode::QuotaOps,
            6 => ErrorCode::QuotaBytes,
            7 => ErrorCode::ConnLimit,
            8 => ErrorCode::Malformed,
            9 => ErrorCode::BadVersion,
            10 => ErrorCode::TooLarge,
            11 => ErrorCode::TimedOut,
            12 => ErrorCode::Shed,
            13 => ErrorCode::Cancelled,
            14 => ErrorCode::Failed,
            15 => ErrorCode::Denied,
            _ => return None,
        })
    }

    /// Is retrying the same request later sensible?
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Rejected
                | ErrorCode::QuotaOps
                | ErrorCode::QuotaBytes
                | ErrorCode::ConnLimit
                | ErrorCode::TimedOut
                | ErrorCode::Shed
        )
    }
}

/// A decoded reject body.
#[derive(Clone, Debug, PartialEq)]
pub struct Reject {
    /// Why the request was refused.
    pub code: ErrorCode,
    /// Back off at least this long before retrying (0 = no hint).
    pub retry_after: Duration,
    /// Human-readable detail, may be empty.
    pub detail: String,
}

/// One frame, owned.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Correlates responses with requests; the server echoes the
    /// client's id, so pipelined clients match replies without
    /// assuming ordering.
    pub req_id: u64,
    /// Kind-specific payload.
    pub body: Vec<u8>,
}

/// Everything that can go wrong decoding bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// A tag, width or length field held an impossible value.
    Malformed(String),
    /// The frame's `len` exceeded [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

fn bad(what: impl Into<String>) -> WireError {
    WireError::Malformed(what.into())
}

// ---------------------------------------------------------------------------
// Primitive writer/reader
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte vector.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn u64_slice(&mut self, xs: &[u64]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.u64(x);
        }
    }
}

/// Bounds-checked decoder over a byte slice.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(bad(format!("bool byte {v}"))),
        }
    }
    /// A length prefix that still fits in the remaining buffer when
    /// multiplied by `elem_size` — checked *before* allocation so a
    /// hostile length cannot balloon memory.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n
            .checked_mul(elem_size.max(1))
            .ok_or_else(|| bad("length overflow"))?;
        if need > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string not UTF-8"))
    }
    fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len_prefix(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Domain type codecs
// ---------------------------------------------------------------------------

fn enc_format(e: &mut Enc, fmt: FpFormat) {
    e.u8(fmt.exp_bits() as u8);
    e.u8(fmt.frac_bits() as u8);
}

fn dec_format(d: &mut Dec) -> Result<FpFormat, WireError> {
    let exp = d.u8()? as u32;
    let frac = d.u8()? as u32;
    FpFormat::try_new(exp, frac).ok_or_else(|| bad(format!("format widths e={exp} f={frac}")))
}

fn enc_policy(e: &mut Enc, p: PrecisionPolicy) {
    enc_format(e, p.compute);
    enc_format(e, p.accumulate);
    enc_format(e, p.storage);
}

fn dec_policy(d: &mut Dec) -> Result<PrecisionPolicy, WireError> {
    Ok(PrecisionPolicy::new(
        dec_format(d)?,
        dec_format(d)?,
        dec_format(d)?,
    ))
}

fn enc_mode(e: &mut Enc, m: RoundMode) {
    e.u8(match m {
        RoundMode::NearestEven => 0,
        RoundMode::Truncate => 1,
    });
}

fn dec_mode(d: &mut Dec) -> Result<RoundMode, WireError> {
    match d.u8()? {
        0 => Ok(RoundMode::NearestEven),
        1 => Ok(RoundMode::Truncate),
        v => Err(bad(format!("round mode tag {v}"))),
    }
}

fn enc_matrix(e: &mut Enc, m: &Matrix) {
    enc_format(e, m.format());
    e.u32(m.rows() as u32);
    e.u32(m.cols() as u32);
    for &bits in m.data() {
        e.u64(bits);
    }
}

fn dec_matrix(d: &mut Dec) -> Result<Matrix, WireError> {
    let fmt = dec_format(d)?;
    let rows = d.u32()? as usize;
    let cols = d.u32()? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| bad("matrix size overflow"))?;
    if n.checked_mul(8)
        .ok_or_else(|| bad("matrix size overflow"))?
        > d.buf.len().saturating_sub(d.pos)
    {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(d.u64()?);
    }
    Ok(Matrix::from_bits(fmt, rows, cols, data))
}

fn enc_cplx_vec(e: &mut Enc, xs: &[Cplx]) {
    e.u32(xs.len() as u32);
    for c in xs {
        e.u64(c.re);
        e.u64(c.im);
    }
}

fn dec_cplx_vec(d: &mut Dec) -> Result<Vec<Cplx>, WireError> {
    let n = d.len_prefix(16)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let re = d.u64()?;
        let im = d.u64()?;
        v.push(Cplx { re, im });
    }
    Ok(v)
}

fn enc_flags(e: &mut Enc, f: Flags) {
    e.u8(f.to_bits());
}

fn dec_flags(d: &mut Dec) -> Result<Flags, WireError> {
    let bits = d.u8()?;
    if bits & !0b1_1111 != 0 {
        return Err(bad(format!("flag bits {bits:#04x}")));
    }
    Ok(Flags::from_bits(bits))
}

fn enc_kernel(e: &mut Enc, k: &Kernel) {
    match k {
        Kernel::Eltwise { op, stages, pairs } => {
            e.u8(0);
            e.u8(match op {
                EltOp::Add => 0,
                EltOp::Sub => 1,
                EltOp::Mul => 2,
                EltOp::Div => 3,
                EltOp::Sqrt => 4,
            });
            e.u32(*stages);
            e.u32(pairs.len() as u32);
            for &(a, b) in pairs {
                e.u64(a);
                e.u64(b);
            }
        }
        Kernel::Dot {
            mult_stages,
            add_stages,
            x,
            y,
        } => {
            e.u8(1);
            e.u32(*mult_stages);
            e.u32(*add_stages);
            e.u64_slice(x);
            e.u64_slice(y);
        }
        Kernel::MatMul {
            mult_stages,
            add_stages,
            a,
            b,
            backend,
        } => {
            e.u8(2);
            e.u32(*mult_stages);
            e.u32(*add_stages);
            enc_matrix(e, a);
            enc_matrix(e, b);
            e.u8(match backend {
                UnitBackend::Fast => 0,
                UnitBackend::Structural => 1,
            });
        }
        Kernel::Mvm {
            mult_stages,
            add_stages,
            p,
            a,
            x,
        } => {
            e.u8(3);
            e.u32(*mult_stages);
            e.u32(*add_stages);
            e.u64(*p as u64);
            enc_matrix(e, a);
            e.u64_slice(x);
        }
        Kernel::Lu {
            div_stages,
            mac_stages,
            p,
            a,
        } => {
            e.u8(4);
            e.u32(*div_stages);
            e.u32(*mac_stages);
            e.u32(*p);
            enc_matrix(e, a);
        }
        Kernel::Fft {
            mult_stages,
            add_stages,
            data,
            inverse,
        } => {
            e.u8(5);
            e.u32(*mult_stages);
            e.u32(*add_stages);
            enc_cplx_vec(e, data);
            e.boolean(*inverse);
        }
        Kernel::Apfloat { op, fmt, a, b, c } => {
            e.u8(7);
            e.u8(match op {
                ApOp::Add => 0,
                ApOp::Sub => 1,
                ApOp::Mul => 2,
                ApOp::Fma => 3,
            });
            e.u8(fmt.exp_bits() as u8);
            e.u32(fmt.frac_bits());
            // Every operand is exactly `fmt.limbs()` words, so streams
            // carry one count and raw limbs — no per-element prefixes.
            enc_limb_stream(e, a);
            enc_limb_stream(e, b);
            enc_limb_stream(e, c);
        }
        Kernel::Sweep { kind, opts } => {
            e.u8(6);
            e.u8(match kind {
                CoreKind::Adder => 0,
                CoreKind::Multiplier => 1,
                CoreKind::Divider => 2,
                CoreKind::Sqrt => 3,
            });
            e.u8(obj_tag(opts.synthesis));
            e.u8(obj_tag(opts.par));
        }
    }
}

fn enc_limb_stream(e: &mut Enc, xs: &[Vec<u64>]) {
    e.u32(xs.len() as u32);
    for enc in xs {
        for &limb in enc {
            e.u64(limb);
        }
    }
}

/// Decode a stream of `limbs`-word operands. The element count is
/// bounds-checked against the remaining buffer *scaled by the operand
/// size* before allocation.
fn dec_limb_stream(d: &mut Dec, limbs: usize) -> Result<Vec<Vec<u64>>, WireError> {
    let n = d.len_prefix(limbs.saturating_mul(8))?;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut enc = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            enc.push(d.u64()?);
        }
        xs.push(enc);
    }
    Ok(xs)
}

fn obj_tag(o: Objective) -> u8 {
    match o {
        Objective::Speed => 0,
        Objective::Area => 1,
    }
}

fn dec_obj(d: &mut Dec) -> Result<Objective, WireError> {
    match d.u8()? {
        0 => Ok(Objective::Speed),
        1 => Ok(Objective::Area),
        v => Err(bad(format!("objective tag {v}"))),
    }
}

fn dec_kernel(d: &mut Dec) -> Result<Kernel, WireError> {
    Ok(match d.u8()? {
        0 => {
            let op = match d.u8()? {
                0 => EltOp::Add,
                1 => EltOp::Sub,
                2 => EltOp::Mul,
                3 => EltOp::Div,
                4 => EltOp::Sqrt,
                v => return Err(bad(format!("eltwise op tag {v}"))),
            };
            let stages = d.u32()?;
            let n = d.len_prefix(16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = d.u64()?;
                let b = d.u64()?;
                pairs.push((a, b));
            }
            Kernel::Eltwise { op, stages, pairs }
        }
        1 => Kernel::Dot {
            mult_stages: d.u32()?,
            add_stages: d.u32()?,
            x: d.u64_vec()?,
            y: d.u64_vec()?,
        },
        2 => {
            let mult_stages = d.u32()?;
            let add_stages = d.u32()?;
            let a = dec_matrix(d)?;
            let b = dec_matrix(d)?;
            let backend = match d.u8()? {
                0 => UnitBackend::Fast,
                1 => UnitBackend::Structural,
                v => return Err(bad(format!("backend tag {v}"))),
            };
            Kernel::MatMul {
                mult_stages,
                add_stages,
                a,
                b,
                backend,
            }
        }
        3 => {
            let mult_stages = d.u32()?;
            let add_stages = d.u32()?;
            let p = d.u64()? as usize;
            let a = dec_matrix(d)?;
            let x = d.u64_vec()?;
            Kernel::Mvm {
                mult_stages,
                add_stages,
                p,
                a,
                x,
            }
        }
        4 => Kernel::Lu {
            div_stages: d.u32()?,
            mac_stages: d.u32()?,
            p: d.u32()?,
            a: dec_matrix(d)?,
        },
        5 => {
            let mult_stages = d.u32()?;
            let add_stages = d.u32()?;
            let data = dec_cplx_vec(d)?;
            let inverse = d.boolean()?;
            Kernel::Fft {
                mult_stages,
                add_stages,
                data,
                inverse,
            }
        }
        6 => {
            let kind = match d.u8()? {
                0 => CoreKind::Adder,
                1 => CoreKind::Multiplier,
                2 => CoreKind::Divider,
                3 => CoreKind::Sqrt,
                v => return Err(bad(format!("core kind tag {v}"))),
            };
            let synthesis = dec_obj(d)?;
            let par = dec_obj(d)?;
            Kernel::Sweep {
                kind,
                opts: SynthesisOptions { synthesis, par },
            }
        }
        7 => {
            let op = match d.u8()? {
                0 => ApOp::Add,
                1 => ApOp::Sub,
                2 => ApOp::Mul,
                3 => ApOp::Fma,
                v => return Err(bad(format!("apfloat op tag {v}"))),
            };
            let exp = d.u8()? as u32;
            let frac = d.u32()?;
            let fmt = LimbFormat::try_new(exp, frac)
                .ok_or_else(|| bad(format!("wide format widths e={exp} f={frac}")))?;
            let limbs = fmt.limbs();
            let a = dec_limb_stream(d, limbs)?;
            let b = dec_limb_stream(d, limbs)?;
            let c = dec_limb_stream(d, limbs)?;
            Kernel::Apfloat { op, fmt, a, b, c }
        }
        v => return Err(bad(format!("kernel tag {v}"))),
    })
}

fn enc_policy_sel(e: &mut Enc, sel: &PolicySel) {
    match sel {
        PolicySel::Default => e.u8(0),
        PolicySel::Fixed(p) => {
            e.u8(1);
            enc_policy(e, *p);
        }
        PolicySel::Auto { storage, budget } => {
            e.u8(2);
            enc_format(e, *storage);
            match budget {
                ErrorBudget::MaxUlp(v) => {
                    e.u8(0);
                    e.f64(*v);
                }
                ErrorBudget::MaxRelative(v) => {
                    e.u8(1);
                    e.f64(*v);
                }
            }
        }
    }
}

fn dec_policy_sel(d: &mut Dec) -> Result<PolicySel, WireError> {
    Ok(match d.u8()? {
        0 => PolicySel::Default,
        1 => PolicySel::Fixed(dec_policy(d)?),
        2 => {
            let storage = dec_format(d)?;
            let budget = match d.u8()? {
                0 => ErrorBudget::MaxUlp(d.f64()?),
                1 => ErrorBudget::MaxRelative(d.f64()?),
                v => return Err(bad(format!("budget tag {v}"))),
            };
            PolicySel::Auto { storage, budget }
        }
        v => return Err(bad(format!("policy selector tag {v}"))),
    })
}

/// Encode a [`JobSpec`] as a request body.
pub fn encode_spec(spec: &JobSpec) -> Vec<u8> {
    let mut e = Enc::new();
    enc_kernel(&mut e, &spec.kernel);
    enc_policy_sel(&mut e, &spec.policy);
    enc_mode(&mut e, spec.mode);
    match &spec.tenant {
        Some(t) => {
            e.u8(1);
            e.str(t);
        }
        None => e.u8(0),
    }
    e.u8(match spec.priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    });
    match spec.deadline {
        Some(dl) => {
            e.u8(1);
            e.u64(dl.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        None => e.u8(0),
    }
    e.buf
}

/// Decode a request body back into a [`JobSpec`]. Rejects trailing
/// garbage.
pub fn decode_spec(body: &[u8]) -> Result<JobSpec, WireError> {
    let mut d = Dec::new(body);
    let kernel = dec_kernel(&mut d)?;
    let policy = dec_policy_sel(&mut d)?;
    let mode = dec_mode(&mut d)?;
    let tenant = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        v => return Err(bad(format!("tenant flag {v}"))),
    };
    let priority = match d.u8()? {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        v => return Err(bad(format!("priority tag {v}"))),
    };
    let deadline = match d.u8()? {
        0 => None,
        1 => Some(Duration::from_nanos(d.u64()?)),
        v => return Err(bad(format!("deadline flag {v}"))),
    };
    d.finish()?;
    Ok(JobSpec {
        kernel,
        policy,
        mode,
        tenant,
        priority,
        deadline,
    })
}

/// Encode a [`JobResult`] as a response body.
pub fn encode_result(r: &JobResult) -> Vec<u8> {
    let mut e = Enc::new();
    match r {
        JobResult::Eltwise(rs) => {
            e.u8(0);
            e.u32(rs.len() as u32);
            for &(bits, flags) in rs {
                e.u64(bits);
                enc_flags(&mut e, flags);
            }
        }
        JobResult::Dot {
            value,
            flags,
            cycles,
        } => {
            e.u8(1);
            e.u64(*value);
            enc_flags(&mut e, *flags);
            e.u64(*cycles);
        }
        JobResult::MatMul { c, stats } => {
            e.u8(2);
            enc_matrix(&mut e, c);
            e.u64(stats.cycles);
            e.u64(stats.useful_macs);
            e.u64(stats.pad_macs);
            e.u64(stats.idle_cycles);
            e.u64(stats.bram_accesses);
        }
        JobResult::Mvm { y, cycles } => {
            e.u8(3);
            e.u64_slice(y);
            e.u64(*cycles);
        }
        JobResult::Lu {
            lu,
            cycles,
            divs,
            macs,
            flags,
        } => {
            e.u8(4);
            enc_matrix(&mut e, lu);
            e.u64(*cycles);
            e.u64(*divs);
            e.u64(*macs);
            enc_flags(&mut e, *flags);
        }
        JobResult::Fft { data, cycles } => {
            e.u8(5);
            enc_cplx_vec(&mut e, data);
            e.u64(*cycles);
        }
        JobResult::Apfloat(rs) => {
            e.u8(7);
            e.u32(rs.len() as u32);
            // Unlike the request, results carry a per-element limb
            // count: the decoder has no format to derive it from.
            for (bits, flags) in rs {
                e.u64_slice(bits);
                enc_flags(&mut e, *flags);
            }
        }
        JobResult::Sweep { opt, depths } => {
            e.u8(6);
            e.str(&opt.name);
            e.u32(opt.stages);
            e.u32(opt.slices);
            e.u32(opt.luts);
            e.u32(opt.ffs);
            e.u32(opt.bmults);
            e.u32(opt.brams);
            e.f64(opt.clock_mhz);
            e.f64(opt.worst_stage_ns);
            e.u64(*depths as u64);
        }
    }
    e.buf
}

/// The exact length [`encode_result`] would produce for `r`, computed
/// without allocating. The server checks this against [`MAX_BODY_LEN`]
/// before encoding, so a result too big for one frame (a small matmul
/// request can legally produce a huge result matrix) becomes a typed
/// [`ErrorCode::TooLarge`] reject instead of an unsendable buffer.
pub fn encoded_result_len(r: &JobResult) -> u64 {
    fn matrix_len(m: &Matrix) -> u64 {
        // format (2) + rows (4) + cols (4) + 8 bytes per element.
        10 + 8 * (m.rows() as u64) * (m.cols() as u64)
    }
    match r {
        JobResult::Eltwise(rs) => 5 + 9 * rs.len() as u64,
        JobResult::Dot { .. } => 18,
        JobResult::MatMul { c, .. } => 41 + matrix_len(c),
        JobResult::Mvm { y, .. } => 13 + 8 * y.len() as u64,
        JobResult::Lu { lu, .. } => 26 + matrix_len(lu),
        JobResult::Fft { data, .. } => 13 + 16 * data.len() as u64,
        JobResult::Apfloat(rs) => {
            5 + rs
                .iter()
                .map(|(bits, _)| 5 + 8 * bits.len() as u64)
                .sum::<u64>()
        }
        JobResult::Sweep { opt, .. } => 53 + opt.name.len() as u64,
    }
}

/// Decode a response body back into a [`JobResult`]. Rejects trailing
/// garbage.
pub fn decode_result(body: &[u8]) -> Result<JobResult, WireError> {
    let mut d = Dec::new(body);
    let r = match d.u8()? {
        0 => {
            let n = d.len_prefix(9)?;
            let mut rs = Vec::with_capacity(n);
            for _ in 0..n {
                let bits = d.u64()?;
                let flags = dec_flags(&mut d)?;
                rs.push((bits, flags));
            }
            JobResult::Eltwise(rs)
        }
        1 => JobResult::Dot {
            value: d.u64()?,
            flags: dec_flags(&mut d)?,
            cycles: d.u64()?,
        },
        2 => JobResult::MatMul {
            c: dec_matrix(&mut d)?,
            stats: ArrayStats {
                cycles: d.u64()?,
                useful_macs: d.u64()?,
                pad_macs: d.u64()?,
                idle_cycles: d.u64()?,
                bram_accesses: d.u64()?,
            },
        },
        3 => JobResult::Mvm {
            y: d.u64_vec()?,
            cycles: d.u64()?,
        },
        4 => JobResult::Lu {
            lu: dec_matrix(&mut d)?,
            cycles: d.u64()?,
            divs: d.u64()?,
            macs: d.u64()?,
            flags: dec_flags(&mut d)?,
        },
        5 => JobResult::Fft {
            data: dec_cplx_vec(&mut d)?,
            cycles: d.u64()?,
        },
        7 => {
            let n = d.len_prefix(5)?;
            let mut rs = Vec::with_capacity(n);
            for _ in 0..n {
                let bits = d.u64_vec()?;
                let flags = dec_flags(&mut d)?;
                rs.push((bits, flags));
            }
            JobResult::Apfloat(rs)
        }
        6 => JobResult::Sweep {
            opt: ImplementationReport {
                name: d.str()?,
                stages: d.u32()?,
                slices: d.u32()?,
                luts: d.u32()?,
                ffs: d.u32()?,
                bmults: d.u32()?,
                brams: d.u32()?,
                clock_mhz: d.f64()?,
                worst_stage_ns: d.f64()?,
            },
            depths: d.u64()? as usize,
        },
        v => return Err(bad(format!("result tag {v}"))),
    };
    d.finish()?;
    Ok(r)
}

/// Encode a reject body.
pub fn encode_reject(r: &Reject) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(r.code as u8);
    e.u64(r.retry_after.as_nanos().min(u128::from(u64::MAX)) as u64);
    e.str(&r.detail);
    e.buf
}

/// Decode a reject body.
pub fn decode_reject(body: &[u8]) -> Result<Reject, WireError> {
    let mut d = Dec::new(body);
    let code = d.u8()?;
    let code = ErrorCode::from_u8(code).ok_or_else(|| bad(format!("error code {code}")))?;
    let retry_after = Duration::from_nanos(d.u64()?);
    let detail = d.str()?;
    d.finish()?;
    Ok(Reject {
        code,
        retry_after,
        detail,
    })
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// What [`read_frame`] can report.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the socket cleanly between frames.
    Eof,
    /// An OS-level read/write failure (including read timeouts, which
    /// surface as `WouldBlock`/`TimedOut` io errors).
    Io(io::Error),
    /// The bytes arrived but did not parse.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> FrameError {
        FrameError::Wire(e)
    }
}

/// Serialize one frame to `w` (single `write_all`; the length prefix
/// makes the stream self-delimiting). A body over [`MAX_BODY_LEN`] is
/// refused with `InvalidInput` — sending it would either desync the
/// receiver (which must reject the oversized length) or, past 4 GiB,
/// silently wrap the `u32` prefix and corrupt the framing.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    if frame.body.len() > MAX_BODY_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame body of {} bytes exceeds the {} byte cap",
                frame.body.len(),
                MAX_BODY_LEN
            ),
        ));
    }
    let len = HEADER_AFTER_LEN + frame.body.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.req_id.to_le_bytes());
    out.extend_from_slice(&frame.body);
    w.write_all(&out)
}

fn check_frame_len(len: u32) -> Result<(), FrameError> {
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Wire(WireError::TooLarge(len)));
    }
    if len < HEADER_AFTER_LEN {
        return Err(FrameError::Wire(bad(format!(
            "frame length {len} too short"
        ))));
    }
    Ok(())
}

/// Parse the bytes after the length prefix (version, kind, request id,
/// body). `rest.len()` is the already-validated `len`, ≥ 10.
fn parse_frame_tail(rest: Vec<u8>) -> Result<Frame, FrameError> {
    let ver = rest[0];
    if ver != WIRE_VERSION {
        return Err(FrameError::Wire(WireError::BadVersion(ver)));
    }
    let kind = FrameKind::from_u8(rest[1])
        .ok_or_else(|| FrameError::Wire(bad(format!("frame kind {}", rest[1]))))?;
    let req_id = u64::from_le_bytes(rest[2..10].try_into().unwrap());
    Ok(Frame {
        kind,
        req_id,
        body: rest[10..].to_vec(),
    })
}

/// Read one frame from `r`. A clean EOF *before any byte* of a frame
/// is [`FrameError::Eof`]; EOF mid-frame is a truncation error.
///
/// Meant for blocking streams with no read timeout (the client side).
/// A stream whose read timeout doubles as a poll tick must use
/// [`read_frame_polled`] instead: here a timeout mid-frame would
/// surface as an error after `read_exact` has already consumed part of
/// the frame, and restarting would desynchronize the stream.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_buf = [0u8; 4];
    // First byte by hand so "peer hung up between frames" and "peer
    // died mid-frame" are distinguishable.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    len_buf[0] = first[0];
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf);
    check_frame_len(len)?;
    let mut rest = vec![0u8; len as usize];
    r.read_exact(&mut rest)?;
    parse_frame_tail(rest)
}

/// What [`read_frame_polled`] produced.
#[derive(Debug)]
pub enum Polled {
    /// A complete frame arrived.
    Frame(Frame),
    /// The read timed out before the first byte of a frame: the
    /// connection is idle and the stream is still synchronized. Poll
    /// whatever needs polling and call again.
    Idle,
}

/// Fill `buf` from `r`, retrying `WouldBlock`/`TimedOut` until
/// `deadline`. Unlike `read_exact`, a timeout does not lose the bytes
/// already consumed — the next attempt continues the same fill.
fn read_full(r: &mut impl Read, buf: &mut [u8], deadline: Instant) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(FrameError::Io(io::Error::other(
                        "mid-frame read stalled past the stall timeout",
                    )));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame from a stream whose read timeout doubles as an idle
/// poll tick (the server side sets a short socket timeout so blocked
/// readers can poll the stop flag).
///
/// A timeout *before any byte* of a frame returns [`Polled::Idle`] —
/// the caller polls and retries. Once the first byte has arrived the
/// frame is read to completion, retrying the same partial read across
/// timeouts (one TCP retransmit easily outlasts a 25 ms tick) for up
/// to `stall_timeout`; only a peer that stalls mid-frame longer than
/// that is an error. This is what keeps a slow-but-healthy network
/// link from desynchronizing the stream: a mid-frame timeout never
/// discards consumed bytes and never reparses mid-frame bytes as a new
/// length prefix.
///
/// The deadline is only enforced when the underlying reads time out,
/// so it relies on the stream's read timeout to wake up; `r` should be
/// a blocking stream with a short read timeout, not a nonblocking
/// socket (which would spin).
pub fn read_frame_polled(r: &mut impl Read, stall_timeout: Duration) -> Result<Polled, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(Polled::Idle)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let deadline = Instant::now() + stall_timeout;
    let mut len_buf = [0u8; 4];
    len_buf[0] = first[0];
    read_full(r, &mut len_buf[1..], deadline)?;
    let len = u32::from_le_bytes(len_buf);
    check_frame_len(len)?;
    let mut rest = vec![0u8; len as usize];
    read_full(r, &mut rest, deadline)?;
    parse_frame_tail(rest).map(Polled::Frame)
}

/// A bodyless frame of the given kind.
pub fn control_frame(kind: FrameKind, req_id: u64) -> Frame {
    Frame {
        kind,
        req_id,
        body: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_serve::{synth_trace, TraceConfig};

    #[test]
    fn spec_codec_round_trips_a_synth_trace() {
        // The synthetic trace covers every kernel kind and policy
        // selector the serving layer produces.
        for seed in [1u64, 7, 42, 0xdead_beef] {
            let trace = synth_trace(&TraceConfig {
                seed,
                jobs: 40,
                rate_hz: 1e6,
                ..TraceConfig::default()
            });
            for ev in trace {
                let body = encode_spec(&ev.spec);
                let back = decode_spec(&body).expect("round trip");
                // JobSpec has no PartialEq (Matrix payloads); compare
                // through the debug form, which prints every field.
                assert_eq!(format!("{:?}", back), format!("{:?}", ev.spec));
            }
        }
    }

    #[test]
    fn truncated_spec_never_panics() {
        let trace = synth_trace(&TraceConfig {
            seed: 3,
            jobs: 8,
            rate_hz: 1e6,
            ..TraceConfig::default()
        });
        for ev in trace {
            let body = encode_spec(&ev.spec);
            for cut in 0..body.len() {
                assert!(decode_spec(&body[..cut]).is_err(), "prefix {cut} decoded");
            }
        }
    }

    #[test]
    fn apfloat_codec_round_trips_and_rejects_bad_widths() {
        use fpfpga_serve::{ApOp, Job};
        let fmt = LimbFormat::F128;
        let one = fmt.pack_parts(false, fmt.bias() as u64, &[0, 0]);
        let two = fmt.pack_parts(false, fmt.bias() as u64 + 1, &[0, 0]);
        let spec = JobSpec::new(Job::uniform(
            Kernel::Apfloat {
                op: ApOp::Fma,
                fmt,
                a: vec![one.clone(), two.clone()],
                b: vec![two.clone(), one.clone()],
                c: vec![one.clone(), one.clone()],
            },
            FpFormat::try_new(8, 23).unwrap(),
            RoundMode::NearestEven,
        ));
        let body = encode_spec(&spec);
        let back = decode_spec(&body).expect("round trip");
        assert_eq!(format!("{back:?}"), format!("{spec:?}"));
        // Truncations never panic.
        for cut in 0..body.len() {
            assert!(decode_spec(&body[..cut]).is_err(), "prefix {cut} decoded");
        }
        // An impossible wide geometry is a typed refusal: frac_bits
        // past the 4096 cap fails LimbFormat::try_new in the decoder.
        let mut bad_fmt = body.clone();
        // kernel tag (1) + op tag (1) + exp u8 (1), then frac u32.
        bad_fmt[3..7].copy_from_slice(&5000u32.to_le_bytes());
        match decode_spec(&bad_fmt) {
            Err(WireError::Malformed(m)) => assert!(m.contains("wide format"), "{m}"),
            other => panic!("expected malformed wide format, got {other:?}"),
        }
        // Results round trip too, flags included.
        let r = JobResult::Apfloat(vec![
            (one, Flags::from_bits(0b00011)),
            (two, Flags::from_bits(0)),
        ]);
        assert_eq!(decode_result(&encode_result(&r)).unwrap(), r);
    }

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        let frame = Frame {
            kind: FrameKind::Request,
            req_id: 0x0123_4567_89ab_cdef,
            body: vec![1, 2, 3, 4, 5],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, frame);
        // And a second read sees clean EOF.
        let mut rest = &buf[buf.len()..];
        assert!(matches!(read_frame(&mut rest), Err(FrameError::Eof)));
    }

    #[test]
    fn oversized_length_is_refused_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Wire(WireError::TooLarge(_))) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let frame = control_frame(FrameKind::Ping, 9);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        buf[4] = WIRE_VERSION + 1;
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Wire(WireError::BadVersion(v))) => {
                assert_eq!(v, WIRE_VERSION + 1)
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn reject_codec_round_trips() {
        let r = Reject {
            code: ErrorCode::QuotaOps,
            retry_after: Duration::from_micros(1234),
            detail: "tenant a over ops budget".into(),
        };
        assert_eq!(decode_reject(&encode_reject(&r)).unwrap(), r);
    }

    #[test]
    fn oversized_body_is_refused_at_the_writer() {
        let frame = Frame {
            kind: FrameKind::Response,
            req_id: 1,
            body: vec![0u8; MAX_BODY_LEN as usize + 1],
        };
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing hit the wire");
        // Exactly at the cap is fine.
        let frame = Frame {
            body: vec![0u8; MAX_BODY_LEN as usize],
            ..frame
        };
        write_frame(&mut buf, &frame).unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), frame);
    }

    #[test]
    fn encoded_result_len_matches_the_encoder() {
        let fmt = FpFormat::try_new(8, 23).unwrap();
        let m = |r: usize, c: usize| Matrix::from_bits(fmt, r, c, vec![0u64; r * c]);
        let results = vec![
            JobResult::Eltwise(vec![(1, Flags::from_bits(0)), (2, Flags::from_bits(1))]),
            JobResult::Dot {
                value: 9,
                flags: Flags::from_bits(0),
                cycles: 3,
            },
            JobResult::MatMul {
                c: m(3, 5),
                stats: ArrayStats {
                    cycles: 1,
                    useful_macs: 2,
                    pad_macs: 3,
                    idle_cycles: 4,
                    bram_accesses: 5,
                },
            },
            JobResult::Mvm {
                y: vec![1, 2, 3],
                cycles: 7,
            },
            JobResult::Lu {
                lu: m(4, 4),
                cycles: 1,
                divs: 2,
                macs: 3,
                flags: Flags::from_bits(0),
            },
            JobResult::Fft {
                data: vec![Cplx { re: 1, im: 2 }; 8],
                cycles: 5,
            },
            JobResult::Apfloat(vec![
                (vec![1, 2], Flags::from_bits(0b1)),
                (vec![3, 4, 5, 6], Flags::from_bits(0)),
            ]),
            JobResult::Sweep {
                opt: ImplementationReport {
                    name: "adder-s3".into(),
                    stages: 3,
                    slices: 10,
                    luts: 20,
                    ffs: 30,
                    bmults: 0,
                    brams: 0,
                    clock_mhz: 123.4,
                    worst_stage_ns: 5.6,
                },
                depths: 4,
            },
        ];
        for r in &results {
            assert_eq!(
                encoded_result_len(r),
                encode_result(r).len() as u64,
                "predictor diverged for {r:?}"
            );
        }
    }

    /// A reader delivering one byte per call with a `WouldBlock` before
    /// each — the worst-case stall pattern for a framed stream.
    struct Stutter {
        data: Vec<u8>,
        pos: usize,
        hiccup: bool,
    }

    impl io::Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if self.hiccup {
                self.hiccup = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
            }
            self.hiccup = true;
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn polled_read_survives_mid_frame_stalls() {
        let frame = Frame {
            kind: FrameKind::Request,
            req_id: 42,
            body: vec![7; 33],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut r = Stutter {
            data: buf,
            pos: 0,
            hiccup: true, // stall even before the first byte
        };
        // The pre-frame stall is an idle tick; after that, every
        // mid-frame stall is retried and the frame arrives intact —
        // this is exactly where `read_frame` would desynchronize.
        let got = loop {
            match read_frame_polled(&mut r, Duration::from_secs(5)).unwrap() {
                Polled::Idle => continue,
                Polled::Frame(f) => break f,
            }
        };
        assert_eq!(got, frame);
        assert!(matches!(
            read_frame_polled(&mut r, Duration::from_secs(5)),
            Err(FrameError::Eof)
        ));
    }

    /// A reader that produces one byte, then stalls forever.
    struct Wedge {
        sent: bool,
    }

    impl io::Read for Wedge {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.sent {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "wedged"));
            }
            self.sent = true;
            buf[0] = 10;
            Ok(1)
        }
    }

    #[test]
    fn polled_read_gives_up_on_a_wedged_peer() {
        let mut r = Wedge { sent: false };
        match read_frame_polled(&mut r, Duration::from_millis(5)) {
            Err(FrameError::Io(e)) => {
                assert_ne!(e.kind(), io::ErrorKind::WouldBlock);
                assert_ne!(e.kind(), io::ErrorKind::TimedOut);
            }
            other => panic!("expected a stall error, got {other:?}"),
        }
    }
}
