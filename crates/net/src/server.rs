//! The TCP front-end: accept loop, per-connection reader/writer
//! threads, quota admission, connection limits, timeouts and
//! drain-on-shutdown.
//!
//! ## Threading model
//!
//! One listener thread (the caller of [`NetServer::run`]) accepts in a
//! nonblocking loop so it can poll the stop flag. Each connection gets
//! a *reader* thread (decodes frames, admits against quotas, submits
//! to the pool) and a *writer* thread (serializes replies). The two
//! are joined by an in-order channel: the reader enqueues either an
//! immediate frame (rejects, pongs) or a pending [`JobHandle`]; the
//! writer resolves handles in FIFO order, so every connection sees its
//! responses in submission order even though the pool executes out of
//! order. Backpressure is end-to-end — a slow reader of results slows
//! its own submissions, nobody else's.
//!
//! ## Shutdown
//!
//! A [`FrameKind::Shutdown`] admin frame (or [`NetServer::stop_handle`])
//! sets one flag. The accept loop stops taking connections; every
//! reader notices at its next read-timeout tick, flushes pending
//! responses, says [`FrameKind::Goodbye`] and exits; the pool then
//! drains ([`ServePool::shutdown`] + join) so every accepted job is
//! answered before the process exits. Nothing is dropped silently —
//! the same invariant the pool itself maintains.
//!
//! The wire shutdown is gated by [`ShutdownPolicy`] (loopback-only by
//! default): the data port is multi-tenant, and an ungated Shutdown
//! would let any one tenant drain the server for everyone. A peer the
//! policy excludes gets a typed [`ErrorCode::Denied`] reject and its
//! connection keeps serving.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use fpfpga_serve::{JobHandle, JobOutcome, MetricsSnapshot, ServeConfig, ServePool, SubmitError};

use crate::adaptive::{AdaptiveConfig, AdaptiveTuner};
use crate::quota::{QuotaBook, QuotaConfig, TenantUsage};
use crate::wire::{
    control_frame, decode_spec, encode_reject, encode_result, encoded_result_len,
    read_frame_polled, write_frame, ErrorCode, Frame, FrameError, FrameKind, Polled, Reject,
    WireError, MAX_BODY_LEN,
};

/// How often blocked readers wake to poll the stop flag. Applies only
/// *between* frames: once a frame's first byte has arrived,
/// [`read_frame_polled`] retries partial reads across timeouts, so a
/// TCP retransmit longer than one tick cannot desynchronize the
/// stream.
const POLL_TICK: Duration = Duration::from_millis(25);

/// How long a peer may stall *mid-frame* before the connection is
/// dropped. Generous enough for several TCP retransmission timeouts on
/// a congested real-network path; a peer that cannot finish a ≤ 16 MiB
/// frame in this long is gone or hostile.
const FRAME_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Retry hint sent with a connection-limit reject.
const CONN_RETRY_AFTER: Duration = Duration::from_millis(25);

/// Retry hint sent with a queue-full reject.
const QUEUE_RETRY_AFTER: Duration = Duration::from_millis(1);

/// Who may drain the server with a [`FrameKind::Shutdown`] frame. The
/// data port is multi-tenant: without gating, any client could deny
/// service to every other tenant with one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShutdownPolicy {
    /// Never honor a wire shutdown; only [`StopHandle`] stops the
    /// server. A Shutdown frame gets an [`ErrorCode::Denied`] reject
    /// and the connection keeps serving.
    Deny,
    /// Honor shutdown only from loopback peers (the default): local
    /// operators can drain, remote tenants cannot.
    #[default]
    LoopbackOnly,
    /// Honor shutdown from any peer — single-tenant/lab use only.
    Any,
}

/// Everything the front-end needs to serve.
#[derive(Clone)]
pub struct NetConfig {
    /// The pool configuration (workers, queues, policies, tech).
    pub serve: ServeConfig,
    /// Per-tenant rate limits.
    pub quotas: QuotaConfig,
    /// Maximum simultaneous connections; the next one is refused with
    /// [`ErrorCode::ConnLimit`] and a retry-after hint.
    pub max_connections: usize,
    /// Close a connection that sends no frame for this long.
    pub idle_timeout: Duration,
    /// Adaptive coalescing (None = leave the pool's window fixed).
    pub adaptive: Option<AdaptiveConfig>,
    /// Which peers may drain the server over the wire.
    pub shutdown_policy: ShutdownPolicy,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            serve: ServeConfig::default(),
            quotas: QuotaConfig::unlimited(),
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            adaptive: None,
            shutdown_policy: ShutdownPolicy::default(),
        }
    }
}

/// Lock-free transport counters (the pool keeps its own job metrics).
#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    refused_conns: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    rejects: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the transport counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the limit.
    pub refused_conns: u64,
    /// Frames read.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Request frames seen.
    pub requests: u64,
    /// Response frames sent (completed jobs).
    pub responses: u64,
    /// Reject frames sent.
    pub rejects: u64,
    /// Frames that failed to parse (stream then closed).
    pub protocol_errors: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused_conns: self.refused_conns.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// What [`NetServer::run`] returns after a clean drain.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Transport counters.
    pub net: NetStatsSnapshot,
    /// Final pool metrics (completions, latency histogram, …).
    pub pool: MetricsSnapshot,
    /// Per-tenant admitted/refused meters, sorted by tenant (meters
    /// evicted at the tracking cap are not listed).
    pub tenants: Vec<(String, TenantUsage)>,
    /// Tenant meters evicted at the
    /// [`QuotaConfig::max_tracked_tenants`] cap.
    pub evicted_tenants: u64,
}

/// Asks a running server to drain and exit (clonable, thread-safe).
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
}

impl StopHandle {
    /// Trigger the drain. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running server.
pub struct NetServer {
    listener: TcpListener,
    config: NetConfig,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port, then read
    /// [`NetServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(NetServer {
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that asks the accept loop to drain and exit.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: self.stop.clone(),
        }
    }

    /// Serve until stopped (by a [`FrameKind::Shutdown`] frame or the
    /// [`StopHandle`]), then drain the pool and report.
    pub fn run(self) -> ServerReport {
        let NetServer {
            listener,
            config,
            stop,
        } = self;
        let pool = Arc::new(ServePool::new(config.serve.clone()));
        let quotas = Arc::new(QuotaBook::new(config.quotas.clone()));
        let stats = Arc::new(NetStats::default());
        let active = Arc::new(AtomicUsize::new(0));
        let tuner = config
            .adaptive
            .map(|cfg| AdaptiveTuner::start(pool.clone(), cfg));

        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if active.load(Ordering::Relaxed) >= config.max_connections {
                        stats.refused_conns.fetch_add(1, Ordering::Relaxed);
                        refuse_connection(stream);
                        continue;
                    }
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    active.fetch_add(1, Ordering::Relaxed);
                    let ctx = ConnCtx {
                        pool: pool.clone(),
                        quotas: quotas.clone(),
                        stats: stats.clone(),
                        stop: stop.clone(),
                        active: active.clone(),
                        idle_timeout: config.idle_timeout,
                        shutdown_policy: config.shutdown_policy,
                    };
                    conns.push(
                        std::thread::Builder::new()
                            .name("fpunet-conn".into())
                            .spawn(move || ctx.serve(stream))
                            .expect("spawn connection thread"),
                    );
                    // Reap finished connection threads so a long-lived
                    // server doesn't accumulate handles.
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        drop(listener);
        for h in conns {
            let _ = h.join();
        }
        if let Some(t) = tuner {
            t.stop();
        }
        // Every connection thread is joined and the tuner is stopped,
        // so this is the last Arc: drain the pool properly (join waits
        // for queued jobs to resolve).
        pool.shutdown();
        let pool_metrics = match Arc::try_unwrap(pool) {
            Ok(p) => p.join(),
            Err(p) => p.metrics(),
        };
        ServerReport {
            net: stats.snapshot(),
            pool: pool_metrics,
            tenants: quotas.all_usage(),
            evicted_tenants: quotas.evicted(),
        }
    }
}

/// Tell a surplus connection to go away, with a retry hint.
fn refuse_connection(mut stream: TcpStream) {
    let reject = Frame {
        kind: FrameKind::Reject,
        req_id: 0,
        body: encode_reject(&Reject {
            code: ErrorCode::ConnLimit,
            retry_after: CONN_RETRY_AFTER,
            detail: "connection limit reached".into(),
        }),
    };
    let _ = write_frame(&mut stream, &reject);
    let _ = write_frame(&mut stream, &control_frame(FrameKind::Goodbye, 0));
    let _ = stream.flush();
}

/// What the reader hands the writer, in order.
enum Reply {
    /// Write this frame now.
    Now(Frame),
    /// Wait for the job, then write its response/reject.
    Job { req_id: u64, handle: JobHandle },
    /// Write the frame (if any) and close the connection.
    Close(Option<Frame>),
}

/// Everything one connection's reader needs.
struct ConnCtx {
    pool: Arc<ServePool>,
    quotas: Arc<QuotaBook>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    idle_timeout: Duration,
    shutdown_policy: ShutdownPolicy,
}

impl ConnCtx {
    fn serve(self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let allow_shutdown = match self.shutdown_policy {
            ShutdownPolicy::Deny => false,
            ShutdownPolicy::Any => true,
            ShutdownPolicy::LoopbackOnly => stream
                .peer_addr()
                .map(|a| a.ip().is_loopback())
                .unwrap_or(false),
        };
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                self.active.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        };
        let (tx, rx) = mpsc::channel::<Reply>();
        let wstats = self.stats.clone();
        let writer = std::thread::Builder::new()
            .name("fpunet-writer".into())
            .spawn(move || writer_loop(write_half, rx, wstats))
            .expect("spawn writer thread");

        self.reader_loop(stream, &tx, allow_shutdown);

        drop(tx); // writer drains pending replies, then exits
        let _ = writer.join();
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn reader_loop(&self, mut stream: TcpStream, tx: &mpsc::Sender<Reply>, allow_shutdown: bool) {
        let mut last_activity = Instant::now();
        loop {
            match read_frame_polled(&mut stream, FRAME_STALL_TIMEOUT) {
                Ok(Polled::Frame(frame)) => {
                    self.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                    last_activity = Instant::now();
                    match frame.kind {
                        FrameKind::Request => {
                            self.stats.requests.fetch_add(1, Ordering::Relaxed);
                            let reply = self.handle_request(frame);
                            if tx.send(reply).is_err() {
                                return; // writer died; nothing to do
                            }
                        }
                        FrameKind::Ping => {
                            let pong = control_frame(FrameKind::Pong, frame.req_id);
                            if tx.send(Reply::Now(pong)).is_err() {
                                return;
                            }
                        }
                        FrameKind::Shutdown if !allow_shutdown => {
                            // An unprivileged peer must not drain a
                            // shared server; refuse with a typed
                            // reject and keep serving (the frame was
                            // well-delimited, the stream is synced).
                            let reject = reject_frame(
                                frame.req_id,
                                ErrorCode::Denied,
                                Duration::ZERO,
                                "shutdown not permitted for this peer".into(),
                            );
                            if tx.send(Reply::Now(reject)).is_err() {
                                return;
                            }
                        }
                        FrameKind::Shutdown => {
                            // Admin drain: flag the whole server, then
                            // flush this connection's pending replies
                            // (FIFO) and say goodbye.
                            self.stop.store(true, Ordering::Relaxed);
                            let bye = control_frame(FrameKind::Goodbye, frame.req_id);
                            let _ = tx.send(Reply::Close(Some(bye)));
                            return;
                        }
                        FrameKind::Goodbye => {
                            let _ = tx.send(Reply::Close(None));
                            return;
                        }
                        // Server-only frames from a client are a
                        // protocol violation.
                        FrameKind::Response | FrameKind::Reject | FrameKind::Pong => {
                            self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let reject = reject_frame(
                                frame.req_id,
                                ErrorCode::Malformed,
                                Duration::ZERO,
                                format!("unexpected {:?} frame from client", frame.kind),
                            );
                            let _ = tx.send(Reply::Close(Some(reject)));
                            return;
                        }
                    }
                }
                // The tick between frames: poll the stop flag and the
                // idle clock, then wait again. (Mid-frame timeouts are
                // retried inside read_frame_polled and never get
                // here.)
                Ok(Polled::Idle) => {
                    if self.stop.load(Ordering::Relaxed) {
                        let bye = control_frame(FrameKind::Goodbye, 0);
                        let _ = tx.send(Reply::Close(Some(bye)));
                        return;
                    }
                    if last_activity.elapsed() >= self.idle_timeout {
                        let bye = control_frame(FrameKind::Goodbye, 0);
                        let _ = tx.send(Reply::Close(Some(bye)));
                        return;
                    }
                }
                Err(FrameError::Eof) => {
                    let _ = tx.send(Reply::Close(None));
                    return;
                }
                Err(FrameError::Io(_)) => {
                    let _ = tx.send(Reply::Close(None));
                    return;
                }
                Err(FrameError::Wire(we)) => {
                    // After a framing error the byte stream is
                    // unsynchronized; reject and close.
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let code = match we {
                        WireError::TooLarge(_) => ErrorCode::TooLarge,
                        WireError::BadVersion(_) => ErrorCode::BadVersion,
                        _ => ErrorCode::Malformed,
                    };
                    let reject = reject_frame(0, code, Duration::ZERO, we.to_string());
                    let _ = tx.send(Reply::Close(Some(reject)));
                    return;
                }
            }
        }
    }

    /// Decode, meter, submit. Any refusal becomes an immediate typed
    /// reject; acceptance becomes a pending handle.
    fn handle_request(&self, frame: Frame) -> Reply {
        let req_id = frame.req_id;
        let body_len = frame.body.len() as u64;
        let spec = match decode_spec(&frame.body) {
            Ok(s) => s,
            Err(e) => {
                // A per-request decode error leaves the stream
                // synchronized (the frame was well-delimited), so the
                // connection survives.
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Reply::Now(reject_frame(
                    req_id,
                    ErrorCode::Malformed,
                    Duration::ZERO,
                    e.to_string(),
                ));
            }
        };
        if let Err(denied) = self
            .quotas
            .admit(spec.tenant.as_deref(), body_len, Instant::now())
        {
            return Reply::Now(reject_frame(
                req_id,
                denied.code,
                denied.retry_after,
                format!(
                    "tenant {:?} over {} budget",
                    spec.tenant.as_deref().unwrap_or(""),
                    if denied.code == ErrorCode::QuotaOps {
                        "request-rate"
                    } else {
                        "byte-rate"
                    }
                ),
            ));
        }
        match self.pool.submit(spec) {
            Ok(handle) => Reply::Job { req_id, handle },
            Err(e) => {
                let (code, retry_after) = match &e {
                    SubmitError::Invalid(_) => (ErrorCode::Invalid, Duration::ZERO),
                    SubmitError::Rejected { .. } => (ErrorCode::Rejected, QUEUE_RETRY_AFTER),
                    SubmitError::Closed => (ErrorCode::Closed, Duration::ZERO),
                    SubmitError::Budget { .. } => (ErrorCode::Budget, Duration::ZERO),
                };
                Reply::Now(reject_frame(req_id, code, retry_after, e.to_string()))
            }
        }
    }
}

fn reject_frame(req_id: u64, code: ErrorCode, retry_after: Duration, detail: String) -> Frame {
    Frame {
        kind: FrameKind::Reject,
        req_id,
        body: encode_reject(&Reject {
            code,
            retry_after,
            detail,
        }),
    }
}

/// The frame a resolved job outcome becomes. A completed result too
/// big for one frame (a small matmul request can legally produce a
/// result matrix far over 16 MiB) is turned into a typed
/// [`ErrorCode::TooLarge`] reject *before* encoding — never an
/// unsendable buffer, a desynced client, or (past 4 GiB) a wrapped
/// length prefix.
fn outcome_frame(req_id: u64, outcome: JobOutcome, stats: &NetStats) -> Frame {
    match outcome {
        JobOutcome::Completed(result) => {
            if encoded_result_len(&result) > u64::from(MAX_BODY_LEN) {
                return reject_frame(
                    req_id,
                    ErrorCode::TooLarge,
                    Duration::ZERO,
                    format!(
                        "result of {} bytes exceeds the {} byte frame cap; shrink the request",
                        encoded_result_len(&result),
                        MAX_BODY_LEN
                    ),
                );
            }
            stats.responses.fetch_add(1, Ordering::Relaxed);
            Frame {
                kind: FrameKind::Response,
                req_id,
                body: encode_result(&result),
            }
        }
        JobOutcome::TimedOut => reject_frame(
            req_id,
            ErrorCode::TimedOut,
            Duration::ZERO,
            "deadline expired before execution".into(),
        ),
        JobOutcome::Shed => reject_frame(
            req_id,
            ErrorCode::Shed,
            QUEUE_RETRY_AFTER,
            "displaced by higher-priority work".into(),
        ),
        JobOutcome::Cancelled => reject_frame(
            req_id,
            ErrorCode::Cancelled,
            Duration::ZERO,
            "cancelled before execution".into(),
        ),
        JobOutcome::Failed(detail) => {
            reject_frame(req_id, ErrorCode::Failed, Duration::ZERO, detail)
        }
    }
}

/// Drain the reply channel in order, resolving job handles as they
/// come due. FIFO delivery is the per-connection ordering guarantee.
fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Reply>, stats: Arc<NetStats>) {
    for reply in rx {
        let (frame, close) = match reply {
            Reply::Now(f) => (Some(f), false),
            Reply::Job { req_id, handle } => {
                (Some(outcome_frame(req_id, handle.wait(), &stats)), false)
            }
            Reply::Close(f) => (f, true),
        };
        if let Some(f) = &frame {
            if f.kind == FrameKind::Reject {
                stats.rejects.fetch_add(1, Ordering::Relaxed);
            }
            if write_frame(&mut stream, f).is_err() {
                return; // peer gone; pending handles resolve unobserved
            }
            stats.frames_out.fetch_add(1, Ordering::Relaxed);
        }
        if close {
            let _ = stream.flush();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_reject;
    use fpfpga_serve::JobResult;

    #[test]
    fn oversized_result_becomes_typed_toolarge_reject() {
        // A result bigger than one frame can carry (here ~24 MiB of
        // MVM output) must come back as a typed reject, not desync the
        // client with an oversized length prefix.
        let stats = NetStats::default();
        let big = JobOutcome::Completed(JobResult::Mvm {
            y: vec![0u64; 3 << 20],
            cycles: 1,
        });
        let frame = outcome_frame(7, big, &stats);
        assert_eq!(frame.kind, FrameKind::Reject);
        assert_eq!(frame.req_id, 7);
        let reject = decode_reject(&frame.body).expect("typed reject body");
        assert_eq!(reject.code, ErrorCode::TooLarge);
        assert_eq!(stats.responses.load(Ordering::Relaxed), 0);
        // The reject itself fits a frame.
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("reject is sendable");
    }

    #[test]
    fn normal_result_still_encodes_as_response() {
        let stats = NetStats::default();
        let ok = JobOutcome::Completed(JobResult::Mvm {
            y: vec![1, 2, 3],
            cycles: 9,
        });
        let frame = outcome_frame(3, ok, &stats);
        assert_eq!(frame.kind, FrameKind::Response);
        assert_eq!(stats.responses.load(Ordering::Relaxed), 1);
    }
}
