//! Per-tenant token-bucket quotas and byte/op metering.
//!
//! The serving pool already has *global* overload protection (bounded
//! queues, priority shedding). Quotas add the tenancy dimension: one
//! noisy tenant must not starve the rest. Every request is charged
//! against two buckets — one counting requests per second, one
//! counting payload bytes per second — keyed by the spec's `tenant`
//! field (anonymous requests share the `""` tenant). A refusal carries
//! a `retry_after` hint computed from the bucket's actual deficit, so
//! well-behaved clients back off exactly as long as needed.
//!
//! All bucket arithmetic takes an explicit `now: Instant`, which keeps
//! the refill math deterministic under test (no hidden clock reads).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::wire::ErrorCode;

/// A classic token bucket: `rate` tokens per second, capacity `burst`.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/s, holding at most
    /// `burst`. Rates and bursts are clamped to be positive.
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let rate = if rate > 0.0 { rate } else { f64::MIN_POSITIVE };
        let burst = if burst > 0.0 { burst } else { 1.0 };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
    }

    /// Take `amount` tokens at `now`, or report how long until the
    /// bucket will hold them. An `amount` larger than `burst` can
    /// never succeed; the hint then covers the full deficit at the
    /// refill rate (the caller should treat it as "shrink the
    /// request").
    pub fn try_take(&mut self, amount: f64, now: Instant) -> Result<(), Duration> {
        self.refill(now);
        if self.tokens >= amount {
            self.tokens -= amount;
            return Ok(());
        }
        let deficit = amount - self.tokens;
        Err(Duration::from_secs_f64(deficit / self.rate))
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Per-tenant rate limits. `None` means unlimited on that axis.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuotaLimits {
    /// Requests per second (burst = one second's worth, min 1).
    pub ops_per_s: Option<f64>,
    /// Request payload bytes per second (burst = one second's worth).
    pub bytes_per_s: Option<f64>,
}

impl QuotaLimits {
    /// No limits at all.
    pub const UNLIMITED: QuotaLimits = QuotaLimits {
        ops_per_s: None,
        bytes_per_s: None,
    };
}

/// The quota configuration: a default for unnamed tenants plus
/// per-tenant overrides.
#[derive(Clone, Debug)]
pub struct QuotaConfig {
    /// Limits applied to tenants without an override.
    pub default: QuotaLimits,
    /// Named overrides.
    pub tenants: HashMap<String, QuotaLimits>,
    /// Ceiling on the number of tenants metered at once. Tenant names
    /// are attacker-controlled wire data, so the meter map must not
    /// grow without bound: past the cap, admitting a new tenant evicts
    /// the longest-idle meter *without a named override* (named
    /// tenants are config-bounded and never evicted). An evicted
    /// tenant that returns simply starts a fresh bucket — at worst it
    /// regains one burst, it never gains standing quota.
    pub max_tracked_tenants: usize,
}

impl Default for QuotaConfig {
    fn default() -> QuotaConfig {
        QuotaConfig {
            default: QuotaLimits::default(),
            tenants: HashMap::new(),
            max_tracked_tenants: 1024,
        }
    }
}

impl QuotaConfig {
    /// Unlimited everywhere — the protocol layer's no-op default.
    pub fn unlimited() -> QuotaConfig {
        QuotaConfig::default()
    }

    /// Set the default limits.
    pub fn with_default(mut self, limits: QuotaLimits) -> QuotaConfig {
        self.default = limits;
        self
    }

    /// Override one tenant's limits.
    pub fn with_tenant(mut self, tenant: impl Into<String>, limits: QuotaLimits) -> QuotaConfig {
        self.tenants.insert(tenant.into(), limits);
        self
    }

    /// Bound the live meter map (see
    /// [`QuotaConfig::max_tracked_tenants`]).
    pub fn with_max_tracked_tenants(mut self, cap: usize) -> QuotaConfig {
        self.max_tracked_tenants = cap;
        self
    }

    fn limits_for(&self, tenant: &str) -> QuotaLimits {
        self.tenants.get(tenant).copied().unwrap_or(self.default)
    }
}

/// One tenant's live buckets plus lifetime meters.
struct TenantMeter {
    ops: Option<TokenBucket>,
    bytes: Option<TokenBucket>,
    ops_total: u64,
    bytes_total: u64,
    rejected_ops: u64,
    rejected_bytes: u64,
    /// Last admission attempt — the eviction ordering.
    last_seen: Instant,
}

/// A typed quota refusal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuotaDenied {
    /// [`ErrorCode::QuotaOps`] or [`ErrorCode::QuotaBytes`].
    pub code: ErrorCode,
    /// How long until the bucket admits this request.
    pub retry_after: Duration,
}

/// Lifetime usage totals for one tenant, as reported by
/// [`QuotaBook::usage`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Requests admitted.
    pub ops: u64,
    /// Payload bytes admitted.
    pub bytes: u64,
    /// Requests refused over the ops budget.
    pub rejected_ops: u64,
    /// Requests refused over the byte budget.
    pub rejected_bytes: u64,
}

/// The meter map plus its eviction counter, under one lock.
struct BookState {
    tenants: HashMap<String, TenantMeter>,
    evicted: u64,
}

/// The server's live quota state: config plus per-tenant buckets and
/// meters, safe to share across connection threads. The meter map is
/// bounded by [`QuotaConfig::max_tracked_tenants`]: a client cycling
/// unique tenant names recycles meter slots instead of growing the map
/// (and the server's memory) without bound.
pub struct QuotaBook {
    config: QuotaConfig,
    state: Mutex<BookState>,
}

impl QuotaBook {
    /// A book enforcing `config`.
    pub fn new(config: QuotaConfig) -> QuotaBook {
        QuotaBook {
            config,
            state: Mutex::new(BookState {
                tenants: HashMap::new(),
                evicted: 0,
            }),
        }
    }

    /// Charge one request of `bytes` payload to `tenant` at `now`.
    /// Admission is all-or-nothing: a request refused on the byte axis
    /// does not consume its ops token.
    pub fn admit(&self, tenant: Option<&str>, bytes: u64, now: Instant) -> Result<(), QuotaDenied> {
        let key = tenant.unwrap_or("");
        let limits = self.config.limits_for(key);
        let mut state = self.state.lock().expect("quota book poisoned");
        let state = &mut *state;
        if !state.tenants.contains_key(key) {
            // Named overrides always get a slot (their count is fixed
            // by the config); unknown names compete for the rest and
            // displace the longest-idle unconfigured meter at the cap.
            let cap = self.config.max_tracked_tenants.max(1);
            if state.tenants.len() >= cap && !self.config.tenants.contains_key(key) {
                let victim = state
                    .tenants
                    .iter()
                    .filter(|(k, _)| !self.config.tenants.contains_key(k.as_str()))
                    .min_by_key(|(_, m)| m.last_seen)
                    .map(|(k, _)| k.clone());
                // No victim means every slot is a named override (the
                // config alone overflows the cap); meter the newcomer
                // anyway rather than lose enforcement for it.
                if let Some(v) = victim {
                    state.tenants.remove(&v);
                    state.evicted += 1;
                }
            }
            state.tenants.insert(
                key.to_string(),
                TenantMeter {
                    ops: limits
                        .ops_per_s
                        .map(|r| TokenBucket::new(r, r.max(1.0), now)),
                    bytes: limits
                        .bytes_per_s
                        .map(|r| TokenBucket::new(r, r.max(1.0), now)),
                    ops_total: 0,
                    bytes_total: 0,
                    rejected_ops: 0,
                    rejected_bytes: 0,
                    last_seen: now,
                },
            );
        }
        let meter = state.tenants.get_mut(key).expect("meter just ensured");
        meter.last_seen = now;
        // Probe the ops bucket first but only commit both at once.
        if let Some(ops) = &mut meter.ops {
            ops.refill(now);
            if ops.tokens < 1.0 {
                let wait = Duration::from_secs_f64((1.0 - ops.tokens) / ops.rate);
                meter.rejected_ops += 1;
                return Err(QuotaDenied {
                    code: ErrorCode::QuotaOps,
                    retry_after: wait,
                });
            }
        }
        if let Some(bk) = &mut meter.bytes {
            if let Err(wait) = bk.try_take(bytes as f64, now) {
                meter.rejected_bytes += 1;
                return Err(QuotaDenied {
                    code: ErrorCode::QuotaBytes,
                    retry_after: wait,
                });
            }
        }
        if let Some(ops) = &mut meter.ops {
            ops.tokens -= 1.0;
        }
        meter.ops_total += 1;
        meter.bytes_total += bytes;
        Ok(())
    }

    /// Lifetime usage for `tenant` (anonymous = `None`). A tenant
    /// whose meter was evicted at the cap reads as zero until it is
    /// seen again.
    pub fn usage(&self, tenant: Option<&str>) -> TenantUsage {
        let key = tenant.unwrap_or("");
        let state = self.state.lock().expect("quota book poisoned");
        state
            .tenants
            .get(key)
            .map(|m| TenantUsage {
                ops: m.ops_total,
                bytes: m.bytes_total,
                rejected_ops: m.rejected_ops,
                rejected_bytes: m.rejected_bytes,
            })
            .unwrap_or_default()
    }

    /// How many tenant meters were evicted at the
    /// [`QuotaConfig::max_tracked_tenants`] cap.
    pub fn evicted(&self) -> u64 {
        self.state.lock().expect("quota book poisoned").evicted
    }

    /// Usage for every currently tracked tenant, sorted by tenant
    /// name (evicted meters are gone; see [`QuotaBook::evicted`]).
    pub fn all_usage(&self) -> Vec<(String, TenantUsage)> {
        let state = self.state.lock().expect("quota book poisoned");
        let mut v: Vec<(String, TenantUsage)> = state
            .tenants
            .iter()
            .map(|(k, m)| {
                (
                    k.clone(),
                    TenantUsage {
                        ops: m.ops_total,
                        bytes: m.bytes_total,
                        rejected_ops: m.rejected_ops,
                        rejected_bytes: m.rejected_bytes,
                    },
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_meters() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 5.0, t0);
        for _ in 0..5 {
            assert!(b.try_take(1.0, t0).is_ok());
        }
        let wait = b.try_take(1.0, t0).unwrap_err();
        // Empty bucket at 10 tokens/s: one token is 100 ms away.
        assert!((wait.as_secs_f64() - 0.1).abs() < 1e-9, "{wait:?}");
        // After 250 ms, two tokens (and a half) have refilled.
        let t1 = t0 + Duration::from_millis(250);
        assert!(b.try_take(2.0, t1).is_ok());
        assert!(b.try_take(1.0, t1).is_err());
    }

    #[test]
    fn over_budget_tenant_is_rejected_others_unaffected() {
        let t0 = Instant::now();
        let cfg = QuotaConfig::unlimited().with_tenant(
            "noisy",
            QuotaLimits {
                ops_per_s: Some(2.0),
                bytes_per_s: None,
            },
        );
        let book = QuotaBook::new(cfg);
        assert!(book.admit(Some("noisy"), 10, t0).is_ok());
        assert!(book.admit(Some("noisy"), 10, t0).is_ok());
        let denied = book.admit(Some("noisy"), 10, t0).unwrap_err();
        assert_eq!(denied.code, ErrorCode::QuotaOps);
        assert!(denied.retry_after > Duration::ZERO);
        // The quiet tenant and the anonymous tenant sail through.
        for _ in 0..100 {
            assert!(book.admit(Some("quiet"), 10, t0).is_ok());
            assert!(book.admit(None, 10, t0).is_ok());
        }
        let u = book.usage(Some("noisy"));
        assert_eq!(u.ops, 2);
        assert_eq!(u.rejected_ops, 1);
    }

    #[test]
    fn byte_quota_rejects_without_charging_ops() {
        let t0 = Instant::now();
        let cfg = QuotaConfig::unlimited().with_default(QuotaLimits {
            ops_per_s: Some(100.0),
            bytes_per_s: Some(1000.0),
        });
        let book = QuotaBook::new(cfg);
        assert!(book.admit(None, 900, t0).is_ok());
        let denied = book.admit(None, 900, t0).unwrap_err();
        assert_eq!(denied.code, ErrorCode::QuotaBytes);
        // The ops token was not consumed by the refused request: a
        // small request still fits.
        assert!(book.admit(None, 50, t0).is_ok());
        let u = book.usage(None);
        assert_eq!(u.ops, 2);
        assert_eq!(u.bytes, 950);
        assert_eq!(u.rejected_bytes, 1);
    }

    #[test]
    fn tenant_map_is_bounded_under_name_cycling() {
        let t0 = Instant::now();
        let cfg = QuotaConfig::unlimited()
            .with_default(QuotaLimits {
                ops_per_s: Some(100.0),
                bytes_per_s: None,
            })
            .with_max_tracked_tenants(4);
        let book = QuotaBook::new(cfg);
        // An adversary cycling unique tenant names: the map must stay
        // at the cap, not grow by one meter per name.
        for i in 0..100 {
            let name = format!("attacker-{i}");
            let now = t0 + Duration::from_millis(i);
            assert!(book.admit(Some(&name), 1, now).is_ok());
        }
        assert!(book.all_usage().len() <= 4, "map grew past the cap");
        assert!(book.evicted() >= 96, "idle meters were recycled");
    }

    #[test]
    fn configured_tenants_survive_name_cycling() {
        let t0 = Instant::now();
        let cfg = QuotaConfig::unlimited()
            .with_tenant(
                "vip",
                QuotaLimits {
                    ops_per_s: Some(2.0),
                    bytes_per_s: None,
                },
            )
            .with_max_tracked_tenants(3);
        let book = QuotaBook::new(cfg);
        assert!(book.admit(Some("vip"), 1, t0).is_ok());
        assert!(book.admit(Some("vip"), 1, t0).is_ok());
        // 50 unique names arrive later; "vip" is the oldest meter but
        // has a named override, so it is never the eviction victim —
        // its exhausted bucket (and its lifetime meters) survive.
        for i in 0..50 {
            let name = format!("noise-{i}");
            let now = t0 + Duration::from_millis(i + 1);
            assert!(book.admit(Some(&name), 1, now).is_ok());
        }
        let denied = book
            .admit(Some("vip"), 1, t0 + Duration::from_millis(60))
            .unwrap_err();
        assert_eq!(denied.code, ErrorCode::QuotaOps, "bucket state kept");
        let u = book.usage(Some("vip"));
        assert_eq!(u.ops, 2);
        assert_eq!(u.rejected_ops, 1);
    }

    #[test]
    fn retry_after_is_honest() {
        let t0 = Instant::now();
        let cfg = QuotaConfig::unlimited().with_default(QuotaLimits {
            ops_per_s: Some(4.0),
            bytes_per_s: None,
        });
        let book = QuotaBook::new(cfg);
        for _ in 0..4 {
            assert!(book.admit(None, 0, t0).is_ok());
        }
        let denied = book.admit(None, 0, t0).unwrap_err();
        // Waiting exactly the hint (plus epsilon) must succeed.
        let t1 = t0 + denied.retry_after + Duration::from_nanos(1000);
        assert!(book.admit(None, 0, t1).is_ok());
    }
}
