//! The floating-point adder/subtractor core (Figure 1a of the paper).
//!
//! Three algorithmic stages, decomposed into the subunits the paper
//! names, each with its behaviour and its fabric structure:
//!
//! 1. **Denormalization / pre-shifting** — denormalizer (hidden-bit
//!    insertion via an exponent-zero comparator), swapper (exponent +
//!    mantissa comparators and a mux), alignment shifter;
//! 2. **Fixed-point add/subtract** — mantissa adder/subtractor
//!    (library-core style, pipelineable), pre-normalizer (1-bit shift on
//!    carry-out plus exponent increment);
//! 3. **Normalize / round** — priority encoder (leading-one detect, with
//!    the tool-forced split synthesis for wide operands), normalization
//!    shifter with exponent subtractor, and the rounding module's
//!    constant adders.
//!
//! Exceptions are detected in stage 1 and carried forward; the output
//! stage muxes the special result over the arithmetic one — "at every
//! stage exceptions are detected and carried forward into the next
//! stage".

use crate::config::CoreConfig;
use crate::signals::Signals;
use crate::sim::{DelayOp, PipelinedUnit};
use crate::subunit::{Datapath, Subunit};
use fpfpga_fabric::netlist::{Component, Netlist};
use fpfpga_fabric::primitives::{log2_ceil, Primitive};
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::ops::add::{
    align_mantissa, leading_one_pos, normalize_left, prenormalize, swap_operands, GRS_BITS,
};
use fpfpga_softfp::round::{pack_with_range_check, round_sig};
use fpfpga_softfp::{Class, Flags, FpFormat, RoundMode, Unpacked};

/// Stage-1 denormalizer: unpack both operands (flush denormals, make the
/// hidden bit explicit) and apply the subtract control to B's sign.
pub struct Denormalize;

impl Subunit for Denormalize {
    fn name(&self) -> &'static str {
        "denormalizer"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        s.a = Unpacked::from_bits(fmt, s.a_bits);
        s.b = Unpacked::from_bits(fmt, s.b_bits);
        if s.subtract {
            s.b.sign = !s.b.sign;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        // Exponent-zero comparators, one per operand (B's in parallel),
        // plus the hidden-bit insertion glue.
        let cmp = Primitive::Comparator {
            bits: fmt.exp_bits(),
        };
        vec![
            Component::from_primitive("denorm cmp A", &cmp, tech),
            Component::parallel("denorm cmp B", &cmp, tech),
        ]
    }
}

/// Stage-1 exception logic: resolve the ∞/0 operand combinations and
/// forward the result on the special bus. Mirrors `fpfpga-softfp`'s
/// special-case dispatch exactly.
pub struct AddExceptionDetect;

impl Subunit for AddExceptionDetect {
    fn name(&self) -> &'static str {
        "exception detect"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let (a, b) = (s.a, s.b);
        s.special = match (a.class, b.class) {
            (Class::Inf, Class::Inf) => {
                if a.sign == b.sign {
                    Some((Unpacked::inf(a.sign).to_bits(fmt), Flags::NONE))
                } else {
                    Some((Unpacked::inf(false).to_bits(fmt), Flags::invalid()))
                }
            }
            (Class::Inf, _) => Some((Unpacked::inf(a.sign).to_bits(fmt), Flags::NONE)),
            (_, Class::Inf) => Some((Unpacked::inf(b.sign).to_bits(fmt), Flags::NONE)),
            (Class::Zero, Class::Zero) => {
                Some((Unpacked::zero(a.sign && b.sign).to_bits(fmt), Flags::NONE))
            }
            (Class::Zero, Class::Normal) => Some((b.to_bits(fmt), Flags::NONE)),
            (Class::Normal, Class::Zero) => Some((a.to_bits(fmt), Flags::NONE)),
            (Class::Normal, Class::Normal) => None,
        };
    }

    fn components(&self, _fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::parallel(
            "exception logic",
            &Primitive::SignLogic,
            tech,
        )]
    }
}

/// Stage-1 swapper: order operands by magnitude (exponent comparator,
/// mantissa comparator for the tie, swap mux) and compute the alignment
/// shift with an exponent subtractor.
pub struct SwapUnit;

impl Subunit for SwapUnit {
    fn name(&self) -> &'static str {
        "swapper"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let (hi, lo) = swap_operands(s.a, s.b);
        s.hi = hi;
        s.lo = lo;
        s.align_shift = (hi.exp - lo.exp) as u32;
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            // The mantissa comparator dominates ("the mantissa comparator
            // for double precision can achieve 220 MHz and requires
            // pipelining for higher frequencies"); the exponent
            // comparator and subtractor run in parallel with it.
            Component::from_primitive(
                "mantissa comparator",
                &Primitive::Comparator {
                    bits: fmt.sig_bits(),
                },
                tech,
            ),
            Component::parallel(
                "exponent comparator",
                &Primitive::Comparator {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
            Component::parallel(
                "exponent subtractor",
                &Primitive::FixedAdder {
                    bits: fmt.exp_bits(),
                    carry_ns_per_bit: tech.t_carry_per_bit_ns,
                },
                tech,
            ),
            Component::from_primitive(
                "swap mux",
                &Primitive::Mux2 {
                    bits: 2 * fmt.sig_bits(),
                },
                tech,
            ),
        ]
    }
}

/// Stage-1 alignment shifter: shift the smaller significand right by the
/// exponent difference, compress the tail into a jammed sticky bit.
pub struct AlignShift;

impl Subunit for AlignShift {
    fn name(&self) -> &'static str {
        "align shifter"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let (aligned, sticky) = align_mantissa(s.lo.sig, s.align_shift);
        s.lo_aligned = aligned | sticky as u64;
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        let bits = fmt.sig_bits() + GRS_BITS;
        vec![Component::from_primitive(
            "align shifter",
            &Primitive::BarrelShifter {
                bits,
                levels: log2_ceil(bits),
            },
            tech,
        )]
    }
}

/// Stage 2: the fixed-point mantissa adder/subtractor.
pub struct MantissaAddSub;

impl Subunit for MantissaAddSub {
    fn name(&self) -> &'static str {
        "mantissa adder/subtractor"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if s.special.is_some() {
            // The mantissa path computes don't-care values when the
            // stage-1 exception logic has already resolved the result;
            // the swapper's ordering invariant does not hold for
            // special operands, so skip rather than wrap.
            return;
        }
        let hi_sig = (s.hi.sig << GRS_BITS) as u128;
        let effective_sub = s.a.sign != s.b.sign;
        if effective_sub {
            let d = hi_sig - s.lo_aligned as u128;
            s.mag = d;
            s.is_zero = d == 0;
        } else {
            s.mag = hi_sig + s.lo_aligned as u128;
            s.is_zero = false;
        }
        s.sign = s.hi.sign;
        s.exp = s.hi.exp;
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::from_primitive(
            "mantissa adder",
            &Primitive::FixedAdder {
                bits: fmt.sig_bits() + GRS_BITS,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        )]
    }
}

/// Stage 2b: the pre-normalizer — on a carry-out, shift the sum right by
/// one (sticky-jamming) and increment the exponent.
pub struct PreNormalize;

impl Subunit for PreNormalize {
    fn name(&self) -> &'static str {
        "pre-normalizer"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if !s.is_zero && s.special.is_none() {
            let (mag, exp) = prenormalize(fmt, s.mag, s.exp);
            s.mag = mag;
            s.exp = exp;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "carry shift mux",
                &Primitive::Mux2 {
                    bits: fmt.sig_bits() + GRS_BITS,
                },
                tech,
            ),
            Component::parallel(
                "exponent +1",
                &Primitive::ConstAdder {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// Stage 3a: the priority encoder (leading-one detector) — "a critical
/// subunit for large bitwidths \[whose\] synthesis by the tool has to be
/// forced".
pub struct LeadingOneDetect {
    /// Model the tool-forced split synthesis (two half-width encoders
    /// plus a small adder and muxes).
    pub forced: bool,
}

impl Subunit for LeadingOneDetect {
    fn name(&self) -> &'static str {
        "priority encoder"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if !s.is_zero && s.special.is_none() {
            s.msb_pos = leading_one_pos(s.mag);
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::from_primitive(
            "priority encoder",
            &Primitive::PriorityEncoder {
                bits: fmt.sig_bits() + GRS_BITS,
                forced: self.forced,
            },
            tech,
        )]
    }
}

/// Stage 3b: the normalization shifter with its exponent subtractor.
pub struct NormalizeShift;

impl Subunit for NormalizeShift {
    fn name(&self) -> &'static str {
        "normalization shifter"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if !s.is_zero && s.special.is_none() {
            let (mag, exp) = normalize_left(fmt, s.mag, s.exp, s.msb_pos);
            s.mag = mag;
            s.exp = exp;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        let bits = fmt.sig_bits() + GRS_BITS;
        vec![
            Component::from_primitive(
                "normalize shifter",
                &Primitive::BarrelShifter {
                    bits,
                    levels: log2_ceil(bits),
                },
                tech,
            ),
            Component::parallel(
                "exponent subtractor",
                &Primitive::FixedAdder {
                    bits: fmt.exp_bits(),
                    carry_ns_per_bit: tech.t_carry_per_bit_ns,
                },
                tech,
            ),
        ]
    }
}

/// Stage 3c: the rounding module — constant adders for mantissa and
/// exponent.
pub struct RoundUnit;

impl Subunit for RoundUnit {
    fn name(&self) -> &'static str {
        "rounding"
    }

    fn eval(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals) {
        if !s.is_zero && s.special.is_none() {
            let rounded = round_sig(fmt, s.mag, GRS_BITS, mode);
            s.mag = rounded.sig as u128;
            s.exp += rounded.exp_carry as i32;
            if rounded.inexact {
                s.flags |= Flags::inexact();
            }
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "mantissa round adder",
                &Primitive::ConstAdder {
                    bits: fmt.sig_bits(),
                },
                tech,
            ),
            Component::parallel(
                "exponent round adder",
                &Primitive::ConstAdder {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// Output stage: range check, pack, and the mux selecting the special
/// result over the arithmetic one; exception flags are merged here.
pub struct PackUnit;

impl Subunit for PackUnit {
    fn name(&self) -> &'static str {
        "pack / output mux"
    }

    fn eval(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals) {
        if let Some((bits, flags)) = s.special {
            s.result = bits;
            s.flags = flags;
        } else if s.is_zero {
            s.result = Unpacked::zero(false).to_bits(fmt);
            s.flags = Flags::NONE;
        } else {
            let inexact = s.flags.inexact;
            let (bits, flags) =
                pack_with_range_check(fmt, s.sign, s.exp, s.mag as u64, mode, inexact);
            s.result = bits;
            s.flags = flags;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "output mux",
                &Primitive::Mux2 {
                    bits: fmt.total_bits(),
                },
                tech,
            ),
            Component::parallel(
                "range check",
                &Primitive::Comparator {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// A floating-point adder/subtractor design for one format.
#[derive(Clone, Copy, Debug)]
pub struct AdderDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode of the built simulators.
    pub round: RoundMode,
    /// Forced priority-encoder synthesis (paper default: true).
    pub force_priority_encoder: bool,
}

impl AdderDesign {
    /// A design with the paper's defaults.
    pub fn new(format: FpFormat) -> AdderDesign {
        AdderDesign {
            format,
            round: RoundMode::NearestEven,
            force_priority_encoder: true,
        }
    }

    /// From a full core configuration.
    pub fn from_config(cfg: &CoreConfig) -> AdderDesign {
        AdderDesign {
            format: cfg.format,
            round: cfg.round,
            force_priority_encoder: cfg.force_priority_encoder,
        }
    }

    /// The behavioural datapath (subunits in dataflow order).
    pub fn datapath(&self) -> Datapath {
        Datapath {
            subunits: vec![
                Box::new(Denormalize),
                Box::new(AddExceptionDetect),
                Box::new(SwapUnit),
                Box::new(AlignShift),
                Box::new(MantissaAddSub),
                Box::new(PreNormalize),
                Box::new(LeadingOneDetect {
                    forced: self.force_priority_encoder,
                }),
                Box::new(NormalizeShift),
                Box::new(RoundUnit),
                Box::new(PackUnit),
            ],
        }
    }

    /// The structural netlist for the fabric model.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let mut n = Netlist::new(
            &format!("fp{} adder", self.format.total_bits()),
            self.format.total_bits(),
            // side band: sign + exponent-in-flight + flags + DONE
            self.format.exp_bits() + 6,
        );
        for u in self.datapath().subunits {
            n.components.extend(u.components(self.format, tech));
        }
        n
    }

    /// Sweep pipeline depth (the paper's Figure 2a data for this format).
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        let n = self.netlist(tech);
        timing::sweep_stages(&n, PipelineStrategy::IterativeRefinement, opts, tech)
    }

    /// Build the cycle-accurate simulator for a pipeline depth.
    pub fn simulator(&self, stages: u32) -> PipelinedUnit {
        let config = CoreConfig::builder(self.format)
            .round(self.round)
            .stages(stages)
            .strategy(PipelineStrategy::Balanced)
            .build();
        PipelinedUnit::new(&config, self.datapath(), self.netlist(&Tech::virtex2pro()))
            .with_fast_op(DelayOp::Add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_matches_softfp() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let dp = d.datapath();
        let cases: &[(f32, f32)] = &[
            (1.0, 2.0),
            (1.5, -0.25),
            (-3.5, 3.5),
            (f32::MAX, f32::MAX),
            (1e-38, -1e-38),
            (0.0, -0.0),
            (f32::INFINITY, 1.0),
            (f32::INFINITY, f32::NEG_INFINITY),
        ];
        for &(x, y) in cases {
            let mut s = Signals::inject(x.to_bits() as u64, y.to_bits() as u64, false);
            dp.eval_all(FpFormat::SINGLE, RoundMode::NearestEven, &mut s);
            let (want, wflags) = fpfpga_softfp::add_bits(
                FpFormat::SINGLE,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            assert_eq!(s.result, want, "{x} + {y}");
            assert_eq!(s.flags, wflags, "{x} + {y}");
        }
    }

    #[test]
    fn subtract_control_line() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let dp = d.datapath();
        let mut s = Signals::inject(5.0f32.to_bits() as u64, 3.0f32.to_bits() as u64, true);
        dp.eval_all(FpFormat::SINGLE, RoundMode::NearestEven, &mut s);
        assert_eq!(f32::from_bits(s.result as u32), 2.0);
    }

    #[test]
    fn netlist_has_all_subunits() {
        let d = AdderDesign::new(FpFormat::DOUBLE);
        let n = d.netlist(&Tech::virtex2pro());
        assert!(n.components.len() >= 10);
        assert!(n.base_area().luts > 300.0);
        assert_eq!(n.base_area().bmults, 0);
    }

    #[test]
    fn sweep_shapes() {
        let t = Tech::virtex2pro();
        let d = AdderDesign::new(FpFormat::SINGLE);
        let sweep = d.sweep(&t, SynthesisOptions::SPEED);
        assert!(sweep.len() > 10, "expect a deep sweep, got {}", sweep.len());
        // The paper: single-precision addition beyond 240 MHz when deeply
        // pipelined.
        let best = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(best > 240.0, "best single adder clock = {best}");
    }

    #[test]
    fn double_precision_exceeds_200mhz() {
        let t = Tech::virtex2pro();
        let d = AdderDesign::new(FpFormat::DOUBLE);
        let sweep = d.sweep(&t, SynthesisOptions::SPEED);
        let best = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(best > 200.0, "best double adder clock = {best}");
    }

    #[test]
    fn unforced_priority_encoder_caps_frequency() {
        let t = Tech::virtex2pro();
        let forced = AdderDesign {
            force_priority_encoder: true,
            ..AdderDesign::new(FpFormat::DOUBLE)
        };
        let unforced = AdderDesign {
            force_priority_encoder: false,
            ..AdderDesign::new(FpFormat::DOUBLE)
        };
        let f = forced.sweep(&t, SynthesisOptions::SPEED);
        let u = unforced.sweep(&t, SynthesisOptions::SPEED);
        let fbest = f.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        let ubest = u.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(
            fbest > ubest + 20.0,
            "forced {fbest} vs unforced {ubest}: forcing the encoder should matter"
        );
        assert!(
            ubest < 200.0,
            "unforced 64-bit should stay under 200 MHz, got {ubest}"
        );
    }
}
