//! The hardware cost of full IEEE 754 support — quantifying the paper's
//! design decision.
//!
//! "Though we have followed the IEEE754 format …, we haven't provided
//! for denormal or NaN numbers. Denormal and NaN numbers are generally
//! considered rare and may not justify the usage of a lot of hardware
//! required for their handling."
//!
//! `fpfpga-softfp::ieee` implements the omitted semantics; this module
//! prices them. Gradual underflow adds, on top of each flush-to-zero
//! datapath:
//!
//! * **multiplier**: a priority encoder + normalizing barrel shifter per
//!   operand (denormal inputs must be pre-normalized before the fixed
//!   point multiplier), plus a denormalizing right-shifter and its
//!   exponent comparator at the output;
//! * **adder**: the alignment machinery already normalizes implicitly,
//!   but the output side needs the same denormalizing shifter, an
//!   underflow-range comparator, and wider sticky collection;
//! * both: NaN detection/propagation muxes (small).

use crate::adder::AdderDesign;
use crate::multiplier::MultiplierDesign;
use fpfpga_fabric::netlist::Netlist;
use fpfpga_fabric::primitives::{log2_ceil, Primitive};
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::FpFormat;

/// Append the output-side denormalization hardware common to both cores.
fn push_output_denormal_logic(n: &mut Netlist, fmt: FpFormat, tech: &Tech) {
    let bits = fmt.sig_bits() + 3;
    n.push(
        "denormalizing shifter",
        &Primitive::BarrelShifter {
            bits,
            levels: log2_ceil(bits),
        },
        tech,
    );
    n.push_parallel(
        "underflow comparator",
        &Primitive::Comparator {
            bits: fmt.exp_bits(),
        },
        tech,
    );
    n.push(
        "NaN/denorm output mux",
        &Primitive::Mux2 {
            bits: fmt.total_bits(),
        },
        tech,
    );
}

/// The full-IEEE adder netlist: the flush-to-zero datapath plus
/// denormal/NaN handling.
pub fn full_ieee_adder_netlist(fmt: FpFormat, tech: &Tech) -> Netlist {
    let mut n = AdderDesign::new(fmt).netlist(tech);
    n.name = format!("fp{} adder (full IEEE)", fmt.total_bits());
    // NaN detection on each operand (fraction-nonzero AND exp-all-ones).
    n.push_parallel(
        "NaN detect A",
        &Primitive::Comparator {
            bits: fmt.frac_bits(),
        },
        tech,
    );
    n.push_parallel(
        "NaN detect B",
        &Primitive::Comparator {
            bits: fmt.frac_bits(),
        },
        tech,
    );
    push_output_denormal_logic(&mut n, fmt, tech);
    n
}

/// The full-IEEE multiplier netlist: per-operand input normalization
/// plus the output denormalization.
pub fn full_ieee_multiplier_netlist(fmt: FpFormat, tech: &Tech) -> Netlist {
    let base = MultiplierDesign::new(fmt).netlist(tech);
    let mut n = Netlist::new(
        &format!("fp{} multiplier (full IEEE)", fmt.total_bits()),
        fmt.total_bits(),
        base.sideband_width,
    );
    // Input side: normalize each (possibly denormal) operand before the
    // fixed-point multiplier. One path is on the critical path, its twin
    // runs in parallel.
    let sig = fmt.sig_bits();
    n.push(
        "input priority encoder A",
        &Primitive::PriorityEncoder {
            bits: sig,
            forced: true,
        },
        tech,
    );
    n.push(
        "input normalizer A",
        &Primitive::BarrelShifter {
            bits: sig,
            levels: log2_ceil(sig),
        },
        tech,
    );
    n.push_parallel(
        "input priority encoder B",
        &Primitive::PriorityEncoder {
            bits: sig,
            forced: true,
        },
        tech,
    );
    n.push_parallel(
        "input normalizer B",
        &Primitive::BarrelShifter {
            bits: sig,
            levels: log2_ceil(sig),
        },
        tech,
    );
    n.push_parallel(
        "NaN detect",
        &Primitive::Comparator {
            bits: fmt.frac_bits(),
        },
        tech,
    );
    n.components.extend(base.components);
    push_output_denormal_logic(&mut n, fmt, tech);
    n
}

/// One core's flush-to-zero vs full-IEEE comparison at the freq/area
/// optimum of each variant.
#[derive(Clone, Debug)]
pub struct IeeeCostReport {
    /// "adder" or "multiplier".
    pub core: &'static str,
    /// Operand format.
    pub format: FpFormat,
    /// The flush-to-zero optimum.
    pub ftz: ImplementationReport,
    /// The full-IEEE optimum.
    pub ieee: ImplementationReport,
}

impl IeeeCostReport {
    /// Relative slice overhead of full IEEE (e.g. 0.35 = +35%).
    pub fn slice_overhead(&self) -> f64 {
        self.ieee.slices as f64 / self.ftz.slices as f64 - 1.0
    }

    /// Extra pipeline stages at the optimum.
    pub fn extra_stages(&self) -> i64 {
        self.ieee.stages as i64 - self.ftz.stages as i64
    }

    /// Throughput/area degradation factor (< 1 means IEEE is worse).
    pub fn freq_area_ratio(&self) -> f64 {
        self.ieee.freq_per_area() / self.ftz.freq_per_area()
    }
}

/// Price full IEEE support for both cores at all three paper precisions.
pub fn ieee_cost_analysis(tech: &Tech, opts: SynthesisOptions) -> Vec<IeeeCostReport> {
    let mut out = Vec::new();
    for fmt in FpFormat::PAPER_PRECISIONS {
        let sweep = |n: &Netlist| {
            timing::sweep_stages(n, PipelineStrategy::IterativeRefinement, opts, tech)
        };
        let ftz_add = sweep(&AdderDesign::new(fmt).netlist(tech));
        let ieee_add = sweep(&full_ieee_adder_netlist(fmt, tech));
        out.push(IeeeCostReport {
            core: "adder",
            format: fmt,
            ftz: timing::optimal(&ftz_add).clone(),
            ieee: timing::optimal(&ieee_add).clone(),
        });
        let ftz_mul = sweep(&MultiplierDesign::new(fmt).netlist(tech));
        let ieee_mul = sweep(&full_ieee_multiplier_netlist(fmt, tech));
        out.push(IeeeCostReport {
            core: "multiplier",
            format: fmt,
            ftz: timing::optimal(&ftz_mul).clone(),
            ieee: timing::optimal(&ieee_mul).clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee_support_costs_real_area() {
        // The paper's justification must be visible in the model: full
        // IEEE support costs a double-digit percentage of slices.
        let tech = Tech::virtex2pro();
        let reports = ieee_cost_analysis(&tech, SynthesisOptions::SPEED);
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert!(
                r.slice_overhead() > 0.05,
                "{} {}: overhead {:.1}%",
                r.core,
                r.format,
                r.slice_overhead() * 100.0
            );
        }
        // The multiplier pays more than the adder (two input normalizers).
        let mul64 = reports
            .iter()
            .find(|r| r.core == "multiplier" && r.format == FpFormat::DOUBLE)
            .unwrap();
        let add64 = reports
            .iter()
            .find(|r| r.core == "adder" && r.format == FpFormat::DOUBLE)
            .unwrap();
        assert!(mul64.slice_overhead() > add64.slice_overhead());
    }

    #[test]
    fn ieee_hurts_throughput_per_area() {
        let tech = Tech::virtex2pro();
        for r in ieee_cost_analysis(&tech, SynthesisOptions::SPEED) {
            assert!(
                r.freq_area_ratio() < 1.0,
                "{} {}: freq/area ratio {:.3}",
                r.core,
                r.format,
                r.freq_area_ratio()
            );
        }
    }

    #[test]
    fn ieee_netlists_are_supersets() {
        let tech = Tech::virtex2pro();
        for fmt in FpFormat::PAPER_PRECISIONS {
            let ftz = AdderDesign::new(fmt).netlist(&tech);
            let ieee = full_ieee_adder_netlist(fmt, &tech);
            assert!(ieee.components.len() > ftz.components.len());
            assert!(ieee.base_area().luts > ftz.base_area().luts);
            let ftz = MultiplierDesign::new(fmt).netlist(&tech);
            let ieee = full_ieee_multiplier_netlist(fmt, &tech);
            assert!(ieee.base_area().luts > ftz.base_area().luts);
            assert_eq!(ieee.base_area().bmults, ftz.base_area().bmults);
        }
    }
}
