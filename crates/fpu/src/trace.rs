//! Pipeline waveform tracing.
//!
//! A lightweight observability aid: sample a [`PipelinedUnit`]'s stage
//! occupancy every cycle and render an ASCII waveform — the "DONE"
//! side-band and bubble structure made visible, useful when debugging
//! kernel schedules (e.g. watching zero-padding slots ripple through a
//! PE's units).
//!
//! ```text
//! stage 0 |##.#####....|
//! stage 1 |.##.#####...|
//! stage 2 |..##.#####..|
//! ```

use crate::sim::PipelinedUnit;

/// A recorded occupancy trace.
#[derive(Clone, Debug)]
pub struct Waveform {
    stages: usize,
    /// `timeline[s][t]` = stage `s` occupied at cycle `t`.
    timeline: Vec<Vec<bool>>,
}

impl Waveform {
    /// An empty waveform for a unit of `stages` stages.
    pub fn new(stages: u32) -> Waveform {
        Waveform {
            stages: stages as usize,
            timeline: vec![Vec::new(); stages as usize],
        }
    }

    /// Record the unit's current occupancy as one cycle column.
    pub fn sample(&mut self, unit: &PipelinedUnit) {
        let occ = unit.occupancy();
        assert_eq!(occ.len(), self.stages, "unit depth changed mid-trace");
        for (lane, &o) in self.timeline.iter_mut().zip(&occ) {
            lane.push(o);
        }
    }

    /// Cycles recorded so far.
    pub fn len(&self) -> usize {
        self.timeline.first().map_or(0, Vec::len)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy of stage `s` at cycle `t`.
    pub fn occupied(&self, s: usize, t: usize) -> bool {
        self.timeline[s][t]
    }

    /// Total occupied stage-cycles (a utilization measure).
    pub fn occupied_cells(&self) -> usize {
        self.timeline
            .iter()
            .map(|l| l.iter().filter(|&&o| o).count())
            .sum()
    }

    /// Utilization in [0, 1]: occupied cells over all stage-cycles.
    pub fn utilization(&self) -> f64 {
        let total = self.stages * self.len();
        if total == 0 {
            0.0
        } else {
            self.occupied_cells() as f64 / total as f64
        }
    }

    /// Render as ASCII ('#' = occupied, '.' = bubble).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (s, lane) in self.timeline.iter().enumerate() {
            out.push_str(&format!("stage {s:>2} |"));
            for &o in lane {
                out.push(if o { '#' } else { '.' });
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderDesign;
    use crate::sim::FpPipe;
    use fpfpga_softfp::FpFormat;

    fn f(x: f32) -> u64 {
        x.to_bits() as u64
    }

    #[test]
    fn diagonal_wave_for_single_op() {
        let design = AdderDesign::new(FpFormat::SINGLE);
        let mut unit = design.simulator(4);
        let mut wave = Waveform::new(unit.latency());
        unit.clock(Some((f(1.0), f(2.0))));
        wave.sample(&unit);
        for _ in 0..4 {
            unit.clock(None);
            wave.sample(&unit);
        }
        // The bundle advances one stage per cycle: a diagonal.
        for t in 0..4 {
            for s in 0..4 {
                assert_eq!(wave.occupied(s, t), s == t, "stage {s} cycle {t}");
            }
        }
        assert!(!wave.occupied(3, 4), "retired by the last sample");
    }

    #[test]
    fn full_stream_is_fully_utilized() {
        let design = AdderDesign::new(FpFormat::SINGLE);
        let mut unit = design.simulator(5);
        let mut wave = Waveform::new(unit.latency());
        for i in 0..20 {
            unit.clock(Some((f(i as f32), f(1.0))));
            wave.sample(&unit);
        }
        // After the fill, every stage is occupied every cycle.
        for t in 5..20 {
            for s in 0..5 {
                assert!(wave.occupied(s, t), "stage {s} cycle {t}");
            }
        }
        assert!(wave.utilization() > 0.8);
    }

    #[test]
    fn render_shape() {
        let design = AdderDesign::new(FpFormat::SINGLE);
        let mut unit = design.simulator(3);
        let mut wave = Waveform::new(unit.latency());
        unit.clock(Some((f(1.0), f(1.0))));
        wave.sample(&unit);
        unit.clock(None);
        wave.sample(&unit);
        let s = wave.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("stage  0 |#.|"));
        assert!(s.contains("stage  1 |.#|"));
        assert!(s.contains("stage  2 |..|"));
    }

    #[test]
    fn empty_waveform() {
        let w = Waveform::new(4);
        assert!(w.is_empty());
        assert_eq!(w.utilization(), 0.0);
    }
}
