//! Floating-point divider and square-root cores.
//!
//! The paper evaluates adders and multipliers; its related work
//! (Quixilica's core set, the generator of Liang/Tessier/Mencer) covers
//! dividers, so these cores are provided as the natural extension, built
//! from the same subunit discipline: a digit-recurrence (SRT radix-2)
//! array computes the significand quotient/root one digit per row, the
//! exponent path runs in parallel, and the shared rounding/packing
//! machinery finishes. Latency therefore *scales with precision* —
//! the defining contrast with the adder and multiplier, visible in the
//! depth sweeps.

use crate::adder::{Denormalize, PackUnit};
use crate::config::CoreConfig;
use crate::signals::Signals;
use crate::sim::PipelinedUnit;
use crate::subunit::{Datapath, Subunit};
use fpfpga_fabric::netlist::{Component, Netlist};
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::ops::div::{quotient_recurrence, DIV_GRS_BITS};
use fpfpga_softfp::ops::sqrt::{root_recurrence, SQRT_GRS_BITS};
use fpfpga_softfp::round::round_sig;
use fpfpga_softfp::{Class, Flags, FpFormat, RoundMode, Unpacked};

/// Stage-1 exception logic for division (0 ÷ 0, ∞ ÷ ∞, x ÷ 0 …).
pub struct DivExceptionDetect;

impl Subunit for DivExceptionDetect {
    fn name(&self) -> &'static str {
        "exception detect"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let (a, b) = (s.a, s.b);
        let sign = a.sign ^ b.sign;
        s.special = match (a.class, b.class) {
            (Class::Zero, Class::Zero) => {
                Some((Unpacked::zero(false).to_bits(fmt), Flags::invalid()))
            }
            (Class::Inf, Class::Inf) => Some((Unpacked::inf(false).to_bits(fmt), Flags::invalid())),
            (Class::Inf, _) => Some((Unpacked::inf(sign).to_bits(fmt), Flags::NONE)),
            (_, Class::Inf) => Some((Unpacked::zero(sign).to_bits(fmt), Flags::NONE)),
            (Class::Zero, _) => Some((Unpacked::zero(sign).to_bits(fmt), Flags::NONE)),
            (Class::Normal, Class::Zero) => {
                Some((Unpacked::inf(sign).to_bits(fmt), Flags::div_by_zero()))
            }
            (Class::Normal, Class::Normal) => None,
        };
    }

    fn components(&self, _fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::parallel(
            "exception logic",
            &Primitive::SignLogic,
            tech,
        )]
    }
}

/// The divider's sign/exponent path (XOR + exponent subtract/re-bias).
pub struct DivSignExp;

impl Subunit for DivSignExp {
    fn name(&self) -> &'static str {
        "sign XOR / exponent subtractor"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        s.sign = s.a.sign ^ s.b.sign;
        s.exp = s.a.exp - s.b.exp;
        s.is_zero = false;
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        let exp_add = Primitive::FixedAdder {
            bits: fmt.exp_bits(),
            carry_ns_per_bit: tech.t_carry_per_bit_ns,
        };
        vec![
            Component::parallel("sign XOR", &Primitive::SignLogic, tech),
            Component::parallel("exponent subtractor", &exp_add, tech),
            Component::parallel("bias adder", &exp_add, tech),
        ]
    }
}

/// The quotient digit-recurrence array.
pub struct QuotientRecurrenceUnit;

impl Subunit for QuotientRecurrenceUnit {
    fn name(&self) -> &'static str {
        "quotient recurrence"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if s.special.is_none() {
            let (q, exp) = quotient_recurrence(fmt, s.a.sig, s.b.sig, s.exp);
            s.mag = q;
            s.exp = exp;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::from_primitive(
            "SRT array",
            &Primitive::DigitRecurrence {
                bits: fmt.sig_bits() + DIV_GRS_BITS,
                rows: fmt.sig_bits() + DIV_GRS_BITS + 1,
            },
            tech,
        )]
    }
}

/// The divider/sqrt rounding module (2 guard bits + jammed sticky).
pub struct RecurrenceRound {
    grs: u32,
}

impl Subunit for RecurrenceRound {
    fn name(&self) -> &'static str {
        "rounding"
    }

    fn eval(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals) {
        if s.special.is_none() {
            let rounded = round_sig(fmt, s.mag, self.grs, mode);
            s.mag = rounded.sig as u128;
            s.exp += rounded.exp_carry as i32;
            if rounded.inexact {
                s.flags |= Flags::inexact();
            }
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "mantissa round adder",
                &Primitive::ConstAdder {
                    bits: fmt.sig_bits(),
                },
                tech,
            ),
            Component::parallel(
                "exponent round adder",
                &Primitive::ConstAdder {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// A floating-point divider design for one format.
#[derive(Clone, Copy, Debug)]
pub struct DividerDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode of the built simulators.
    pub round: RoundMode,
}

impl DividerDesign {
    /// A design with the paper-consistent defaults.
    pub fn new(format: FpFormat) -> DividerDesign {
        DividerDesign {
            format,
            round: RoundMode::NearestEven,
        }
    }

    /// The behavioural datapath.
    pub fn datapath(&self) -> Datapath {
        Datapath {
            subunits: vec![
                Box::new(Denormalize),
                Box::new(DivExceptionDetect),
                Box::new(DivSignExp),
                Box::new(QuotientRecurrenceUnit),
                Box::new(RecurrenceRound { grs: DIV_GRS_BITS }),
                Box::new(PackUnit),
            ],
        }
    }

    /// The structural netlist.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let mut n = Netlist::new(
            &format!("fp{} divider", self.format.total_bits()),
            self.format.total_bits(),
            self.format.exp_bits() + 6,
        );
        for u in self.datapath().subunits {
            n.components.extend(u.components(self.format, tech));
        }
        n
    }

    /// Sweep pipeline depth.
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        timing::sweep_stages(
            &self.netlist(tech),
            PipelineStrategy::IterativeRefinement,
            opts,
            tech,
        )
    }

    /// Build the cycle-accurate simulator for a pipeline depth.
    pub fn simulator(&self, stages: u32) -> PipelinedUnit {
        let config = CoreConfig::builder(self.format)
            .round(self.round)
            .stages(stages)
            .strategy(PipelineStrategy::Balanced)
            .build();
        PipelinedUnit::new(&config, self.datapath(), self.netlist(&Tech::virtex2pro()))
    }
}

// ---------------------------------------------------------------- sqrt

/// Stage-1 exception logic for square root (√negative, √∞, √±0).
pub struct SqrtExceptionDetect;

impl Subunit for SqrtExceptionDetect {
    fn name(&self) -> &'static str {
        "exception detect"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let a = s.a;
        s.special = match a.class {
            Class::Zero => Some((a.to_bits(fmt), Flags::NONE)),
            Class::Inf => {
                if a.sign {
                    Some((Unpacked::zero(false).to_bits(fmt), Flags::invalid()))
                } else {
                    Some((Unpacked::inf(false).to_bits(fmt), Flags::NONE))
                }
            }
            Class::Normal => {
                if a.sign {
                    Some((Unpacked::zero(false).to_bits(fmt), Flags::invalid()))
                } else {
                    None
                }
            }
        };
        s.sign = false;
        s.is_zero = false;
    }

    fn components(&self, _fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::parallel(
            "exception logic",
            &Primitive::SignLogic,
            tech,
        )]
    }
}

/// The root digit-recurrence array (with the odd/even exponent fold).
pub struct RootRecurrenceUnit;

impl Subunit for RootRecurrenceUnit {
    fn name(&self) -> &'static str {
        "root recurrence"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if s.special.is_none() {
            let (r, exp) = root_recurrence(fmt, s.a.sig, s.a.exp);
            s.mag = r;
            s.exp = exp;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            // The exponent halving is a shift; its odd/even fold is a mux.
            Component::parallel(
                "exponent halver",
                &Primitive::Mux2 {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
            Component::from_primitive(
                "SRT root array",
                &Primitive::DigitRecurrence {
                    bits: fmt.sig_bits() + SQRT_GRS_BITS + 1,
                    rows: fmt.sig_bits() + SQRT_GRS_BITS + 1,
                },
                tech,
            ),
        ]
    }
}

/// A floating-point square-root design for one format.
#[derive(Clone, Copy, Debug)]
pub struct SqrtDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode of the built simulators.
    pub round: RoundMode,
}

impl SqrtDesign {
    /// A design with the paper-consistent defaults.
    pub fn new(format: FpFormat) -> SqrtDesign {
        SqrtDesign {
            format,
            round: RoundMode::NearestEven,
        }
    }

    /// The behavioural datapath (operand B is ignored).
    pub fn datapath(&self) -> Datapath {
        Datapath {
            subunits: vec![
                Box::new(Denormalize),
                Box::new(SqrtExceptionDetect),
                Box::new(RootRecurrenceUnit),
                Box::new(RecurrenceRound { grs: SQRT_GRS_BITS }),
                Box::new(PackUnit),
            ],
        }
    }

    /// The structural netlist.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let mut n = Netlist::new(
            &format!("fp{} sqrt", self.format.total_bits()),
            self.format.total_bits(),
            self.format.exp_bits() + 6,
        );
        for u in self.datapath().subunits {
            n.components.extend(u.components(self.format, tech));
        }
        n
    }

    /// Sweep pipeline depth.
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        timing::sweep_stages(
            &self.netlist(tech),
            PipelineStrategy::IterativeRefinement,
            opts,
            tech,
        )
    }

    /// Build the cycle-accurate simulator for a pipeline depth.
    pub fn simulator(&self, stages: u32) -> PipelinedUnit {
        let config = CoreConfig::builder(self.format)
            .round(self.round)
            .stages(stages)
            .strategy(PipelineStrategy::Balanced)
            .build();
        PipelinedUnit::new(&config, self.datapath(), self.netlist(&Tech::virtex2pro()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FpPipe;

    fn run(unit: &mut PipelinedUnit, a: u64, b: u64) -> (u64, Flags) {
        let mut out = unit.clock(Some((a, b)));
        while out.is_none() {
            out = unit.clock(None);
        }
        out.unwrap()
    }

    #[test]
    fn divider_combinational_matches_softfp() {
        let d = DividerDesign::new(FpFormat::SINGLE);
        let dp = d.datapath();
        let cases: &[(f32, f32)] = &[
            (6.0, 3.0),
            (1.0, 3.0),
            (-7.5, 0.5),
            (5.0, 0.0),
            (0.0, 0.0),
            (f32::INFINITY, 2.0),
            (f32::MAX, f32::MIN_POSITIVE),
        ];
        for &(x, y) in cases {
            let mut s = Signals::inject(x.to_bits() as u64, y.to_bits() as u64, false);
            dp.eval_all(FpFormat::SINGLE, RoundMode::NearestEven, &mut s);
            let (want, wf) = fpfpga_softfp::div_bits(
                FpFormat::SINGLE,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            assert_eq!(s.result, want, "{x} / {y}");
            assert_eq!(s.flags, wf, "{x} / {y}");
        }
    }

    #[test]
    fn pipelined_divider_bit_exact() {
        let d = DividerDesign::new(FpFormat::DOUBLE);
        for stages in [1u32, 8, 20, 40] {
            let mut unit = d.simulator(stages);
            for &(x, y) in &[(1.0f64, 3.0f64), (2.5e100, -3.3e-7), (-1.0, -8.0)] {
                let (got, _) = run(&mut unit, x.to_bits(), y.to_bits());
                let (want, _) = fpfpga_softfp::div_bits(
                    FpFormat::DOUBLE,
                    x.to_bits(),
                    y.to_bits(),
                    RoundMode::NearestEven,
                );
                assert_eq!(got, want, "{x}/{y} at {stages} stages");
            }
        }
    }

    #[test]
    fn pipelined_sqrt_bit_exact() {
        let d = SqrtDesign::new(FpFormat::SINGLE);
        for stages in [1u32, 6, 15] {
            let mut unit = d.simulator(stages);
            for &x in &[2.0f32, 6.25, 1e10, 0.0, -4.0] {
                let (got, gf) = run(&mut unit, x.to_bits() as u64, 0);
                let (want, wf) = fpfpga_softfp::sqrt_bits(
                    FpFormat::SINGLE,
                    x.to_bits() as u64,
                    RoundMode::NearestEven,
                );
                assert_eq!(got, want, "sqrt({x}) at {stages} stages");
                assert_eq!(gf, wf, "sqrt({x})");
            }
        }
    }

    #[test]
    fn divider_latency_scales_with_precision() {
        // Digit recurrence: one row per result bit — max depth (and the
        // latency needed for peak clock) grows with the significand,
        // unlike the adder/multiplier.
        let t = Tech::virtex2pro();
        let d32 = DividerDesign::new(FpFormat::SINGLE)
            .netlist(&t)
            .max_stages();
        let d64 = DividerDesign::new(FpFormat::DOUBLE)
            .netlist(&t)
            .max_stages();
        assert!(d64 > d32 + 20, "64-bit rows {d64} vs 32-bit rows {d32}");
    }

    #[test]
    fn divider_is_area_hungry() {
        // Quixilica-era folklore the model must respect: a pipelined FP
        // divider costs several times the multiplier's slices.
        let t = Tech::virtex2pro();
        let div = DividerDesign::new(FpFormat::SINGLE).netlist(&t).base_area();
        let mul = crate::multiplier::MultiplierDesign::new(FpFormat::SINGLE)
            .netlist(&t)
            .base_area();
        assert!(div.luts > 2.0 * mul.luts);
    }

    #[test]
    fn deep_divider_sustains_high_clock() {
        let t = Tech::virtex2pro();
        let sweep = DividerDesign::new(FpFormat::SINGLE).sweep(&t, SynthesisOptions::SPEED);
        let best = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(best > 200.0, "deeply pipelined divider = {best} MHz");
        // ...but it takes ~one stage per digit to get there.
        let at_200 = sweep.iter().find(|r| r.clock_mhz >= 200.0).unwrap().stages;
        assert!(
            at_200 > 15,
            "200 MHz before {at_200} stages is implausibly early"
        );
    }

    #[test]
    fn sqrt_ignores_second_operand() {
        let d = SqrtDesign::new(FpFormat::SINGLE);
        let mut u1 = d.simulator(5);
        let mut u2 = d.simulator(5);
        let a = 7.5f32.to_bits() as u64;
        let r1 = run(&mut u1, a, 0);
        let r2 = run(&mut u2, a, 0xdead_beef);
        assert_eq!(r1, r2);
    }
}
