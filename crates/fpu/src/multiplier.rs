//! The floating-point multiplier core (Figure 1b of the paper).
//!
//! "Floating point multiplication is easier than addition/subtraction to
//! implement": the same denormalizer feeds a fixed-point mantissa
//! multiplier (Xilinx library-core style, on embedded 18×18 blocks) in
//! parallel with an exponent adder + bias subtractor and a sign XOR,
//! followed by a small normalizer (at most two bit positions, since
//! denormals are not produced) and the same rounding module as the adder.

use crate::adder::{Denormalize, PackUnit};
use crate::config::CoreConfig;
use crate::signals::Signals;
use crate::sim::{DelayOp, PipelinedUnit};
use crate::subunit::{Datapath, Subunit};
use fpfpga_fabric::netlist::{Component, Netlist};
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::ops::mul::product_normalize;
use fpfpga_softfp::round::round_sig;
use fpfpga_softfp::{Class, Flags, FpFormat, RoundMode, Unpacked};

/// Stage-1 exception logic for multiplication (0 × ∞ etc.), mirroring
/// `fpfpga-softfp`'s dispatch exactly.
pub struct MulExceptionDetect;

impl Subunit for MulExceptionDetect {
    fn name(&self) -> &'static str {
        "exception detect"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        let (a, b) = (s.a, s.b);
        let sign = a.sign ^ b.sign;
        s.special = match (a.class, b.class) {
            (Class::Zero, Class::Inf) | (Class::Inf, Class::Zero) => {
                Some((Unpacked::zero(false).to_bits(fmt), Flags::invalid()))
            }
            (Class::Inf, _) | (_, Class::Inf) => {
                Some((Unpacked::inf(sign).to_bits(fmt), Flags::NONE))
            }
            (Class::Zero, _) | (_, Class::Zero) => {
                Some((Unpacked::zero(sign).to_bits(fmt), Flags::NONE))
            }
            (Class::Normal, Class::Normal) => None,
        };
    }

    fn components(&self, _fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::parallel(
            "exception logic",
            &Primitive::SignLogic,
            tech,
        )]
    }
}

/// The sign XOR and exponent adder + bias subtractor, running in parallel
/// with the mantissa multiplier.
pub struct SignExpUnit;

impl Subunit for SignExpUnit {
    fn name(&self) -> &'static str {
        "sign XOR / exponent adder"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        s.sign = s.a.sign ^ s.b.sign;
        s.exp = s.a.exp + s.b.exp;
        s.is_zero = false; // normal × normal is never exactly zero
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        let exp_add = Primitive::FixedAdder {
            bits: fmt.exp_bits(),
            carry_ns_per_bit: tech.t_carry_per_bit_ns,
        };
        vec![
            Component::parallel("sign XOR", &Primitive::SignLogic, tech),
            // "A fixed-point adder and subtractor to add the exponents
            // and subtract the bias from the sum. A pipeline stage can be
            // inserted between the adder and subtractor."
            Component::parallel("exponent adder", &exp_add, tech),
            Component::parallel("bias subtractor", &exp_add, tech),
        ]
    }
}

/// Stage 2: the fixed-point mantissa multiplier on embedded 18×18 blocks.
pub struct MantissaMultiply;

impl Subunit for MantissaMultiply {
    fn name(&self) -> &'static str {
        "mantissa multiplier"
    }

    fn eval(&self, _fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        s.product = s.a.sig as u128 * s.b.sig as u128;
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![Component::from_primitive(
            "mantissa multiplier",
            &Primitive::Mult18Tree {
                bits: fmt.sig_bits(),
            },
            tech,
        )]
    }
}

/// Stage 3a: the multiplier's small normalizer — "since we do not
/// consider denormal numbers, we shift the mantissa of the result at
/// most by two bits" (one for the product's integer bit, one more
/// absorbed by the rounding carry).
pub struct ProductNormalize;

impl Subunit for ProductNormalize {
    fn name(&self) -> &'static str {
        "product normalizer"
    }

    fn eval(&self, fmt: FpFormat, _mode: RoundMode, s: &mut Signals) {
        if s.special.is_none() {
            let (mag, exp) = product_normalize(fmt, s.product, s.exp);
            s.mag = mag;
            s.exp = exp;
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "2-bit shifter",
                &Primitive::Mux2 {
                    bits: fmt.sig_bits() + 2,
                },
                tech,
            ),
            Component::parallel(
                "exponent adjust",
                &Primitive::ConstAdder {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// Stage 3b: the rounding module (same structure as the adder's, but the
/// tail below the significand is the full low half of the product).
pub struct MulRound;

impl Subunit for MulRound {
    fn name(&self) -> &'static str {
        "rounding"
    }

    fn eval(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals) {
        if s.special.is_none() {
            let rounded = round_sig(fmt, s.mag, fmt.frac_bits() + 1, mode);
            s.mag = rounded.sig as u128;
            s.exp += rounded.exp_carry as i32;
            if rounded.inexact {
                s.flags |= Flags::inexact();
            }
        }
    }

    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component> {
        vec![
            Component::from_primitive(
                "mantissa round adder",
                &Primitive::ConstAdder {
                    bits: fmt.sig_bits(),
                },
                tech,
            ),
            Component::parallel(
                "exponent round adder",
                &Primitive::ConstAdder {
                    bits: fmt.exp_bits(),
                },
                tech,
            ),
        ]
    }
}

/// A floating-point multiplier design for one format.
#[derive(Clone, Copy, Debug)]
pub struct MultiplierDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode of the built simulators.
    pub round: RoundMode,
}

impl MultiplierDesign {
    /// A design with the paper's defaults.
    pub fn new(format: FpFormat) -> MultiplierDesign {
        MultiplierDesign {
            format,
            round: RoundMode::NearestEven,
        }
    }

    /// From a full core configuration.
    pub fn from_config(cfg: &CoreConfig) -> MultiplierDesign {
        MultiplierDesign {
            format: cfg.format,
            round: cfg.round,
        }
    }

    /// The behavioural datapath (subunits in dataflow order).
    pub fn datapath(&self) -> Datapath {
        Datapath {
            subunits: vec![
                Box::new(Denormalize),
                Box::new(MulExceptionDetect),
                Box::new(SignExpUnit),
                Box::new(MantissaMultiply),
                Box::new(ProductNormalize),
                Box::new(MulRound),
                Box::new(PackUnit),
            ],
        }
    }

    /// The structural netlist for the fabric model.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let mut n = Netlist::new(
            &format!("fp{} multiplier", self.format.total_bits()),
            self.format.total_bits(),
            self.format.exp_bits() + 6,
        );
        for u in self.datapath().subunits {
            n.components.extend(u.components(self.format, tech));
        }
        n
    }

    /// Sweep pipeline depth (the paper's Figure 2b data for this format).
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        let n = self.netlist(tech);
        timing::sweep_stages(&n, PipelineStrategy::IterativeRefinement, opts, tech)
    }

    /// Build the cycle-accurate simulator for a pipeline depth.
    pub fn simulator(&self, stages: u32) -> PipelinedUnit {
        let config = CoreConfig::builder(self.format)
            .round(self.round)
            .stages(stages)
            .strategy(PipelineStrategy::Balanced)
            .build();
        PipelinedUnit::new(&config, self.datapath(), self.netlist(&Tech::virtex2pro()))
            .with_fast_op(DelayOp::Mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_matches_softfp() {
        let d = MultiplierDesign::new(FpFormat::SINGLE);
        let dp = d.datapath();
        let cases: &[(f32, f32)] = &[
            (2.0, 3.0),
            (-1.5, 0.25),
            (f32::MAX, 2.0),
            (1e-38, 1e-3),
            (0.0, 7.0),
            (f32::INFINITY, 0.0),
            (f32::NEG_INFINITY, -2.0),
        ];
        for &(x, y) in cases {
            let mut s = Signals::inject(x.to_bits() as u64, y.to_bits() as u64, false);
            dp.eval_all(FpFormat::SINGLE, RoundMode::NearestEven, &mut s);
            let (want, wflags) = fpfpga_softfp::mul_bits(
                FpFormat::SINGLE,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            assert_eq!(s.result, want, "{x} * {y}");
            assert_eq!(s.flags, wflags, "{x} * {y}");
        }
    }

    #[test]
    fn uses_embedded_multipliers() {
        let t = Tech::virtex2pro();
        for (fmt, bmults) in [
            (FpFormat::SINGLE, 4),
            (FpFormat::FP48, 9),
            (FpFormat::DOUBLE, 16),
        ] {
            let n = MultiplierDesign::new(fmt).netlist(&t);
            assert_eq!(n.base_area().bmults, bmults, "{fmt:?}");
        }
    }

    #[test]
    fn multiplier_smaller_than_adder_in_slices() {
        // The paper's tables show multipliers using fewer slices than
        // adders (the mantissa work lives in the embedded blocks).
        let t = Tech::virtex2pro();
        let add = crate::adder::AdderDesign::new(FpFormat::SINGLE).netlist(&t);
        let mul = MultiplierDesign::new(FpFormat::SINGLE).netlist(&t);
        assert!(mul.base_area().luts < add.base_area().luts);
    }

    #[test]
    fn sweep_reaches_paper_rates() {
        let t = Tech::virtex2pro();
        let single = MultiplierDesign::new(FpFormat::SINGLE).sweep(&t, SynthesisOptions::SPEED);
        let double = MultiplierDesign::new(FpFormat::DOUBLE).sweep(&t, SynthesisOptions::SPEED);
        let s_best = single.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        let d_best = double.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(s_best > 240.0, "single mult best = {s_best}");
        assert!(d_best > 200.0, "double mult best = {d_best}");
    }

    #[test]
    fn double_crosses_200mhz_in_paper_band() {
        // Anchor: "for the 54bit fixed-point multiplication, seven
        // pipelining stages are required to achieve a frequency of
        // 200 MHz" (validated directly on the mantissa-multiplier
        // primitive in fpfpga-fabric). The *full* FP multiplier adds
        // denormalize/normalize/round stages around it, so its 200 MHz
        // crossing lands a few stages later — but well under the depth
        // of a comparable adder.
        let t = Tech::virtex2pro();
        let sweep = MultiplierDesign::new(FpFormat::DOUBLE).sweep(&t, SynthesisOptions::SPEED);
        let crossing = sweep
            .iter()
            .find(|r| r.clock_mhz >= 200.0)
            .expect("200 MHz is reachable")
            .stages;
        assert!(
            (9..=16).contains(&crossing),
            "double multiplier crosses 200 MHz at {crossing} stages"
        );
        let at = |k: u32| sweep.iter().find(|r| r.stages == k).unwrap().clock_mhz;
        assert!(at(4) < 200.0, "4-stage double multiplier = {}", at(4));
    }
}
