//! Memoized synthesis sweeps.
//!
//! Every consumer of the design-space data — [`PrecisionAnalysis`]
//! (Figure 2, Tables 1-2), the matmul `UnitSet` selection, the
//! architecture explorer, the unit generator — ultimately calls the same
//! pure function: *sweep (op, format) across pipeline depths under a
//! (tech, options) flow*. [`SweepCache`] memoizes exactly that function
//! behind a cheap cloneable handle, so a process regenerating all paper
//! artifacts synthesizes each distinct point once.
//!
//! The cache is std-only: a `Mutex<HashMap>` of per-key `OnceLock`s.
//! Concurrent lookups of *different* keys synthesize in parallel;
//! concurrent lookups of the *same* key block on one computation
//! (exactly-once, so a warm cache never re-synthesizes). Hit/miss
//! counters make redundancy observable in tests and benches.
//!
//! By default a cache is unbounded (the paper's design space is a
//! handful of keys). Under sustained serving traffic with per-request
//! formats the key population is open-ended, so
//! [`SweepCache::with_capacity`] bounds the cache: when a miss would
//! grow it past the capacity, the least-recently-used entry is evicted
//! and the [`SweepCache::evictions`] counter increments. An evicted key
//! that comes back simply re-synthesizes (counted as a fresh miss).
//!
//! [`PrecisionAnalysis`]: crate::analysis::PrecisionAnalysis

use crate::generator::{sweep_for, UnitOp};
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::FpFormat;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One memoized sweep point: (op, format, tech fingerprint, options).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct SweepKey {
    op: UnitOp,
    format: FpFormat,
    tech_bits: u64,
    opts: SynthesisOptions,
}

/// `Tech` carries calibrated `f64`s (and derives neither `Eq` nor
/// `Hash`), so it is hashed by bit pattern.
/// Two `Tech` values collide only if every field is bit-identical — in
/// which case every sweep result is identical too.
fn tech_fingerprint(tech: &Tech) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    for x in [
        tech.t_lut_route_ns,
        tech.t_carry_per_bit_ns,
        tech.t_cmp_per_bit_ns,
        tech.t_mux_level_ns,
        tech.t_prienc_level_ns,
        tech.t_mult18_ns,
        tech.t_mult18_half_ns,
        tech.t_bram_ns,
        tech.t_ff_ns,
        tech.f_max_mhz,
        tech.free_ff_utilization,
        tech.skew_lut_per_bit,
        tech.speed_obj_area_factor,
        tech.speed_obj_delay_factor,
        tech.area_obj_delay_factor,
        tech.speed_par_slice_factor,
        tech.speed_par_delay_factor,
    ] {
        h.write(&x.to_bits().to_le_bytes());
    }
    h.finish()
}

type SweepCell = Arc<OnceLock<Arc<Vec<ImplementationReport>>>>;

/// A resident entry: the memo cell plus its last-touch stamp (a logical
/// clock, bumped on every lookup) for LRU ordering.
struct CacheEntry {
    cell: SweepCell,
    stamp: u64,
}

#[derive(Default)]
struct CacheMap {
    map: HashMap<SweepKey, CacheEntry>,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    state: Mutex<CacheMap>,
    /// `None` = unbounded (the default).
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A shared, thread-safe memo of synthesis sweeps. Clones share state.
#[derive(Clone, Default)]
pub struct SweepCache {
    inner: Arc<Inner>,
}

impl SweepCache {
    /// An empty, unbounded cache.
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// An empty cache holding at most `capacity` sweeps; beyond that,
    /// the least-recently-used entry is evicted on insert.
    ///
    /// # Panics
    /// If `capacity` is zero (a cache that can hold nothing cannot
    /// honour the exactly-once contract of a single lookup).
    pub fn with_capacity(capacity: usize) -> SweepCache {
        assert!(capacity >= 1, "SweepCache capacity must be at least 1");
        SweepCache {
            inner: Arc::new(Inner {
                capacity: Some(capacity),
                ..Inner::default()
            }),
        }
    }

    /// The configured bound, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// The memoized form of [`generator::sweep_for`]: returns the full
    /// depth sweep for `(op, format)` under `(tech, opts)`, synthesizing
    /// at most once per distinct key over the cache's lifetime.
    ///
    /// [`generator::sweep_for`]: crate::generator::sweep_for
    pub fn sweep(
        &self,
        op: UnitOp,
        format: FpFormat,
        tech: &Tech,
        opts: SynthesisOptions,
    ) -> Arc<Vec<ImplementationReport>> {
        let key = SweepKey {
            op,
            format,
            tech_bits: tech_fingerprint(tech),
            opts,
        };
        let (cell, first) = {
            let mut state = self.inner.state.lock().expect("sweep cache poisoned");
            state.tick += 1;
            let tick = state.tick;
            match state.map.get_mut(&key) {
                Some(entry) => {
                    entry.stamp = tick;
                    (entry.cell.clone(), false)
                }
                None => {
                    let cell: SweepCell = Arc::new(OnceLock::new());
                    state.map.insert(
                        key,
                        CacheEntry {
                            cell: cell.clone(),
                            stamp: tick,
                        },
                    );
                    if let Some(cap) = self.inner.capacity {
                        // The just-inserted entry holds the newest stamp,
                        // so the LRU victim is never the new key.
                        while state.map.len() > cap {
                            let victim = state
                                .map
                                .iter()
                                .min_by_key(|(_, e)| e.stamp)
                                .map(|(&k, _)| k)
                                .expect("non-empty over-capacity map");
                            state.map.remove(&victim);
                            self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    (cell, true)
                }
            }
        };
        if first {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
        // The map lock is released; concurrent distinct keys synthesize
        // in parallel, concurrent identical keys block on this cell.
        cell.get_or_init(|| Arc::new(sweep_for(op, format, tech, opts)))
            .clone()
    }

    /// Lookups that found an already-requested key.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that triggered a synthesis sweep.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by the LRU bound (always 0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct sweeps held.
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("sweep cache poisoned")
            .map
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> (Tech, SynthesisOptions) {
        (Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn warm_lookups_do_not_resynthesize() {
        let (tech, opts) = flow();
        let cache = SweepCache::new();
        let a = cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(
            Arc::ptr_eq(&a, &b),
            "warm lookup must return the memoized sweep"
        );
        assert_eq!(*a, sweep_for(UnitOp::Add, FpFormat::SINGLE, &tech, opts));
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let (tech, opts) = flow();
        let cache = SweepCache::new();
        cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        cache.sweep(UnitOp::Mul, FpFormat::SINGLE, &tech, opts);
        cache.sweep(UnitOp::Add, FpFormat::DOUBLE, &tech, opts);
        cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, SynthesisOptions::AREA);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn tech_fingerprint_tracks_field_changes() {
        let tech = Tech::virtex2pro();
        let mut other = tech.clone();
        other.t_ff_ns += 0.001;
        assert_ne!(tech_fingerprint(&tech), tech_fingerprint(&other));
        assert_eq!(tech_fingerprint(&tech), tech_fingerprint(&tech.clone()));
    }

    #[test]
    fn concurrent_same_key_synthesizes_once() {
        let (tech, opts) = flow();
        let cache = SweepCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let tech = &tech;
                scope.spawn(move || cache.sweep(UnitOp::Mul, FpFormat::FP48, tech, opts));
            }
        });
        assert_eq!(
            cache.misses(),
            1,
            "one thread computes, the rest block on the cell"
        );
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let (tech, opts) = flow();
        let cache = SweepCache::new();
        assert_eq!(cache.capacity(), None);
        for op in [UnitOp::Add, UnitOp::Mul, UnitOp::Div, UnitOp::Sqrt] {
            for fmt in FpFormat::PAPER_PRECISIONS {
                cache.sweep(op, fmt, &tech, opts);
            }
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 12);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let (tech, opts) = flow();
        let cache = SweepCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        cache.sweep(UnitOp::Mul, FpFormat::SINGLE, &tech, opts);
        // Touch Add so Mul becomes the LRU victim.
        cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        cache.sweep(UnitOp::Div, FpFormat::SINGLE, &tech, opts);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // Add survived (hit); Mul was evicted (fresh miss re-computes).
        let misses = cache.misses();
        cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        assert_eq!(cache.misses(), misses, "LRU-protected key must hit");
        cache.sweep(UnitOp::Mul, FpFormat::SINGLE, &tech, opts);
        assert_eq!(cache.misses(), misses + 1, "evicted key must re-miss");
    }

    #[test]
    fn eviction_preserves_in_flight_results() {
        // A holder of an evicted sweep keeps its Arc alive and correct.
        let (tech, opts) = flow();
        let cache = SweepCache::with_capacity(1);
        let kept = cache.sweep(UnitOp::Add, FpFormat::SINGLE, &tech, opts);
        cache.sweep(UnitOp::Mul, FpFormat::SINGLE, &tech, opts);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(*kept, sweep_for(UnitOp::Add, FpFormat::SINGLE, &tech, opts));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = SweepCache::with_capacity(0);
    }

    #[test]
    fn clones_share_state() {
        let (tech, opts) = flow();
        let cache = SweepCache::new();
        let clone = cache.clone();
        cache.sweep(UnitOp::Sqrt, FpFormat::SINGLE, &tech, opts);
        clone.sweep(UnitOp::Sqrt, FpFormat::SINGLE, &tech, opts);
        assert_eq!((clone.hits(), clone.misses()), (1, 1));
    }
}
