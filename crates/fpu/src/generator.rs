//! Floating-point unit generation — the workflow of the paper's
//! reference \[6\] (Liang, Tessier, Mencer, *"Floating Point Unit
//! Generation and Evaluation for FPGAs"*, FCCM 2003): give the tool an
//! operation, a precision and constraints; get back a concrete
//! implementation point with its resource/timing report and the
//! rationale for the choice.
//!
//! "Hence the focus is shifting from designing the floating-point units
//! to optimally utilizing the available subunits" — this module is that
//! shift made executable.

use crate::adder::AdderDesign;
use crate::divider::{DividerDesign, SqrtDesign};
use crate::mac::FusedMacDesign;
use crate::multiplier::MultiplierDesign;
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::FpFormat;

/// Which unit to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitOp {
    /// Adder/subtractor.
    Add,
    /// Multiplier.
    Mul,
    /// Divider.
    Div,
    /// Square root.
    Sqrt,
    /// Fused multiply-add.
    Mac,
}

impl UnitOp {
    /// Parse from the CLI spelling.
    pub fn parse(s: &str) -> Option<UnitOp> {
        Some(match s {
            "add" | "adder" | "sub" => UnitOp::Add,
            "mul" | "multiplier" => UnitOp::Mul,
            "div" | "divider" => UnitOp::Div,
            "sqrt" => UnitOp::Sqrt,
            "mac" | "fma" => UnitOp::Mac,
            _ => return None,
        })
    }
}

/// The selection metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Highest clock rate.
    MaxFrequency,
    /// Highest MHz/slice (the paper's recommendation).
    FreqPerArea,
    /// Fewest slices (subject to the target clock, if any).
    MinArea,
}

/// A generation request.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Operand format.
    pub format: FpFormat,
    /// Operation.
    pub op: UnitOp,
    /// Required clock (MHz); configurations below it are discarded.
    pub target_mhz: Option<f64>,
    /// Slice budget; configurations above it are discarded.
    pub max_slices: Option<u32>,
    /// Selection metric among the survivors.
    pub metric: Metric,
}

/// The generated unit.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The chosen implementation point.
    pub report: ImplementationReport,
    /// Why this point was chosen.
    pub rationale: String,
    /// Non-fatal observations (e.g. the target was barely reachable).
    pub warnings: Vec<String>,
}

/// Generation failures.
#[derive(Clone, Debug, PartialEq)]
pub enum GenError {
    /// No pipeline depth satisfies the constraints; the payload reports
    /// the best achievable clock and the smallest achievable area.
    Infeasible {
        /// Fastest clock any depth reaches (MHz).
        best_mhz: f64,
        /// Smallest slice count any depth needs.
        min_slices: u32,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Infeasible {
                best_mhz,
                min_slices,
            } => write!(
                f,
                "no configuration satisfies the constraints (best clock {best_mhz:.1} MHz, \
                 smallest area {min_slices} slices)"
            ),
        }
    }
}

impl std::error::Error for GenError {}

/// Sweep the requested unit across pipeline depths.
pub fn sweep_for(
    op: UnitOp,
    format: FpFormat,
    tech: &Tech,
    opts: SynthesisOptions,
) -> Vec<ImplementationReport> {
    match op {
        UnitOp::Add => AdderDesign::new(format).sweep(tech, opts),
        UnitOp::Mul => MultiplierDesign::new(format).sweep(tech, opts),
        UnitOp::Div => DividerDesign::new(format).sweep(tech, opts),
        UnitOp::Sqrt => SqrtDesign::new(format).sweep(tech, opts),
        UnitOp::Mac => FusedMacDesign::new(format).sweep(tech, opts),
    }
}

/// [`sweep_for`] through a [`SweepCache`]: warm lookups return the
/// memoized reports without re-synthesizing.
///
/// [`SweepCache`]: crate::cache::SweepCache
pub fn sweep_for_cached(
    op: UnitOp,
    format: FpFormat,
    tech: &Tech,
    opts: SynthesisOptions,
    cache: &crate::cache::SweepCache,
) -> std::sync::Arc<Vec<ImplementationReport>> {
    cache.sweep(op, format, tech, opts)
}

/// Staged unit generation: wrap a [`Request`], optionally attach a
/// [`SweepCache`](crate::cache::SweepCache), then
/// [`run`](Generation::run).
///
/// This is the single entry point that replaced the
/// `generate` / `generate_cached` pair.
///
/// ```
/// use fpfpga_fpu::generator::{Generation, Metric, Request, UnitOp};
/// use fpfpga_fabric::{synthesis::SynthesisOptions, tech::Tech};
/// use fpfpga_softfp::FpFormat;
///
/// let req = Request {
///     format: FpFormat::SINGLE,
///     op: UnitOp::Add,
///     target_mhz: None,
///     max_slices: None,
///     metric: Metric::FreqPerArea,
/// };
/// let g = Generation::of(req)
///     .run(&Tech::virtex2pro(), SynthesisOptions::SPEED)
///     .unwrap();
/// assert!(g.report.slices > 0);
/// ```
#[derive(Clone, Copy)]
pub struct Generation<'a> {
    req: Request,
    cache: Option<&'a crate::cache::SweepCache>,
}

impl Generation<'static> {
    /// Start a generation for `req`.
    pub fn of(req: Request) -> Generation<'static> {
        Generation { req, cache: None }
    }
}

impl<'a> Generation<'a> {
    /// Memoize the depth sweep through `cache`; the constraint filtering
    /// and metric selection still run per request.
    pub fn cached<'b>(self, cache: &'b crate::cache::SweepCache) -> Generation<'b> {
        Generation {
            req: self.req,
            cache: Some(cache),
        }
    }

    /// Sweep, filter and select the implementation point.
    pub fn run(self, tech: &Tech, opts: SynthesisOptions) -> Result<Generated, GenError> {
        match self.cache {
            Some(cache) => select(
                &self.req,
                &cache.sweep(self.req.op, self.req.format, tech, opts),
            ),
            None => select(
                &self.req,
                &sweep_for(self.req.op, self.req.format, tech, opts),
            ),
        }
    }
}

/// Generate the unit for a request.
#[deprecated(since = "0.6.0", note = "use `Generation::of(*req).run(tech, opts)`")]
pub fn generate(req: &Request, tech: &Tech, opts: SynthesisOptions) -> Result<Generated, GenError> {
    Generation::of(*req).run(tech, opts)
}

/// [`generate`] through a [`SweepCache`].
///
/// [`SweepCache`]: crate::cache::SweepCache
#[deprecated(
    since = "0.6.0",
    note = "use `Generation::of(*req).cached(cache).run(tech, opts)`"
)]
pub fn generate_cached(
    req: &Request,
    tech: &Tech,
    opts: SynthesisOptions,
    cache: &crate::cache::SweepCache,
) -> Result<Generated, GenError> {
    Generation::of(*req).cached(cache).run(tech, opts)
}

/// Pick an implementation point from an already-computed sweep.
fn select(req: &Request, sweep: &[ImplementationReport]) -> Result<Generated, GenError> {
    let best_mhz = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
    let min_slices = sweep.iter().map(|r| r.slices).min().unwrap_or(0);

    let admitted: Vec<&ImplementationReport> = sweep
        .iter()
        .filter(|r| req.target_mhz.is_none_or(|t| r.clock_mhz >= t))
        .filter(|r| req.max_slices.is_none_or(|m| r.slices <= m))
        .collect();
    if admitted.is_empty() {
        return Err(GenError::Infeasible {
            best_mhz,
            min_slices,
        });
    }

    let chosen: &ImplementationReport = match req.metric {
        Metric::MaxFrequency => admitted
            .iter()
            .max_by(|a, b| a.clock_mhz.partial_cmp(&b.clock_mhz).unwrap())
            .unwrap(),
        Metric::FreqPerArea => admitted
            .iter()
            .max_by(|a, b| a.freq_per_area().partial_cmp(&b.freq_per_area()).unwrap())
            .unwrap(),
        Metric::MinArea => admitted
            .iter()
            .min_by(|a, b| a.slices.cmp(&b.slices).then(a.stages.cmp(&b.stages)))
            .unwrap(),
    };

    let mut warnings = Vec::new();
    if let Some(t) = req.target_mhz {
        if chosen.clock_mhz < t * 1.05 {
            warnings.push(format!(
                "only {:.1}% clock margin over the {t:.0} MHz target — expect timing closure \
                 pressure on a real flow",
                (chosen.clock_mhz / t - 1.0) * 100.0
            ));
        }
    }
    if matches!(req.op, UnitOp::Div | UnitOp::Sqrt) && chosen.stages > 20 {
        warnings.push(format!(
            "digit-recurrence latency: {} cycles — schedule around it or consider a lower clock",
            chosen.stages
        ));
    }

    let rationale = format!(
        "swept {} depths; {} satisfy the constraints; picked {} stages by {:?} \
         ({:.1} MHz, {} slices, {:.4} MHz/slice)",
        sweep.len(),
        admitted.len(),
        chosen.stages,
        req.metric,
        chosen.clock_mhz,
        chosen.slices,
        chosen.freq_per_area()
    );
    Ok(Generated {
        report: chosen.clone(),
        rationale,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> (Tech, SynthesisOptions) {
        (Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn generates_paper_recommended_point() {
        let (tech, opts) = flow();
        let req = Request {
            format: FpFormat::SINGLE,
            op: UnitOp::Add,
            target_mhz: None,
            max_slices: None,
            metric: Metric::FreqPerArea,
        };
        let g = Generation::of(req).run(&tech, opts).unwrap();
        // Matches the analysis module's "opt" selection.
        let sweep = crate::analysis::CoreSweep::adder(FpFormat::SINGLE, &tech, opts);
        assert_eq!(&g.report, sweep.opt());
        assert!(g.rationale.contains("stages"));
    }

    #[test]
    fn target_clock_is_respected() {
        let (tech, opts) = flow();
        let req = Request {
            format: FpFormat::DOUBLE,
            op: UnitOp::Mul,
            target_mhz: Some(200.0),
            max_slices: None,
            metric: Metric::MinArea,
        };
        let g = Generation::of(req).run(&tech, opts).unwrap();
        assert!(g.report.clock_mhz >= 200.0);
        // MinArea: nothing admitted is smaller.
        let sweep = sweep_for(UnitOp::Mul, FpFormat::DOUBLE, &tech, opts);
        for r in sweep.iter().filter(|r| r.clock_mhz >= 200.0) {
            assert!(g.report.slices <= r.slices);
        }
    }

    #[test]
    fn infeasible_requests_error_with_diagnostics() {
        let (tech, opts) = flow();
        let req = Request {
            format: FpFormat::DOUBLE,
            op: UnitOp::Add,
            target_mhz: Some(1_000.0),
            max_slices: None,
            metric: Metric::MaxFrequency,
        };
        match Generation::of(req).run(&tech, opts) {
            Err(GenError::Infeasible { best_mhz, .. }) => {
                assert!(best_mhz < 1_000.0 && best_mhz > 100.0);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_constraints_are_infeasible() {
        let (tech, opts) = flow();
        let req = Request {
            format: FpFormat::DOUBLE,
            op: UnitOp::Add,
            target_mhz: Some(240.0),
            max_slices: Some(300), // a fast double adder cannot be this small
            metric: Metric::MinArea,
        };
        assert!(Generation::of(req).run(&tech, opts).is_err());
    }

    #[test]
    fn divider_warns_about_latency() {
        let (tech, opts) = flow();
        let req = Request {
            format: FpFormat::SINGLE,
            op: UnitOp::Div,
            target_mhz: Some(200.0),
            max_slices: None,
            metric: Metric::MinArea,
        };
        let g = Generation::of(req).run(&tech, opts).unwrap();
        assert!(
            g.warnings.iter().any(|w| w.contains("digit-recurrence")),
            "{:?}",
            g.warnings
        );
    }

    #[test]
    fn cached_generation_matches_plain_and_skips_warm_synthesis() {
        let (tech, opts) = flow();
        let cache = crate::cache::SweepCache::new();
        let req = Request {
            format: FpFormat::SINGLE,
            op: UnitOp::Mac,
            target_mhz: Some(150.0),
            max_slices: None,
            metric: Metric::FreqPerArea,
        };
        let plain = Generation::of(req).run(&tech, opts).unwrap();
        let cold = Generation::of(req).cached(&cache).run(&tech, opts).unwrap();
        let warm = Generation::of(req).cached(&cache).run(&tech, opts).unwrap();
        assert_eq!(plain.report, cold.report);
        assert_eq!(plain.report, warm.report);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_builder() {
        let (tech, opts) = flow();
        let cache = crate::cache::SweepCache::new();
        let req = Request {
            format: FpFormat::SINGLE,
            op: UnitOp::Add,
            target_mhz: None,
            max_slices: None,
            metric: Metric::FreqPerArea,
        };
        let built = Generation::of(req).run(&tech, opts).unwrap();
        let legacy = generate(&req, &tech, opts).unwrap();
        let legacy_cached = generate_cached(&req, &tech, opts, &cache).unwrap();
        assert_eq!(built.report, legacy.report);
        assert_eq!(built.report, legacy_cached.report);
    }

    #[test]
    fn op_parsing() {
        assert_eq!(UnitOp::parse("add"), Some(UnitOp::Add));
        assert_eq!(UnitOp::parse("fma"), Some(UnitOp::Mac));
        assert_eq!(UnitOp::parse("nope"), None);
    }

    #[test]
    fn all_ops_generate_for_all_precisions() {
        let (tech, opts) = flow();
        for op in [
            UnitOp::Add,
            UnitOp::Mul,
            UnitOp::Div,
            UnitOp::Sqrt,
            UnitOp::Mac,
        ] {
            for fmt in FpFormat::PAPER_PRECISIONS {
                let req = Request {
                    format: fmt,
                    op,
                    target_mhz: None,
                    max_slices: None,
                    metric: Metric::FreqPerArea,
                };
                let g = Generation::of(req).run(&tech, opts).unwrap();
                assert!(g.report.slices > 0, "{op:?} {fmt}");
            }
        }
    }
}
