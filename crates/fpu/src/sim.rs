//! Cycle-accurate pipeline simulation.
//!
//! [`PipelinedUnit`] clocks [`Signals`] bundles through the stage latches
//! of a core: one operand pair may be injected per cycle (initiation
//! interval 1), each result emerges exactly `stages` cycles later with
//! its exception flags, and a `DONE` valid bit tracks bubble cycles —
//! matching the paper's interface ("an output signal DONE is also used
//! to indicate that the operation of the module is completed").
//!
//! [`DelayLineUnit`] is the fast functional twin: it computes the result
//! with `fpfpga-softfp` at injection time and delays it by the same
//! latency. The two are interchangeable (property-tested bit-equal);
//! large kernel simulations use the delay line, unit tests use both.

use crate::config::CoreConfig;
use crate::signals::Signals;
use crate::subunit::Datapath;
use fpfpga_fabric::netlist::Netlist;
use fpfpga_fabric::pipeline::pipeline;
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use std::collections::VecDeque;

/// A pipelined floating-point unit usable at one operation per cycle.
pub trait FpPipe {
    /// Pipeline latency in cycles.
    fn latency(&self) -> u32;

    /// Advance one clock. `input` optionally injects an operand pair;
    /// the return value is the result (with flags) completing this
    /// cycle, or `None` on a bubble.
    fn clock(&mut self, input: Option<(u64, u64)>) -> Option<(u64, Flags)>;

    /// The result that will retire on the *next* [`FpPipe::clock`] call,
    /// without advancing. Hardware exposes this combinationally (the
    /// last stage's output before the clock edge); consumers use it for
    /// same-cycle write-first forwarding.
    fn peek(&self) -> Option<(u64, Flags)>;

    /// Drain the pipe: clock with bubbles until every in-flight result
    /// has emerged, returning them in order.
    fn drain(&mut self) -> Vec<(u64, Flags)> {
        let mut out = Vec::new();
        for _ in 0..self.latency() {
            if let Some(r) = self.clock(None) {
                out.push(r);
            }
        }
        out
    }

    /// Stream a whole batch back-to-back at initiation interval 1 and
    /// drain: any results already in flight emerge first, then one
    /// result per input, in order — exactly the per-cycle `clock`/
    /// [`FpPipe::drain`] outcome (property-tested bit-identical).
    ///
    /// Implementations may override this with a bulk fast path; the
    /// cycle cost modelled is always `inputs.len() + latency()` clocks.
    fn run_batch(&mut self, inputs: &[(u64, u64)]) -> Vec<(u64, Flags)> {
        let mut out = Vec::with_capacity(inputs.len() + self.latency() as usize);
        self.run_batch_into(inputs, &mut out);
        out
    }

    /// Like [`FpPipe::run_batch`] but **appending** results to a
    /// caller-provided buffer, so tight kernel loops (the matmul PEs, the
    /// serving layer's coalesced eltwise path) can reuse one allocation
    /// across thousands of batches.
    fn run_batch_into(&mut self, inputs: &[(u64, u64)], out: &mut Vec<(u64, Flags)>) {
        out.reserve(inputs.len());
        for &inp in inputs {
            if let Some(r) = self.clock(Some(inp)) {
                out.push(r);
            }
        }
        out.extend(self.drain());
    }
}

/// The structural, stage-by-stage simulator.
pub struct PipelinedUnit {
    fmt: FpFormat,
    mode: RoundMode,
    datapath: Datapath,
    /// Stage index of each subunit (monotone).
    stage_of: Vec<usize>,
    stages: u32,
    /// `slots[i]` holds the bundle that has completed stage `i`.
    slots: Vec<Option<Signals>>,
    /// Fixed subtract control for bundles injected via [`FpPipe::clock`].
    subtract: bool,
    /// The scalar operation this datapath computes, when it is one the
    /// `softfp::fastpath` lane covers. [`FpPipe::run_batch_into`] then
    /// evaluates whole batches through the monomorphized kernels instead
    /// of the stage-by-stage structural walk — bit-identical by the
    /// crate invariant (every stage placement equals softfp), which the
    /// conform fpu sweep keeps enforcing through the per-cycle path.
    fast_op: Option<DelayOp>,
    cycles: u64,
}

impl PipelinedUnit {
    /// Build a simulator from a configuration and the design's datapath
    /// and netlist. The configuration supplies format, rounding mode,
    /// pipeline depth and register-placement strategy; placement only
    /// affects *when* a subunit's transfer function runs, never its
    /// value (see the crate-level invariant).
    pub fn new(config: &CoreConfig, datapath: Datapath, netlist: Netlist) -> PipelinedUnit {
        let tech = Tech::virtex2pro();
        let piped = pipeline(&netlist, config.stages, config.strategy);
        let stage_of = datapath.assign_stages(config.format, &tech, &piped.cuts);
        let k = piped.stages as usize;
        PipelinedUnit {
            fmt: config.format,
            mode: config.round,
            datapath,
            stage_of,
            stages: piped.stages,
            slots: (0..k).map(|_| None).collect(),
            subtract: false,
            fast_op: None,
            cycles: 0,
        }
    }

    /// Make [`FpPipe::clock`] inject subtractions (drive the core's
    /// add/sub select line low/high permanently).
    pub fn with_subtract(mut self, subtract: bool) -> PipelinedUnit {
        self.subtract = subtract;
        self
    }

    /// Declare which scalar operation the datapath computes so batch
    /// execution can take the monomorphized fast lane. Designs set this
    /// in their `simulator()` constructors; `Div`/`Sqrt` stay on the
    /// structural walk (no fast lane exists for them).
    pub fn with_fast_op(mut self, op: DelayOp) -> PipelinedUnit {
        self.fast_op = match op {
            DelayOp::Add | DelayOp::Sub | DelayOp::Mul => Some(op),
            DelayOp::Div | DelayOp::Sqrt => None,
        };
        self
    }

    /// Total clock cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advance one clock with an explicit per-operation subtract control.
    pub fn clock_op(&mut self, input: Option<(u64, u64, bool)>) -> Option<(u64, Flags)> {
        self.cycles += 1;
        let k = self.slots.len();

        // Retire the bundle leaving the last stage.
        let out = self.slots[k - 1].take().map(|s| (s.result, s.flags));

        // Shift every in-flight bundle one stage forward, running the
        // subunits assigned to the stage it enters.
        for i in (1..k).rev() {
            if let Some(mut s) = self.slots[i - 1].take() {
                self.run_stage(i, &mut s);
                self.slots[i] = Some(s);
            }
        }

        // Inject.
        if let Some((a, b, sub)) = input {
            let mut s = Signals::inject(a, b, sub);
            self.run_stage(0, &mut s);
            self.slots[0] = Some(s);
        }
        out
    }

    fn run_stage(&self, stage: usize, s: &mut Signals) {
        for (u, &st) in self.datapath.subunits.iter().zip(&self.stage_of) {
            if st == stage {
                u.eval(self.fmt, self.mode, s);
            }
        }
    }

    /// Occupancy of the pipe (in-flight operations) — the `DONE`
    /// side-band made visible.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Per-stage occupancy snapshot (for waveform tracing).
    pub fn occupancy(&self) -> Vec<bool> {
        self.slots.iter().map(Option::is_some).collect()
    }
}

impl FpPipe for PipelinedUnit {
    fn latency(&self) -> u32 {
        self.stages
    }

    fn clock(&mut self, input: Option<(u64, u64)>) -> Option<(u64, Flags)> {
        let sub = self.subtract;
        self.clock_op(input.map(|(a, b)| (a, b, sub)))
    }

    fn peek(&self) -> Option<(u64, Flags)> {
        // The last slot's bundle has already run every stage; its result
        // field is the combinational output sitting at the final
        // register's D input mux.
        self.slots
            .last()
            .and_then(|s| s.as_ref())
            .map(|s| (s.result, s.flags))
    }

    /// In-place slot rotation: bundles never interact (each subunit
    /// mutates only its own bundle), so instead of shifting the slot
    /// vector once per clock, finish the in-flight bundles' remaining
    /// stages in retirement order, then evaluate the new inputs in bulk —
    /// through the monomorphized `softfp::fastpath` batch kernels when
    /// the datapath's operation has a fast lane, or straight through all
    /// stages without ever parking bundles in slots otherwise.
    fn run_batch_into(&mut self, inputs: &[(u64, u64)], out: &mut Vec<(u64, Flags)>) {
        let k = self.slots.len();
        out.reserve(self.in_flight() + inputs.len());
        for i in (0..k).rev() {
            if let Some(mut s) = self.slots[i].take() {
                for stage in i + 1..k {
                    self.run_stage(stage, &mut s);
                }
                out.push((s.result, s.flags));
            }
        }
        let op = match (self.fast_op, self.subtract) {
            (Some(DelayOp::Add), true) => Some(DelayOp::Sub),
            (Some(DelayOp::Sub), true) => Some(DelayOp::Add),
            (other, _) => other,
        };
        match op {
            Some(DelayOp::Add) => fpfpga_softfp::add_pairs_batch(self.fmt, inputs, self.mode, out),
            Some(DelayOp::Sub) => fpfpga_softfp::sub_pairs_batch(self.fmt, inputs, self.mode, out),
            Some(DelayOp::Mul) => fpfpga_softfp::mul_pairs_batch(self.fmt, inputs, self.mode, out),
            _ => {
                let sub = self.subtract;
                for &(a, b) in inputs {
                    let mut s = Signals::inject(a, b, sub);
                    for stage in 0..k {
                        self.run_stage(stage, &mut s);
                    }
                    out.push((s.result, s.flags));
                }
            }
        }
        // Same clock count the per-cycle path would spend: one issue
        // per input plus a full drain.
        self.cycles += inputs.len() as u64 + k as u64;
    }
}

/// Which scalar operation a [`DelayLineUnit`] performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayOp {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
    /// a ÷ b
    Div,
    /// √a (the second operand is ignored)
    Sqrt,
}

/// The fast functional twin: softfp at injection + a latency delay line.
pub struct DelayLineUnit {
    fmt: FpFormat,
    mode: RoundMode,
    op: DelayOp,
    line: VecDeque<Option<(u64, Flags)>>,
    stages: u32,
}

impl DelayLineUnit {
    /// An `op` unit of `stages` cycles latency.
    pub fn new(fmt: FpFormat, mode: RoundMode, op: DelayOp, stages: u32) -> DelayLineUnit {
        assert!(stages >= 1);
        DelayLineUnit {
            fmt,
            mode,
            op,
            line: (0..stages).map(|_| None).collect(),
            stages,
        }
    }

    fn compute(&self, a: u64, b: u64) -> (u64, Flags) {
        match self.op {
            DelayOp::Add => fpfpga_softfp::fastpath::add_bits(self.fmt, a, b, self.mode),
            DelayOp::Sub => fpfpga_softfp::fastpath::sub_bits(self.fmt, a, b, self.mode),
            DelayOp::Mul => fpfpga_softfp::fastpath::mul_bits(self.fmt, a, b, self.mode),
            DelayOp::Div => fpfpga_softfp::div_bits(self.fmt, a, b, self.mode),
            DelayOp::Sqrt => fpfpga_softfp::sqrt_bits(self.fmt, a, self.mode),
        }
    }
}

impl FpPipe for DelayLineUnit {
    fn latency(&self) -> u32 {
        self.stages
    }

    fn clock(&mut self, input: Option<(u64, u64)>) -> Option<(u64, Flags)> {
        let computed = input.map(|(a, b)| self.compute(a, b));
        self.line.push_back(computed);
        self.line.pop_front().expect("line is non-empty")
    }

    fn peek(&self) -> Option<(u64, Flags)> {
        *self.line.front().expect("line is non-empty")
    }

    /// Bulk fast path: everything already in the delay line retires
    /// first (its results were computed at injection), then the whole
    /// input slice is evaluated in one pass — no per-cycle `VecDeque`
    /// round-trip, and add/sub/mul take the monomorphized batch kernels
    /// with the per-slice format dispatch paid exactly once.
    fn run_batch_into(&mut self, inputs: &[(u64, u64)], out: &mut Vec<(u64, Flags)>) {
        out.reserve(self.line.len() + inputs.len());
        for slot in self.line.iter_mut() {
            if let Some(r) = slot.take() {
                out.push(r);
            }
        }
        match self.op {
            DelayOp::Add => fpfpga_softfp::add_pairs_batch(self.fmt, inputs, self.mode, out),
            DelayOp::Sub => fpfpga_softfp::sub_pairs_batch(self.fmt, inputs, self.mode, out),
            DelayOp::Mul => fpfpga_softfp::mul_pairs_batch(self.fmt, inputs, self.mode, out),
            DelayOp::Div | DelayOp::Sqrt => {
                out.extend(inputs.iter().map(|&(a, b)| self.compute(a, b)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderDesign;
    use crate::multiplier::MultiplierDesign;

    fn f(x: f32) -> u64 {
        x.to_bits() as u64
    }

    #[test]
    fn latency_is_exact() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        for stages in [1u32, 3, 8, 14] {
            let mut u = d.simulator(stages);
            assert_eq!(u.latency(), stages);
            let mut out = u.clock(Some((f(1.0), f(2.0))));
            let mut waited = 0;
            while out.is_none() {
                out = u.clock(None);
                waited += 1;
                assert!(waited <= stages, "result did not emerge in {stages} cycles");
            }
            assert_eq!(waited, stages, "latency mismatch at {stages} stages");
            assert_eq!(f32::from_bits(out.unwrap().0 as u32), 3.0);
        }
    }

    #[test]
    fn initiation_interval_is_one() {
        let d = MultiplierDesign::new(FpFormat::SINGLE);
        let mut u = d.simulator(6);
        let pairs: Vec<(f32, f32)> = (0..20).map(|i| (i as f32 + 1.0, 2.0)).collect();
        let mut results = Vec::new();
        for &(a, b) in &pairs {
            if let Some((r, _)) = u.clock(Some((f(a), f(b)))) {
                results.push(f32::from_bits(r as u32));
            }
        }
        for (r, _) in u.drain() {
            results.push(f32::from_bits(r as u32));
        }
        let want: Vec<f32> = pairs.iter().map(|&(a, b)| a * b).collect();
        assert_eq!(results, want);
    }

    #[test]
    fn bubbles_pass_through() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let mut u = d.simulator(4);
        assert!(u.clock(Some((f(1.0), f(1.0)))).is_none());
        assert!(u.clock(None).is_none());
        assert!(u.clock(Some((f(2.0), f(2.0)))).is_none());
        assert!(u.clock(None).is_none());
        // cycle 5: first result
        assert_eq!(
            u.clock(None).map(|(r, _)| f32::from_bits(r as u32)),
            Some(2.0)
        );
        assert!(u.clock(None).is_none()); // the bubble
        assert_eq!(
            u.clock(None).map(|(r, _)| f32::from_bits(r as u32)),
            Some(4.0)
        );
    }

    #[test]
    fn every_stage_count_is_bit_identical() {
        // The crate invariant: register placement never changes values.
        let d = AdderDesign::new(FpFormat::DOUBLE);
        let netlist = d.netlist(&Tech::virtex2pro());
        let cases: &[(f64, f64)] = &[
            (1.0, 2.5),
            (1e300, 1e300),
            (-7.25, 7.25),
            (3.1e-200, -2.9e-200),
        ];
        for stages in 1..=netlist.max_stages() {
            let mut u = d.simulator(stages);
            for &(x, y) in cases {
                let mut out = u.clock(Some((x.to_bits(), y.to_bits())));
                while out.is_none() {
                    out = u.clock(None);
                }
                let (want, wf) = fpfpga_softfp::add_bits(
                    FpFormat::DOUBLE,
                    x.to_bits(),
                    y.to_bits(),
                    RoundMode::NearestEven,
                );
                let (got, gf) = out.unwrap();
                assert_eq!(got, want, "{x} + {y} at {stages} stages");
                assert_eq!(gf, wf, "{x} + {y} at {stages} stages");
            }
        }
    }

    #[test]
    fn delay_line_agrees_with_structural() {
        let d = MultiplierDesign::new(FpFormat::SINGLE);
        let mut structural = d.simulator(7);
        let mut fast =
            DelayLineUnit::new(FpFormat::SINGLE, RoundMode::NearestEven, DelayOp::Mul, 7);
        let inputs: Vec<(u64, u64)> = (0..50)
            .map(|i| (f(i as f32 * 0.37 - 5.0), f(i as f32 * 1.13 + 0.01)))
            .collect();
        for &inp in &inputs {
            let a = structural.clock(Some(inp));
            let b = fast.clock(Some(inp));
            assert_eq!(a, b);
        }
        assert_eq!(structural.drain(), fast.drain());
    }

    #[test]
    fn subtract_line() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let mut u = d.simulator(5).with_subtract(true);
        let mut out = u.clock(Some((f(10.0), f(4.0))));
        while out.is_none() {
            out = u.clock(None);
        }
        assert_eq!(f32::from_bits(out.unwrap().0 as u32), 6.0);
    }

    #[test]
    fn in_flight_tracks_occupancy() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let mut u = d.simulator(6);
        assert_eq!(u.in_flight(), 0);
        u.clock(Some((f(1.0), f(1.0))));
        u.clock(Some((f(1.0), f(1.0))));
        assert_eq!(u.in_flight(), 2);
        u.clock(None);
        assert_eq!(u.in_flight(), 2);
        for _ in 0..6 {
            u.clock(None);
        }
        assert_eq!(u.in_flight(), 0);
    }
}
