//! Batched streaming execution over [`FpPipe`]s.
//!
//! The paper's whole evaluation is throughput-driven: initiation-
//! interval-1 pipelines kept full by back-to-back operand streams. The
//! per-cycle [`clock`](crate::sim::FpPipe::clock) interface models that
//! faithfully but pays an `Option` shuffle per cycle; this module adds
//! the streaming view on top of it:
//!
//! * [`FpPipe::run_batch`] — push a whole
//!   operand slice through at full rate and drain, with bulk fast paths
//!   in both simulator backends (bit-identical to per-cycle clocking,
//!   property-tested in `tests/proptest_stream_batch.rs`);
//! * [`StreamSession`] — an incremental injector for driver loops that
//!   interleave issue with other per-cycle work but want the streaming
//!   bookkeeping (issued/retired counts, final drain) handled.
//!
//! ```
//! use fpfpga_fpu::adder::AdderDesign;
//! use fpfpga_fpu::sim::FpPipe;
//! use fpfpga_fpu::stream::StreamSession;
//! use fpfpga_softfp::FpFormat;
//!
//! let design = AdderDesign::new(FpFormat::SINGLE);
//! let mut unit = design.simulator(8);
//!
//! // Whole-slice streaming:
//! let inputs: Vec<(u64, u64)> = (0..32)
//!     .map(|i| ((i as f32).to_bits() as u64, 1.0f32.to_bits() as u64))
//!     .collect();
//! let results = unit.run_batch(&inputs);
//! assert_eq!(results.len(), 32);
//! assert_eq!(f32::from_bits(results[3].0 as u32), 4.0);
//!
//! // Incremental streaming with explicit control:
//! let mut session = StreamSession::new(&mut unit);
//! let mut done = Vec::new();
//! for i in 0..10u32 {
//!     done.extend(session.push((i as f32).to_bits() as u64, 2.0f32.to_bits() as u64));
//! }
//! assert_eq!(session.in_flight(), 8); // the pipe is 8 deep
//! done.extend(session.finish());
//! assert_eq!(done.len(), 10);
//! ```

use crate::sim::FpPipe;
use fpfpga_softfp::Flags;

/// Incremental streaming over an exclusively borrowed pipe.
///
/// A session tracks how many operations it has issued and retired, so
/// [`finish`](StreamSession::finish) knows exactly when the pipe has
/// given everything back. The pipe should be empty when the session
/// starts (results already in flight are attributed to the session's
/// own counts and would end the final drain early).
pub struct StreamSession<'p, P: FpPipe + ?Sized> {
    pipe: &'p mut P,
    issued: u64,
    retired: u64,
}

impl<'p, P: FpPipe + ?Sized> StreamSession<'p, P> {
    /// Start a session on an (empty) pipe.
    pub fn new(pipe: &'p mut P) -> StreamSession<'p, P> {
        StreamSession {
            pipe,
            issued: 0,
            retired: 0,
        }
    }

    /// Issue one operand pair this cycle; returns the result retiring
    /// in the same cycle, if any.
    pub fn push(&mut self, a: u64, b: u64) -> Option<(u64, Flags)> {
        self.issued += 1;
        let r = self.pipe.clock(Some((a, b)));
        if r.is_some() {
            self.retired += 1;
        }
        r
    }

    /// Advance one cycle without issuing (a deliberate bubble).
    pub fn bubble(&mut self) -> Option<(u64, Flags)> {
        let r = self.pipe.clock(None);
        if r.is_some() {
            self.retired += 1;
        }
        r
    }

    /// Operations issued but not yet retired.
    pub fn in_flight(&self) -> u64 {
        self.issued - self.retired
    }

    /// Drain every in-flight result, in retirement order, and end the
    /// session.
    pub fn finish(mut self) -> Vec<(u64, Flags)> {
        let mut out = Vec::with_capacity(self.in_flight() as usize);
        while self.in_flight() > 0 {
            if let Some(r) = self.bubble() {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderDesign;
    use crate::multiplier::MultiplierDesign;
    use crate::sim::{DelayLineUnit, DelayOp};
    use fpfpga_softfp::{FpFormat, RoundMode};

    fn f(x: f32) -> u64 {
        x.to_bits() as u64
    }

    fn inputs(n: usize) -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| (f(i as f32 * 0.7 - 3.0), f(i as f32 * 1.3 + 0.1)))
            .collect()
    }

    /// The hand-driven reference the overrides must match.
    fn per_cycle(unit: &mut dyn FpPipe, ops: &[(u64, u64)]) -> Vec<(u64, Flags)> {
        let mut out = Vec::new();
        for &inp in ops {
            if let Some(r) = unit.clock(Some(inp)) {
                out.push(r);
            }
        }
        out.extend(unit.drain());
        out
    }

    #[test]
    fn pipelined_override_matches_per_cycle() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let ops = inputs(23);
        for stages in [1u32, 3, 8] {
            let mut a = d.simulator(stages);
            let mut b = d.simulator(stages);
            assert_eq!(
                a.run_batch(&ops),
                per_cycle(&mut b, &ops),
                "{stages} stages"
            );
            assert_eq!(
                a.cycles(),
                b.cycles(),
                "cycle accounting at {stages} stages"
            );
        }
    }

    #[test]
    fn pipelined_override_flushes_in_flight_first() {
        let d = MultiplierDesign::new(FpFormat::SINGLE);
        let ops = inputs(9);
        let mut a = d.simulator(6);
        let mut b = d.simulator(6);
        // Pre-load three operations per-cycle on both units.
        for &inp in &ops[..3] {
            a.clock(Some(inp));
            b.clock(Some(inp));
        }
        let batched = a.run_batch(&ops[3..]);
        let reference = per_cycle(&mut b, &ops[3..]);
        assert_eq!(batched, reference);
    }

    #[test]
    fn delay_line_override_matches_per_cycle() {
        for op in [DelayOp::Add, DelayOp::Mul, DelayOp::Div] {
            let ops = inputs(17);
            let mut a = DelayLineUnit::new(FpFormat::SINGLE, RoundMode::NearestEven, op, 9);
            let mut b = DelayLineUnit::new(FpFormat::SINGLE, RoundMode::NearestEven, op, 9);
            // With some already in flight.
            for &inp in &ops[..4] {
                a.clock(Some(inp));
                b.clock(Some(inp));
            }
            assert_eq!(
                a.run_batch(&ops[4..]),
                per_cycle(&mut b, &ops[4..]),
                "{op:?}"
            );
        }
    }

    #[test]
    fn session_counts_and_finishes() {
        let d = AdderDesign::new(FpFormat::SINGLE);
        let mut unit = d.simulator(5);
        let mut session = StreamSession::new(&mut unit);
        let mut live = Vec::new();
        for i in 0..12u32 {
            if let Some(r) = session.push(f(i as f32), f(1.0)) {
                live.push(r);
            }
        }
        assert_eq!(session.in_flight(), 5);
        live.extend(session.finish());
        let want: Vec<f32> = (0..12).map(|i| i as f32 + 1.0).collect();
        let got: Vec<f32> = live
            .iter()
            .map(|&(r, _)| f32::from_bits(r as u32))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn session_matches_run_batch() {
        let ops = inputs(31);
        let mut a = DelayLineUnit::new(FpFormat::SINGLE, RoundMode::NearestEven, DelayOp::Add, 11);
        let mut b = DelayLineUnit::new(FpFormat::SINGLE, RoundMode::NearestEven, DelayOp::Add, 11);
        let batched = a.run_batch(&ops);
        let mut session = StreamSession::new(&mut b);
        let mut streamed = Vec::new();
        for &(x, y) in &ops {
            if let Some(r) = session.push(x, y) {
                streamed.push(r);
            }
        }
        streamed.extend(session.finish());
        assert_eq!(batched, streamed);
    }
}
