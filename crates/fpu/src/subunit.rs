//! The subunit abstraction: one hardware block of Figure 1.
//!
//! Every subunit has a *behaviour* (its transfer function over the
//! [`Signals`] bundle) and a *structure* (the
//! fabric component its logic maps to). The two faces are kept on one
//! object so that the behavioural pipeline and the area/timing model can
//! never drift apart.

use crate::signals::Signals;
use fpfpga_fabric::netlist::Component;
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::{FpFormat, RoundMode};

/// One hardware subunit of a floating-point core.
pub trait Subunit {
    /// Subunit name, as in the paper's block diagrams.
    fn name(&self) -> &'static str;

    /// The transfer function: read/update the wire bundle.
    fn eval(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals);

    /// The fabric component(s) this subunit synthesizes to, in dataflow
    /// order. Components flagged off-critical-path model logic that runs
    /// in parallel with (and faster than) the mantissa path.
    fn components(&self, fmt: FpFormat, tech: &Tech) -> Vec<Component>;
}

/// A datapath: subunits in dataflow order.
pub struct Datapath {
    /// The subunits, in evaluation order.
    pub subunits: Vec<Box<dyn Subunit + Send + Sync>>,
}

impl Datapath {
    /// Evaluate the whole datapath combinationally (reference execution —
    /// must match `fpfpga-softfp` bit for bit).
    pub fn eval_all(&self, fmt: FpFormat, mode: RoundMode, s: &mut Signals) {
        for u in &self.subunits {
            u.eval(fmt, mode, s);
        }
    }

    /// Map subunits to pipeline stages given the per-subunit atom counts
    /// and a stage partition expressed as atom-boundary cut positions.
    ///
    /// A subunit belongs to the stage in which its *last* critical-path
    /// atom completes; subunits with only off-critical-path components
    /// inherit the stage of their predecessor. The returned vector has
    /// one (stage index) entry per subunit and is monotone.
    pub fn assign_stages(&self, fmt: FpFormat, tech: &Tech, cuts: &[usize]) -> Vec<usize> {
        let mut assignment = Vec::with_capacity(self.subunits.len());
        let mut atom_idx = 0usize; // index into the flattened critical path
        let mut prev_stage = 0usize;
        for u in &self.subunits {
            let crit_atoms: usize = u
                .components(fmt, tech)
                .iter()
                .filter(|c| c.on_critical_path)
                .map(|c| c.atoms.len())
                .sum();
            let stage = if crit_atoms == 0 {
                prev_stage
            } else {
                atom_idx += crit_atoms;
                // stage = number of cuts strictly before the last atom's end
                cuts.iter().filter(|&&c| c < atom_idx).count()
            };
            assignment.push(stage);
            prev_stage = stage;
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_fabric::primitives::Primitive;

    struct Fake(u32, bool); // atom count, on critical path

    impl Subunit for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn eval(&self, _: FpFormat, _: RoundMode, s: &mut Signals) {
            s.exp += 1;
        }
        fn components(&self, _: FpFormat, tech: &Tech) -> Vec<Component> {
            let p = Primitive::BarrelShifter {
                bits: 8,
                levels: self.0,
            };
            let c = if self.1 {
                Component::from_primitive("fake", &p, tech)
            } else {
                Component::parallel("fake", &p, tech)
            };
            vec![c]
        }
    }

    #[test]
    fn stage_assignment_monotone_and_correct() {
        let dp = Datapath {
            subunits: vec![
                Box::new(Fake(2, true)),  // atoms 0..2
                Box::new(Fake(1, false)), // parallel: inherits
                Box::new(Fake(3, true)),  // atoms 2..5
                Box::new(Fake(1, true)),  // atom 5..6
            ],
        };
        let tech = Tech::virtex2pro();
        // cuts after atom 2 and atom 5 → 3 stages
        let stages = dp.assign_stages(FpFormat::SINGLE, &tech, &[2, 5]);
        assert_eq!(stages, vec![0, 0, 1, 2]);
        // no cuts → single stage
        let stages = dp.assign_stages(FpFormat::SINGLE, &tech, &[]);
        assert_eq!(stages, vec![0, 0, 0, 0]);
    }

    #[test]
    fn eval_all_runs_in_order() {
        let dp = Datapath {
            subunits: vec![Box::new(Fake(1, true)), Box::new(Fake(1, true))],
        };
        let mut s = Signals::inject(0, 0, false);
        dp.eval_all(FpFormat::SINGLE, RoundMode::NearestEven, &mut s);
        assert_eq!(s.exp, 2);
    }
}
