//! Design-space analysis: the data behind the paper's Figure 2 and
//! Tables 1-2.
//!
//! For each precision the pipeline depth is swept from 1 to the
//! datapath's maximum; three named points are extracted per sweep:
//!
//! * **min** — the least-pipelined implementation (a single output
//!   register level);
//! * **max** — the deepest implementation evaluated;
//! * **opt** — "the implementation \[that\] reaches highest freq/area
//!   ratio", the paper's recommended operating point.

use crate::cache::SweepCache;
use crate::generator::{sweep_for, UnitOp};
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_softfp::FpFormat;

/// Which core a sweep describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// The adder/subtractor.
    Adder,
    /// The multiplier.
    Multiplier,
    /// The digit-recurrence divider.
    Divider,
    /// The digit-recurrence square root.
    Sqrt,
}

impl CoreKind {
    /// The generator operation this core kind sweeps.
    pub fn unit_op(self) -> UnitOp {
        match self {
            CoreKind::Adder => UnitOp::Add,
            CoreKind::Multiplier => UnitOp::Mul,
            CoreKind::Divider => UnitOp::Div,
            CoreKind::Sqrt => UnitOp::Sqrt,
        }
    }
}

/// A full pipeline-depth sweep for one core and format.
#[derive(Clone, Debug)]
pub struct CoreSweep {
    /// Which core.
    pub kind: CoreKind,
    /// Operand format.
    pub format: FpFormat,
    /// One report per depth, ascending from 1 stage.
    pub reports: Vec<ImplementationReport>,
}

/// Staged configuration for a [`CoreSweep`]: pick the core and format,
/// optionally attach a [`SweepCache`], then [`run`](CoreSweepBuilder::run).
///
/// This is the single entry point that replaced the
/// `CoreSweep::new` / `CoreSweep::new_cached` pair.
#[derive(Clone, Copy)]
pub struct CoreSweepBuilder<'a> {
    kind: CoreKind,
    format: FpFormat,
    cache: Option<&'a SweepCache>,
}

impl<'a> CoreSweepBuilder<'a> {
    /// Memoize the depth sweep through `cache`: a warm cache returns the
    /// stored reports without re-synthesizing.
    pub fn cached<'b>(self, cache: &'b SweepCache) -> CoreSweepBuilder<'b> {
        CoreSweepBuilder {
            kind: self.kind,
            format: self.format,
            cache: Some(cache),
        }
    }

    /// Run the sweep against a technology and synthesis flow.
    pub fn run(self, tech: &Tech, opts: SynthesisOptions) -> CoreSweep {
        let reports = match self.cache {
            Some(cache) => cache
                .sweep(self.kind.unit_op(), self.format, tech, opts)
                .to_vec(),
            None => sweep_for(self.kind.unit_op(), self.format, tech, opts),
        };
        CoreSweep {
            kind: self.kind,
            format: self.format,
            reports,
        }
    }
}

impl CoreSweep {
    /// Start configuring a sweep — the unified entry point for cached
    /// and uncached construction.
    ///
    /// ```
    /// use fpfpga_fpu::analysis::{CoreKind, CoreSweep};
    /// use fpfpga_fpu::prelude::*;
    ///
    /// let tech = Tech::virtex2pro();
    /// let sweep = CoreSweep::builder(CoreKind::Divider, FpFormat::SINGLE)
    ///     .run(&tech, SynthesisOptions::SPEED);
    /// assert!(sweep.opt().clock_mhz > 100.0);
    ///
    /// // Memoized through a cache:
    /// let cache = fpfpga_fpu::cache::SweepCache::new();
    /// let warmed = CoreSweep::builder(CoreKind::Divider, FpFormat::SINGLE)
    ///     .cached(&cache)
    ///     .run(&tech, SynthesisOptions::SPEED);
    /// assert_eq!(warmed.reports, sweep.reports);
    /// ```
    pub fn builder(kind: CoreKind, format: FpFormat) -> CoreSweepBuilder<'static> {
        CoreSweepBuilder {
            kind,
            format,
            cache: None,
        }
    }

    /// Sweep any core kind without a cache.
    #[deprecated(
        since = "0.6.0",
        note = "use `CoreSweep::builder(kind, format).run(tech, opts)`"
    )]
    pub fn new(kind: CoreKind, format: FpFormat, tech: &Tech, opts: SynthesisOptions) -> CoreSweep {
        CoreSweep::builder(kind, format).run(tech, opts)
    }

    /// Sweep through a [`SweepCache`].
    #[deprecated(
        since = "0.6.0",
        note = "use `CoreSweep::builder(kind, format).cached(cache).run(tech, opts)`"
    )]
    pub fn new_cached(
        kind: CoreKind,
        format: FpFormat,
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> CoreSweep {
        CoreSweep::builder(kind, format)
            .cached(cache)
            .run(tech, opts)
    }

    /// Sweep an adder (shorthand for [`CoreSweep::builder`]).
    pub fn adder(format: FpFormat, tech: &Tech, opts: SynthesisOptions) -> CoreSweep {
        CoreSweep::builder(CoreKind::Adder, format).run(tech, opts)
    }

    /// Sweep a multiplier (shorthand for [`CoreSweep::builder`]).
    pub fn multiplier(format: FpFormat, tech: &Tech, opts: SynthesisOptions) -> CoreSweep {
        CoreSweep::builder(CoreKind::Multiplier, format).run(tech, opts)
    }

    /// The least-pipelined implementation.
    pub fn min(&self) -> &ImplementationReport {
        self.reports.first().expect("non-empty sweep")
    }

    /// The deepest implementation.
    pub fn max(&self) -> &ImplementationReport {
        self.reports.last().expect("non-empty sweep")
    }

    /// The highest-freq/area implementation (the paper's "opt").
    pub fn opt(&self) -> &ImplementationReport {
        timing::optimal(&self.reports)
    }

    /// The fastest implementation regardless of area.
    pub fn fastest(&self) -> &ImplementationReport {
        timing::max_frequency(&self.reports)
    }

    /// The shallowest implementation reaching at least `mhz` — used when
    /// the kernel's operating frequency, not the unit's peak, is the
    /// binding constraint (Section 4.2: "if the overall architecture's
    /// operating frequency is less than the optimal frequency for the
    /// floating-point unit then floating-point units with the best
    /// frequency/area metric considering a lower frequency have to be
    /// chosen").
    pub fn cheapest_at(&self, mhz: f64) -> Option<&ImplementationReport> {
        self.reports
            .iter()
            .filter(|r| r.clock_mhz >= mhz)
            .min_by(|a, b| a.slices.cmp(&b.slices).then(a.stages.cmp(&b.stages)))
    }

    /// (stages, MHz/slice) series — one Figure 2 curve.
    pub fn freq_area_curve(&self) -> Vec<(u32, f64)> {
        self.reports
            .iter()
            .map(|r| (r.stages, r.freq_per_area()))
            .collect()
    }
}

/// The six sweeps (2 cores × 3 precisions) the paper's evaluation rests
/// on, computed once.
#[derive(Clone, Debug)]
pub struct PrecisionAnalysis {
    /// Adder sweeps for 32-, 48- and 64-bit.
    pub adders: Vec<CoreSweep>,
    /// Multiplier sweeps for 32-, 48- and 64-bit.
    pub multipliers: Vec<CoreSweep>,
}

impl PrecisionAnalysis {
    /// Run the full analysis with the paper's default flow.
    pub fn run(tech: &Tech, opts: SynthesisOptions) -> PrecisionAnalysis {
        PrecisionAnalysis {
            adders: FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| CoreSweep::adder(f, tech, opts))
                .collect(),
            multipliers: FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| CoreSweep::multiplier(f, tech, opts))
                .collect(),
        }
    }

    /// [`PrecisionAnalysis::run`] backed by a [`SweepCache`]: re-running
    /// the analysis against a warm cache performs zero synthesis.
    pub fn run_cached(
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> PrecisionAnalysis {
        PrecisionAnalysis {
            adders: FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| {
                    CoreSweep::builder(CoreKind::Adder, f)
                        .cached(cache)
                        .run(tech, opts)
                })
                .collect(),
            multipliers: FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| {
                    CoreSweep::builder(CoreKind::Multiplier, f)
                        .cached(cache)
                        .run(tech, opts)
                })
                .collect(),
        }
    }

    /// [`PrecisionAnalysis::run`] with the six independent sweeps fanned
    /// out over scoped threads. Deterministic: results are identical to
    /// the sequential run (each sweep is a pure function of its inputs).
    pub fn run_parallel(tech: &Tech, opts: SynthesisOptions) -> PrecisionAnalysis {
        std::thread::scope(|scope| {
            let adder_handles: Vec<_> = FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| scope.spawn(move || CoreSweep::adder(f, tech, opts)))
                .collect();
            let mult_handles: Vec<_> = FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| scope.spawn(move || CoreSweep::multiplier(f, tech, opts)))
                .collect();
            PrecisionAnalysis {
                adders: adder_handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep panicked"))
                    .collect(),
                multipliers: mult_handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep panicked"))
                    .collect(),
            }
        })
    }

    /// [`PrecisionAnalysis::run_parallel`] through a shared
    /// [`SweepCache`]: cold, the six sweeps synthesize concurrently and
    /// populate the cache; warm, every thread returns memoized reports.
    pub fn run_parallel_cached(
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> PrecisionAnalysis {
        std::thread::scope(|scope| {
            let adder_handles: Vec<_> = FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| {
                    let cache = cache.clone();
                    scope.spawn(move || {
                        CoreSweep::builder(CoreKind::Adder, f)
                            .cached(&cache)
                            .run(tech, opts)
                    })
                })
                .collect();
            let mult_handles: Vec<_> = FpFormat::PAPER_PRECISIONS
                .iter()
                .map(|&f| {
                    let cache = cache.clone();
                    scope.spawn(move || {
                        CoreSweep::builder(CoreKind::Multiplier, f)
                            .cached(&cache)
                            .run(tech, opts)
                    })
                })
                .collect();
            PrecisionAnalysis {
                adders: adder_handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep panicked"))
                    .collect(),
                multipliers: mult_handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep panicked"))
                    .collect(),
            }
        })
    }

    /// The sweep for a given core kind and format.
    pub fn sweep(&self, kind: CoreKind, format: FpFormat) -> &CoreSweep {
        let list = match kind {
            CoreKind::Adder => &self.adders,
            CoreKind::Multiplier => &self.multipliers,
            other => panic!(
                "PrecisionAnalysis covers the paper's adder/multiplier study; \
                 sweep {other:?} directly via CoreSweep::builder"
            ),
        };
        list.iter()
            .find(|s| s.format == format)
            .expect("format is one of the paper precisions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis() -> PrecisionAnalysis {
        PrecisionAnalysis::run(&Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn opt_is_interior_point() {
        // "the curves flatten out towards the end and may dip for deep
        // pipelining" — the optimum is neither min nor max.
        for sweep in analysis().adders.iter().chain(&analysis().multipliers) {
            let opt = sweep.opt();
            assert!(
                opt.stages > sweep.min().stages,
                "{:?} {:?}",
                sweep.kind,
                sweep.format
            );
            assert!(
                opt.stages < sweep.max().stages,
                "{:?} {:?}",
                sweep.kind,
                sweep.format
            );
        }
    }

    #[test]
    fn wider_formats_are_bigger_and_slower() {
        let a = analysis();
        for sweeps in [&a.adders, &a.multipliers] {
            for w in sweeps.windows(2) {
                assert!(
                    w[1].opt().slices > w[0].opt().slices,
                    "{:?}: {} vs {}",
                    w[1].kind,
                    w[1].opt().slices,
                    w[0].opt().slices
                );
                assert!(w[1].fastest().clock_mhz <= w[0].fastest().clock_mhz + 1e-9);
            }
        }
    }

    #[test]
    fn paper_headline_rates() {
        // "We achieve throughput rates of more than 240 MHz (200 MHz) for
        // single (double) precision operations by deeply pipelining."
        let a = analysis();
        assert!(
            a.sweep(CoreKind::Adder, FpFormat::SINGLE)
                .fastest()
                .clock_mhz
                > 240.0
        );
        assert!(
            a.sweep(CoreKind::Multiplier, FpFormat::SINGLE)
                .fastest()
                .clock_mhz
                > 240.0
        );
        assert!(
            a.sweep(CoreKind::Adder, FpFormat::DOUBLE)
                .fastest()
                .clock_mhz
                > 200.0
        );
        assert!(
            a.sweep(CoreKind::Multiplier, FpFormat::DOUBLE)
                .fastest()
                .clock_mhz
                > 200.0
        );
    }

    #[test]
    fn cheapest_at_prefers_fewer_slices() {
        let a = analysis();
        let sweep = a.sweep(CoreKind::Adder, FpFormat::SINGLE);
        let cheap = sweep.cheapest_at(150.0).expect("150 MHz is reachable");
        assert!(cheap.clock_mhz >= 150.0);
        assert!(cheap.slices <= sweep.fastest().slices);
        assert!(sweep.cheapest_at(10_000.0).is_none());
    }

    #[test]
    fn parallel_run_is_deterministic() {
        let tech = Tech::virtex2pro();
        let seq = PrecisionAnalysis::run(&tech, SynthesisOptions::SPEED);
        let par = PrecisionAnalysis::run_parallel(&tech, SynthesisOptions::SPEED);
        for (a, b) in seq.adders.iter().zip(&par.adders) {
            assert_eq!(a.reports, b.reports);
        }
        for (a, b) in seq.multipliers.iter().zip(&par.multipliers) {
            assert_eq!(a.reports, b.reports);
        }
    }

    #[test]
    fn unified_constructor_matches_wrappers_and_covers_new_kinds() {
        let tech = Tech::virtex2pro();
        let opts = SynthesisOptions::SPEED;
        let via_builder = CoreSweep::builder(CoreKind::Adder, FpFormat::SINGLE).run(&tech, opts);
        let via_wrapper = CoreSweep::adder(FpFormat::SINGLE, &tech, opts);
        assert_eq!(via_builder.reports, via_wrapper.reports);
        for kind in [CoreKind::Divider, CoreKind::Sqrt] {
            let sweep = CoreSweep::builder(kind, FpFormat::SINGLE).run(&tech, opts);
            assert_eq!(sweep.kind, kind);
            assert!(!sweep.reports.is_empty());
            assert!(sweep.opt().clock_mhz > 0.0);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_builder() {
        let tech = Tech::virtex2pro();
        let opts = SynthesisOptions::SPEED;
        let cache = crate::cache::SweepCache::new();
        let built = CoreSweep::builder(CoreKind::Adder, FpFormat::SINGLE).run(&tech, opts);
        let legacy = CoreSweep::new(CoreKind::Adder, FpFormat::SINGLE, &tech, opts);
        assert_eq!(built.reports, legacy.reports);
        let legacy_cached =
            CoreSweep::new_cached(CoreKind::Adder, FpFormat::SINGLE, &tech, opts, &cache);
        assert_eq!(built.reports, legacy_cached.reports);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn cached_runs_are_identical_and_warm_runs_skip_synthesis() {
        let tech = Tech::virtex2pro();
        let opts = SynthesisOptions::SPEED;
        let cache = crate::cache::SweepCache::new();
        let cold = PrecisionAnalysis::run_parallel_cached(&tech, opts, &cache);
        assert_eq!(cache.misses(), 6, "2 cores x 3 precisions");
        let warm = PrecisionAnalysis::run_cached(&tech, opts, &cache);
        assert_eq!(cache.misses(), 6, "warm run must not synthesize");
        assert_eq!(cache.hits(), 6);
        let plain = PrecisionAnalysis::run(&tech, opts);
        for runs in [&cold, &warm] {
            for (a, b) in plain.adders.iter().zip(&runs.adders) {
                assert_eq!(a.reports, b.reports);
            }
            for (a, b) in plain.multipliers.iter().zip(&runs.multipliers) {
                assert_eq!(a.reports, b.reports);
            }
        }
    }

    #[test]
    fn curves_have_one_point_per_depth() {
        let a = analysis();
        for s in a.adders.iter().chain(&a.multipliers) {
            let curve = s.freq_area_curve();
            assert_eq!(curve.len(), s.reports.len());
            assert_eq!(curve[0].0, 1);
            for w in curve.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1);
            }
        }
    }
}
