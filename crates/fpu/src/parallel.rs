//! Deterministic data-parallel fan-out over scoped threads.
//!
//! The batched matmul kernels and the conformance sweeps are
//! embarrassingly parallel over independent work items, but this
//! repository vendors no threadpool crate — and does not need one:
//! [`std::thread::scope`] borrows the work list directly, and joining
//! the workers in spawn order keeps the output ordering (and therefore
//! every downstream byte) identical regardless of the worker count.

use std::num::NonZeroUsize;

/// Split `len` items into at most `parts` contiguous ranges of
/// near-equal size (the first `len % parts` ranges get one extra item).
/// Returns fewer ranges when there are fewer items than parts; never
/// returns an empty range.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Number of worker threads to use for `requested` (0 = one per
/// available CPU).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Map `f` over `items` with up to `threads` scoped workers, returning
/// results **in item order** — bit-identical output for every thread
/// count, including 1 (which runs inline without spawning).
///
/// Each worker owns one contiguous chunk, so `f` sees items in the same
/// order a sequential loop would within its chunk, and chunk results are
/// reassembled in chunk order.
pub fn parallel_map_slice<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ranges = chunk_ranges(items.len(), threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                let f = &f;
                scope.spawn(move || {
                    items[r.clone()]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(r.start + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel_map_slice worker panicked"));
        }
    });
    out
}

/// Run `f` once per chunk of `items`, in parallel, mutating disjoint
/// `&mut` chunks — the shape the matmul linear array needs (each PE is
/// independent state). Chunks are contiguous and processed in spawn
/// order; `f` receives the chunk's starting index in `items`.
pub fn parallel_chunks_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        f(0, items);
        return;
    }
    let ranges = chunk_ranges(items.len(), threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut consumed = 0;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let start = consumed;
            consumed += r.len();
            scope.spawn(move || f(start, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 16, 100, 1001] {
            for parts in [1usize, 2, 3, 4, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} parts={parts}");
                    assert!(!r.is_empty(), "len={len} parts={parts}");
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} parts={parts}");
                assert!(ranges.len() <= parts.min(len.max(1)));
            }
        }
    }

    #[test]
    fn map_order_is_thread_count_invariant() {
        let items: Vec<u64> = (0..257).collect();
        let sequential = parallel_map_slice(1, &items, |i, &x| (i as u64) * 1000 + x * x);
        for threads in [2, 3, 4, 7, 64] {
            let parallel = parallel_map_slice(threads, &items, |i, &x| (i as u64) * 1000 + x * x);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_slice(4, &empty, |_, &x| x).is_empty());
        assert_eq!(
            parallel_map_slice(4, &[42u32], |i, &x| x + i as u32),
            vec![42]
        );
        // 0 = auto (one per CPU); still ordered.
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(parallel_map_slice(0, &items, |_, &x| x), items);
    }

    #[test]
    fn chunks_mut_touches_every_item_once() {
        let mut items: Vec<u64> = vec![0; 1003];
        parallel_chunks_mut(5, &mut items, |start, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot += (start + i) as u64 + 1;
            }
        });
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn chunks_mut_single_thread_runs_inline() {
        let mut items = vec![1u8, 2, 3];
        parallel_chunks_mut(1, &mut items, |start, chunk| {
            assert_eq!(start, 0);
            for v in chunk {
                *v *= 2;
            }
        });
        assert_eq!(items, vec![2, 4, 6]);
    }
}
