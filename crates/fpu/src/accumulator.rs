//! Streaming floating-point accumulator core.
//!
//! Summing a stream through a deeply pipelined adder is the classic
//! reduction problem (cf. Nagar & Bakos, *"An Integrated Reduction
//! Technique for a Double Precision Accumulator"*): a single feedback
//! accumulator would only accept one input every `La` cycles. This core
//! is the standard solution as a reusable unit: a bank of `La` partial
//! sums rotates under the adder (each slot revisited exactly `La` cycles
//! apart — hazard-free at full rate), and a fold sequencer drains the
//! bank through the same adder when the stream ends.
//!
//! Structurally: one FP adder + a `La`-deep partial-sum register file +
//! a small rotation counter and fold FSM.

use crate::adder::AdderDesign;
use crate::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_fabric::netlist::{Component, Netlist};
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};
use std::collections::VecDeque;

/// A streaming accumulator design.
#[derive(Clone, Copy, Debug)]
pub struct AccumulatorDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode.
    pub round: RoundMode,
    /// Adder pipeline stages (= bank size).
    pub adder_stages: u32,
}

impl AccumulatorDesign {
    /// A design around an adder of the given depth.
    pub fn new(format: FpFormat, adder_stages: u32) -> AccumulatorDesign {
        assert!(adder_stages >= 1);
        AccumulatorDesign {
            format,
            round: RoundMode::NearestEven,
            adder_stages,
        }
    }

    /// The structural netlist: the adder core plus the partial-sum bank
    /// and control.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let mut n = AdderDesign::new(self.format).netlist(tech);
        n.name = format!("fp{} streaming accumulator", self.format.total_bits());
        // Partial-sum register file (La words) — registers, not BRAM, at
        // these depths.
        n.components.push(Component::parallel(
            "partial-sum bank",
            &Primitive::Register {
                bits: self.format.total_bits() * self.adder_stages,
            },
            tech,
        ));
        // Rotation counter + fold FSM.
        n.components.push(Component::parallel(
            "rotation counter / fold FSM",
            &Primitive::ConstAdder { bits: 8 },
            tech,
        ));
        n.components.push(Component::from_primitive(
            "bank bypass mux",
            &Primitive::Mux2 {
                bits: self.format.total_bits(),
            },
            tech,
        ));
        n
    }

    /// Area/timing sweep of the whole unit.
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        timing::sweep_stages(
            &self.netlist(tech),
            PipelineStrategy::IterativeRefinement,
            opts,
            tech,
        )
    }

    /// Build the cycle-accurate unit.
    pub fn unit(&self) -> StreamingAccumulator {
        StreamingAccumulator {
            add: DelayLineUnit::new(self.format, self.round, DelayOp::Add, self.adder_stages),
            bank: vec![0; self.adder_stages as usize],
            meta: (0..self.adder_stages).map(|_| None).collect(),
            slot: 0,
            flags: Flags::NONE,
            cycles: 0,
        }
    }
}

/// The cycle-accurate streaming accumulator: one input per cycle.
pub struct StreamingAccumulator {
    add: DelayLineUnit,
    bank: Vec<u64>,
    meta: VecDeque<Option<usize>>,
    slot: usize,
    /// Accumulated exception flags.
    pub flags: Flags,
    /// Cycles consumed.
    pub cycles: u64,
}

impl StreamingAccumulator {
    /// Bank size (= adder latency).
    pub fn la(&self) -> usize {
        self.bank.len()
    }

    fn clock(&mut self, input: Option<u64>) {
        self.cycles += 1;
        // write-first forwarding, as everywhere else in the library
        let retiring = *self.meta.front().expect("meta non-empty");
        if let (Some((s, sf)), Some(slot)) = (self.add.peek(), retiring) {
            self.flags |= sf;
            self.bank[slot] = s;
        }
        let add_in = input.map(|x| {
            let slot = self.slot;
            self.slot = (self.slot + 1) % self.bank.len();
            self.meta.push_back(Some(slot));
            (x, self.bank[slot])
        });
        if add_in.is_none() {
            self.meta.push_back(None);
        }
        self.add.clock(add_in);
        self.meta.pop_front();
    }

    /// Accumulate a stream and fold to a single sum. Returns
    /// `(sum_bits, cycles)`.
    pub fn sum(&mut self, xs: &[u64]) -> (u64, u64) {
        let start = self.cycles;
        self.bank.fill(0);
        self.slot = 0;
        for &x in xs {
            self.clock(Some(x));
        }
        for _ in 0..self.la() + 1 {
            self.clock(None);
        }
        // Fold the bank pairwise through the same adder (sequencer).
        let mut live = self.bank.clone();
        while live.len() > 1 {
            let mut next = Vec::with_capacity(live.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < live.len() {
                let mut out = None;
                let mut first = true;
                while out.is_none() {
                    self.cycles += 1;
                    out = self.add.clock(if first {
                        Some((live[i], live[i + 1]))
                    } else {
                        None
                    });
                    self.meta.push_back(None);
                    self.meta.pop_front();
                    first = false;
                }
                let (s, sf) = out.unwrap();
                self.flags |= sf;
                next.push(s);
                i += 2;
            }
            if i < live.len() {
                next.push(live[i]);
            }
            live = next;
        }
        (live[0], self.cycles - start)
    }

    /// The exact accumulation order as plain softfp calls.
    pub fn reference(fmt: FpFormat, mode: RoundMode, xs: &[u64], la: usize) -> u64 {
        let mut bank = vec![SoftFloat::zero(fmt); la];
        for (i, &x) in xs.iter().enumerate() {
            let (s, _) = SoftFloat::from_bits(fmt, x).add(&bank[i % la], mode);
            bank[i % la] = s;
        }
        let mut live = bank;
        while live.len() > 1 {
            let mut next = Vec::with_capacity(live.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < live.len() {
                let (s, _) = live[i].add(&live[i + 1], mode);
                next.push(s);
                i += 2;
            }
            if i < live.len() {
                next.push(live[i]);
            }
            live = next;
        }
        live[0].bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;

    fn xs(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| SoftFloat::from_f64(F, (i as f64 * 0.17).sin()).bits())
            .collect()
    }

    #[test]
    fn matches_reference_bit_exact() {
        for la in [1u32, 3, 9, 14] {
            for n in [0usize, 1, 5, 64, 200] {
                let d = AccumulatorDesign::new(F, la);
                let mut u = d.unit();
                let data = xs(n);
                let (got, _) = u.sum(&data);
                let want =
                    StreamingAccumulator::reference(F, RoundMode::NearestEven, &data, la as usize);
                assert_eq!(got, want, "la={la} n={n}");
            }
        }
    }

    #[test]
    fn full_rate_streaming() {
        let d = AccumulatorDesign::new(F, 9);
        let mut u = d.unit();
        let n = 1000;
        let (_, cycles) = u.sum(&xs(n));
        assert!(cycles < n as u64 + 150, "cycles = {cycles}");
    }

    #[test]
    fn close_to_f64() {
        let d = AccumulatorDesign::new(F, 11);
        let mut u = d.unit();
        let data = xs(500);
        let (got, _) = u.sum(&data);
        let exact: f64 = data
            .iter()
            .map(|&b| SoftFloat::from_bits(F, b).to_f64())
            .sum();
        assert!((SoftFloat::from_bits(F, got).to_f64() - exact).abs() < 1e-4);
    }

    #[test]
    fn netlist_includes_bank() {
        let tech = Tech::virtex2pro();
        let d = AccumulatorDesign::new(FpFormat::DOUBLE, 12);
        let n = d.netlist(&tech);
        let adder = AdderDesign::new(FpFormat::DOUBLE).netlist(&tech);
        assert!(n.base_area().ffs > adder.base_area().ffs + 64.0 * 11.0);
        let sweep = d.sweep(&tech, SynthesisOptions::SPEED);
        assert!(timing::optimal(&sweep).clock_mhz > 150.0);
    }

    #[test]
    fn empty_stream_sums_to_zero() {
        let mut u = AccumulatorDesign::new(F, 5).unit();
        let (got, _) = u.sum(&[]);
        assert_eq!(got, 0);
    }
}
