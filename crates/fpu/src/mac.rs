//! Fused multiply-add core.
//!
//! The paper's matmul PE chains a multiplier into an adder: two
//! normalize/round stages, two roundings. A fused MAC keeps the product
//! exact, aligns the addend against it in one wide datapath and rounds
//! once. On this fabric model, compared at a matched clock, fusion is
//! **shorter in latency** (one normalize/round instead of two) and
//! **tighter numerically** (single rounding), while its area is roughly
//! a wash: the alignment/normalize datapath doubles in width to cover
//! the exact product, but the intermediate rounder and packing
//! disappear — slightly cheaper at 64-bit, slightly costlier at 32-bit.
//! [`MacComparison`] quantifies it; the simulator is backed by the
//! bit-exact `fpfpga-softfp::ops::fma`.

use fpfpga_fabric::netlist::Netlist;
use fpfpga_fabric::primitives::{log2_ceil, Primitive};
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use fpfpga_fabric::PipelineStrategy;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use std::collections::VecDeque;

/// A fused multiply-add core design.
#[derive(Clone, Copy, Debug)]
pub struct FusedMacDesign {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode of the built simulators.
    pub round: RoundMode,
}

impl FusedMacDesign {
    /// A design with the paper-consistent defaults.
    pub fn new(format: FpFormat) -> FusedMacDesign {
        FusedMacDesign {
            format,
            round: RoundMode::NearestEven,
        }
    }

    /// The structural netlist: denormalize, mantissa multiplier, wide
    /// addend alignment, wide adder, leading-zero detect + normalize,
    /// one rounding.
    pub fn netlist(&self, tech: &Tech) -> Netlist {
        let fmt = self.format;
        let wide = 2 * fmt.sig_bits() + 4; // exact product + guard bits
        let mut n = Netlist::new(
            &format!("fp{} fused MAC", fmt.total_bits()),
            fmt.total_bits(),
            fmt.exp_bits() + 6,
        );
        let cmp = Primitive::Comparator {
            bits: fmt.exp_bits(),
        };
        n.push("denorm cmp A", &cmp, tech);
        n.push_parallel("denorm cmp B", &cmp, tech);
        n.push_parallel("denorm cmp C", &cmp, tech);
        n.push_parallel("exception logic", &Primitive::SignLogic, tech);
        n.push(
            "mantissa multiplier",
            &Primitive::Mult18Tree {
                bits: fmt.sig_bits(),
            },
            tech,
        );
        n.push_parallel(
            "exponent adder",
            &Primitive::FixedAdder {
                bits: fmt.exp_bits(),
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        );
        // The addend aligns against the wide product (runs concurrently
        // with the tail of the multiplier tree in real designs; kept on
        // the critical path here as the conservative choice).
        n.push(
            "wide align shifter",
            &Primitive::BarrelShifter {
                bits: wide,
                levels: log2_ceil(wide),
            },
            tech,
        );
        n.push(
            "wide adder",
            &Primitive::FixedAdder {
                bits: wide,
                carry_ns_per_bit: 0.05,
            },
            tech,
        );
        n.push(
            "leading-zero detect",
            &Primitive::PriorityEncoder {
                bits: wide,
                forced: true,
            },
            tech,
        );
        n.push(
            "normalize shifter",
            &Primitive::BarrelShifter {
                bits: wide,
                levels: log2_ceil(wide),
            },
            tech,
        );
        n.push(
            "round adder",
            &Primitive::ConstAdder {
                bits: fmt.sig_bits(),
            },
            tech,
        );
        n.push_parallel(
            "exponent round adder",
            &Primitive::ConstAdder {
                bits: fmt.exp_bits(),
            },
            tech,
        );
        n.push(
            "output mux",
            &Primitive::Mux2 {
                bits: fmt.total_bits(),
            },
            tech,
        );
        n
    }

    /// Sweep pipeline depth.
    pub fn sweep(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<ImplementationReport> {
        timing::sweep_stages(
            &self.netlist(tech),
            PipelineStrategy::IterativeRefinement,
            opts,
            tech,
        )
    }

    /// A latency-faithful simulator (one fused op per cycle).
    pub fn unit(&self, stages: u32) -> FusedMacUnit {
        FusedMacUnit {
            fmt: self.format,
            mode: self.round,
            line: (0..stages.max(1)).map(|_| None).collect(),
            stages: stages.max(1),
        }
    }
}

/// A pipelined fused-MAC unit: inject `(a, b, c)` per cycle, receive
/// `round(a·b + c)` `stages` cycles later.
pub struct FusedMacUnit {
    fmt: FpFormat,
    mode: RoundMode,
    line: VecDeque<Option<(u64, Flags)>>,
    stages: u32,
}

impl FusedMacUnit {
    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u32 {
        self.stages
    }

    /// Advance one clock, optionally injecting `(a, b, c)`.
    pub fn clock(&mut self, input: Option<(u64, u64, u64)>) -> Option<(u64, Flags)> {
        let computed =
            input.map(|(a, b, c)| fpfpga_softfp::fastpath::fma_bits(self.fmt, a, b, c, self.mode));
        self.line.push_back(computed);
        self.line.pop_front().expect("line non-empty")
    }

    /// The value retiring on the next clock (write-first forwarding).
    pub fn peek(&self) -> Option<(u64, Flags)> {
        *self.line.front().expect("line non-empty")
    }

    /// Batched counterpart of driving [`FusedMacUnit::clock`] once per
    /// input and then draining: retire everything in flight, then
    /// compute the whole batch. Results are bit-identical to the
    /// per-cycle path because bundles in a delay line never interact.
    pub fn run_batch(&mut self, inputs: &[(u64, u64, u64)]) -> Vec<(u64, Flags)> {
        let mut out = Vec::with_capacity(self.line.len() + inputs.len());
        self.run_batch_into(inputs, &mut out);
        out
    }

    /// Like [`FusedMacUnit::run_batch`] but appending into a
    /// caller-provided buffer; the batch is evaluated through the
    /// monomorphized `softfp::fastpath` fma kernels with one format
    /// dispatch per slice.
    pub fn run_batch_into(&mut self, inputs: &[(u64, u64, u64)], out: &mut Vec<(u64, Flags)>) {
        out.reserve(self.line.len() + inputs.len());
        for slot in self.line.iter_mut() {
            if let Some(r) = slot.take() {
                out.push(r);
            }
        }
        fpfpga_softfp::fma_triples_batch(self.fmt, inputs, self.mode, out);
    }
}

/// The fused-vs-separate comparison at a *matched clock*: the separate
/// pair is taken at its freq/area optimum, and the fused core at the
/// shallowest depth sustaining at least that clock — the fair basis for
/// the latency question.
#[derive(Clone, Debug)]
pub struct MacComparison {
    /// Operand format.
    pub format: FpFormat,
    /// The fused core at the matched clock.
    pub fused: ImplementationReport,
    /// Combined slices of the separate multiplier + adder optima.
    pub separate_slices: u32,
    /// Combined latency (stages) of the separate pair.
    pub separate_stages: u32,
    /// The slower of the two separate units' clocks (MHz) — the matched
    /// clock.
    pub separate_clock_mhz: f64,
}

impl MacComparison {
    /// Build the comparison for one format.
    pub fn build(format: FpFormat, tech: &Tech, opts: SynthesisOptions) -> MacComparison {
        let fused_sweep = FusedMacDesign::new(format).sweep(tech, opts);
        let mul = crate::analysis::CoreSweep::multiplier(format, tech, opts);
        let add = crate::analysis::CoreSweep::adder(format, tech, opts);
        let clock = mul.opt().clock_mhz.min(add.opt().clock_mhz);
        let fused = fused_sweep
            .iter()
            .find(|r| r.clock_mhz >= clock)
            .unwrap_or_else(|| timing::max_frequency(&fused_sweep))
            .clone();
        MacComparison {
            format,
            fused,
            separate_slices: mul.opt().slices + add.opt().slices,
            separate_stages: mul.opt().stages + add.opt().stages,
            separate_clock_mhz: clock,
        }
    }

    /// Relative slice cost of fusion (positive = fused larger; the wide
    /// datapath outweighs the deleted intermediate rounder on LUT
    /// fabrics).
    pub fn slice_overhead(&self) -> f64 {
        self.fused.slices as f64 / self.separate_slices as f64 - 1.0
    }

    /// Latency saving in stages (positive = fused shorter).
    pub fn stage_saving(&self) -> i64 {
        self.separate_stages as i64 - self.fused.stages as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_computes_fused_results() {
        let d = FusedMacDesign::new(FpFormat::SINGLE);
        let mut u = d.unit(6);
        let (a, b, c) = (1.5f32, 2.0f32, 0.25f32);
        let mut out = u.clock(Some((
            a.to_bits() as u64,
            b.to_bits() as u64,
            c.to_bits() as u64,
        )));
        let mut waited = 0;
        while out.is_none() {
            out = u.clock(None);
            waited += 1;
        }
        assert_eq!(waited, 6, "result emerges `stages` clocks after injection");
        assert_eq!(f32::from_bits(out.unwrap().0 as u32), 3.25);
    }

    #[test]
    fn fused_differs_from_two_step_numerically() {
        let fmt = FpFormat::SINGLE;
        let a = 1.0f32 + f32::EPSILON;
        let b = 1.0f32 - f32::EPSILON / 2.0;
        let c = -1.0f32;
        let mut u = FusedMacDesign::new(fmt).unit(1);
        u.clock(Some((
            a.to_bits() as u64,
            b.to_bits() as u64,
            c.to_bits() as u64,
        )));
        let (fused, _) = u.clock(None).unwrap();
        let (p, _) = fpfpga_softfp::mul_bits(
            fmt,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        let (two, _) = fpfpga_softfp::add_bits(fmt, p, c.to_bits() as u64, RoundMode::NearestEven);
        assert_ne!(fused, two);
        assert_eq!(fused as u32, a.mul_add(b, c).to_bits());
    }

    #[test]
    fn fusion_trades_area_for_latency() {
        let tech = Tech::virtex2pro();
        for fmt in [FpFormat::SINGLE, FpFormat::DOUBLE] {
            let cmp = MacComparison::build(fmt, &tech, SynthesisOptions::SPEED);
            assert!(
                cmp.stage_saving() >= 0,
                "{fmt}: fused {} stages vs separate {}",
                cmp.fused.stages,
                cmp.separate_stages
            );
            // Area is a wash: within -20%..+60% of the separate pair.
            assert!(
                (-0.2..0.6).contains(&cmp.slice_overhead()),
                "{fmt}: fused {} vs separate {} slices",
                cmp.fused.slices,
                cmp.separate_slices
            );
        }
    }

    #[test]
    fn fused_netlist_has_one_rounder() {
        let tech = Tech::virtex2pro();
        let n = FusedMacDesign::new(FpFormat::DOUBLE).netlist(&tech);
        let rounders = n
            .components
            .iter()
            .filter(|c| c.name.contains("round") && !c.name.contains("exponent"))
            .count();
        assert_eq!(rounders, 1);
    }

    #[test]
    fn sweep_reaches_200mhz() {
        let tech = Tech::virtex2pro();
        let sweep = FusedMacDesign::new(FpFormat::SINGLE).sweep(&tech, SynthesisOptions::SPEED);
        let best = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        assert!(best > 200.0, "fused MAC peak = {best}");
    }
}
