//! # fpfpga-fpu — the paper's floating-point cores
//!
//! This crate implements Section 3 of Govindu et al. (IPPS 2004): a
//! floating-point adder/subtractor and multiplier whose **number of
//! pipeline stages is a first-class design parameter**, evaluated by the
//! **throughput/area** (MHz/slice) metric.
//!
//! Each core is described twice, from one source of truth:
//!
//! * **Behaviourally** — as an ordered list of [`subunit::Subunit`]s
//!   (denormalizer, swapper, align shifter, mantissa adder, priority
//!   encoder, normalizer, rounding, …) operating on a [`signals::Signals`]
//!   wire bundle. The [`sim::PipelinedUnit`] clocks bundles through the
//!   stages cycle by cycle, reproducing latency, initiation interval 1,
//!   the `DONE` side-band and per-stage exception forwarding. Results are
//!   bit-identical to `fpfpga-softfp` for **every** legal register
//!   placement (property-tested), because register placement is a timing
//!   decision, not a semantic one.
//! * **Structurally** — as a `fpfpga-fabric` [`fpfpga_fabric::Netlist`] of
//!   calibrated primitives, from which synthesis/P&R models derive
//!   slices, LUTs, flip-flops, BMULTs and the achievable clock rate for
//!   any pipeline depth and tool objective.
//!
//! [`analysis`] sweeps pipeline depth for the three paper precisions and
//! selects the *min*, *opt* (highest MHz/slice — the paper's definition
//! of optimal) and *max* configurations of Tables 1 and 2, and produces
//! the frequency/area-versus-stages curves of Figure 2.
//!
//! ## Quick example
//!
//! ```
//! use fpfpga_fpu::prelude::*;
//!
//! // Design-space sweep for a single-precision adder, through the
//! // builder entry point ([`CoreSweep::builder`] covers adder,
//! // multiplier, divider and square root):
//! let tech = Tech::virtex2pro();
//! let sweep = CoreSweep::builder(CoreKind::Adder, FpFormat::SINGLE)
//!     .run(&tech, SynthesisOptions::SPEED);
//! let opt = sweep.opt();
//! assert!(opt.clock_mhz > 150.0); // peak rate is higher still (> 240 MHz)
//!
//! // Cycle-accurate simulation of the chosen configuration, streamed
//! // through the batched engine. [`sim::FpPipe::run_batch`] is
//! // bit-identical — values and flags — to clocking the unit by hand
//! // and draining (property-tested):
//! let mut unit = AdderDesign::new(FpFormat::SINGLE).simulator(opt.stages);
//! let a = 1.5f32.to_bits() as u64;
//! let b = 2.25f32.to_bits() as u64;
//! let results = unit.run_batch(&[(a, b)]);
//! let (bits, _flags) = results[0];
//! assert_eq!(f32::from_bits(bits as u32), 3.75);
//! ```
//!
//! Repeated sweeps of the same design space can share a memoizing
//! [`cache::SweepCache`] (attach one with
//! [`CoreSweepBuilder::cached`](analysis::CoreSweepBuilder::cached) or
//! [`Generation::cached`](generator::Generation::cached); see also
//! [`PrecisionAnalysis::run_parallel_cached`]): the first sweep
//! synthesizes, warm sweeps are pure cache reads, and hit/miss counters
//! make redundant synthesis observable.

pub mod accumulator;
pub mod adder;
pub mod analysis;
pub mod cache;
pub mod config;
pub mod divider;
pub mod generator;
pub mod ieee_cost;
pub mod mac;
pub mod multiplier;
pub mod parallel;
pub mod signals;
pub mod sim;
pub mod stream;
pub mod subunit;
pub mod trace;

pub use accumulator::{AccumulatorDesign, StreamingAccumulator};
pub use adder::AdderDesign;
pub use analysis::{CoreKind, CoreSweep, CoreSweepBuilder, PrecisionAnalysis};
pub use cache::SweepCache;
pub use config::{CoreConfig, CoreConfigBuilder, OpKind};
pub use divider::{DividerDesign, SqrtDesign};
pub use generator::Generation;
pub use mac::{FusedMacDesign, FusedMacUnit, MacComparison};
pub use multiplier::MultiplierDesign;
pub use parallel::{chunk_ranges, parallel_chunks_mut, parallel_map_slice};
pub use sim::{DelayLineUnit, FpPipe, PipelinedUnit};
pub use stream::StreamSession;
pub use trace::Waveform;

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::adder::AdderDesign;
    pub use crate::analysis::{CoreKind, CoreSweep, CoreSweepBuilder, PrecisionAnalysis};
    pub use crate::cache::SweepCache;
    pub use crate::config::{CoreConfig, CoreConfigBuilder, OpKind};
    pub use crate::divider::{DividerDesign, SqrtDesign};
    pub use crate::multiplier::MultiplierDesign;
    pub use crate::sim::{DelayLineUnit, FpPipe, PipelinedUnit};
    pub use crate::stream::StreamSession;
    pub use fpfpga_fabric::{
        timing, Device, Netlist, Objective, PipelineStrategy, SynthesisOptions, Tech,
    };
    pub use fpfpga_softfp::{Flags, FpFormat, RoundMode};
}
