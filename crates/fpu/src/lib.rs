//! # fpfpga-fpu — the paper's floating-point cores
//!
//! This crate implements Section 3 of Govindu et al. (IPPS 2004): a
//! floating-point adder/subtractor and multiplier whose **number of
//! pipeline stages is a first-class design parameter**, evaluated by the
//! **throughput/area** (MHz/slice) metric.
//!
//! Each core is described twice, from one source of truth:
//!
//! * **Behaviourally** — as an ordered list of [`subunit::Subunit`]s
//!   (denormalizer, swapper, align shifter, mantissa adder, priority
//!   encoder, normalizer, rounding, …) operating on a [`signals::Signals`]
//!   wire bundle. The [`sim::PipelinedUnit`] clocks bundles through the
//!   stages cycle by cycle, reproducing latency, initiation interval 1,
//!   the `DONE` side-band and per-stage exception forwarding. Results are
//!   bit-identical to `fpfpga-softfp` for **every** legal register
//!   placement (property-tested), because register placement is a timing
//!   decision, not a semantic one.
//! * **Structurally** — as a `fpfpga-fabric` [`fpfpga_fabric::Netlist`] of
//!   calibrated primitives, from which synthesis/P&R models derive
//!   slices, LUTs, flip-flops, BMULTs and the achievable clock rate for
//!   any pipeline depth and tool objective.
//!
//! [`analysis`] sweeps pipeline depth for the three paper precisions and
//! selects the *min*, *opt* (highest MHz/slice — the paper's definition
//! of optimal) and *max* configurations of Tables 1 and 2, and produces
//! the frequency/area-versus-stages curves of Figure 2.
//!
//! ## Quick example
//!
//! ```
//! use fpfpga_fpu::prelude::*;
//!
//! // Design-space sweep for a single-precision adder:
//! let design = AdderDesign::new(FpFormat::SINGLE);
//! let sweep = design.sweep(&Tech::virtex2pro(), SynthesisOptions::SPEED);
//! let opt = fpfpga_fabric::timing::optimal(&sweep);
//! assert!(opt.clock_mhz > 150.0); // peak rate is higher still (> 240 MHz)
//!
//! // Cycle-accurate simulation of the chosen configuration:
//! let mut unit = design.simulator(opt.stages);
//! let a = 1.5f32.to_bits() as u64;
//! let b = 2.25f32.to_bits() as u64;
//! let mut out = None;
//! for cycle in 0..opt.stages + 1 {
//!     let input = if cycle == 0 { Some((a, b)) } else { None };
//!     out = unit.clock(input);
//! }
//! let (bits, _flags) = out.expect("result after `stages` cycles");
//! assert_eq!(f32::from_bits(bits as u32), 3.75);
//! ```

pub mod accumulator;
pub mod adder;
pub mod analysis;
pub mod config;
pub mod divider;
pub mod generator;
pub mod ieee_cost;
pub mod mac;
pub mod multiplier;
pub mod signals;
pub mod sim;
pub mod subunit;
pub mod trace;

pub use accumulator::{AccumulatorDesign, StreamingAccumulator};
pub use adder::AdderDesign;
pub use divider::{DividerDesign, SqrtDesign};
pub use analysis::{CoreSweep, PrecisionAnalysis};
pub use config::{CoreConfig, OpKind};
pub use mac::{FusedMacDesign, FusedMacUnit, MacComparison};
pub use multiplier::MultiplierDesign;
pub use sim::{DelayLineUnit, FpPipe, PipelinedUnit};
pub use trace::Waveform;

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::adder::AdderDesign;
    pub use crate::divider::{DividerDesign, SqrtDesign};
    pub use crate::analysis::{CoreSweep, PrecisionAnalysis};
    pub use crate::config::{CoreConfig, OpKind};
    pub use crate::multiplier::MultiplierDesign;
    pub use crate::sim::{DelayLineUnit, FpPipe, PipelinedUnit};
    pub use fpfpga_fabric::{
        timing, Device, Netlist, Objective, PipelineStrategy, SynthesisOptions, Tech,
    };
    pub use fpfpga_softfp::{Flags, FpFormat, RoundMode};
}
