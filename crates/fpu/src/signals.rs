//! The wire bundle that flows through a core's pipeline.
//!
//! `Signals` is the union of every inter-subunit bus in Figure 1 of the
//! paper (both cores). A subunit reads the fields its hardware inputs
//! correspond to and writes the fields its outputs correspond to; the
//! pipeline simulator moves whole bundles between stage latches. Fields
//! it does not own are simply carried forward — exactly what the
//! hardware's side-band registers do.

use fpfpga_softfp::{Flags, Unpacked};

/// All intermediate values of the adder and multiplier datapaths.
///
/// A real RTL bundle would be per-stage-subset; carrying the whole union
/// costs nothing in simulation and keeps the stage-assignment flexible
/// (any register placement yields the same values).
#[derive(Clone, Debug)]
pub struct Signals {
    // ---- operand bus ----
    /// Raw encoding of operand A.
    pub a_bits: u64,
    /// Raw encoding of operand B.
    pub b_bits: u64,
    /// Add/sub select (true = subtract): flips B's sign in stage 1.
    pub subtract: bool,

    // ---- stage 1: denormalization ----
    /// Operand A with hidden bit explicit.
    pub a: Unpacked,
    /// Operand B with hidden bit explicit (sign already flipped for sub).
    pub b: Unpacked,
    /// Resolved special-case result (∞/0/invalid paths), forwarded down
    /// the pipe and muxed over the arithmetic result at the output.
    pub special: Option<(u64, Flags)>,

    // ---- adder stage 1: swap + align ----
    /// Larger-magnitude operand after the swapper.
    pub hi: Unpacked,
    /// Smaller-magnitude operand after the swapper.
    pub lo: Unpacked,
    /// Exponent difference (alignment shift amount).
    pub align_shift: u32,
    /// Aligned smaller significand (GRS-extended, sticky jammed).
    pub lo_aligned: u64,

    // ---- multiplier stage 2 ----
    /// Raw significand product (2·sig_bits wide).
    pub product: u128,

    // ---- shared arithmetic state ----
    /// Magnitude in flight (GRS-extended for add; aligned product for mul).
    pub mag: u128,
    /// Result sign in flight.
    pub sign: bool,
    /// Unbiased result exponent in flight.
    pub exp: i32,
    /// Priority-encoder output (position of leading one).
    pub msb_pos: u32,
    /// True when the magnitude collapsed to exactly zero (cancellation).
    pub is_zero: bool,

    // ---- output bus ----
    /// Final packed result.
    pub result: u64,
    /// Accumulated exception flags (ORed stage by stage).
    pub flags: Flags,
}

impl Signals {
    /// A bundle entering stage 1.
    pub fn inject(a_bits: u64, b_bits: u64, subtract: bool) -> Signals {
        Signals {
            a_bits,
            b_bits,
            subtract,
            a: Unpacked::zero(false),
            b: Unpacked::zero(false),
            special: None,
            hi: Unpacked::zero(false),
            lo: Unpacked::zero(false),
            align_shift: 0,
            lo_aligned: 0,
            product: 0,
            mag: 0,
            sign: false,
            exp: 0,
            msb_pos: 0,
            is_zero: false,
            result: 0,
            flags: Flags::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_is_clean() {
        let s = Signals::inject(1, 2, true);
        assert_eq!(s.a_bits, 1);
        assert_eq!(s.b_bits, 2);
        assert!(s.subtract);
        assert!(s.special.is_none());
        assert!(!s.flags.any());
    }
}
