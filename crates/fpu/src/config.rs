//! Core configuration types.

use fpfpga_fabric::{PipelineStrategy, SynthesisOptions};
use fpfpga_softfp::{FpFormat, RoundMode};

/// Which operation a core instance performs. The adder/subtractor is one
/// datapath with a per-operand sign flip; `Sub` models driving its
/// add/sub select line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
}

/// A fully specified core implementation point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreConfig {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode (the cores implement round-to-nearest and truncate).
    pub round: RoundMode,
    /// Pipeline depth (1 = output register only).
    pub stages: u32,
    /// Register-placement strategy.
    pub strategy: PipelineStrategy,
    /// Tool objectives.
    pub synth: SynthesisOptions,
    /// Whether the priority encoder's structured synthesis is forced
    /// (the paper forces it for large bitwidths).
    pub force_priority_encoder: bool,
}

impl CoreConfig {
    /// The paper's default flow: round-to-nearest, iterative critical-path
    /// pipelining, speed objectives, forced priority-encoder synthesis.
    pub fn paper_default(format: FpFormat, stages: u32) -> CoreConfig {
        CoreConfig {
            format,
            round: RoundMode::NearestEven,
            stages,
            strategy: PipelineStrategy::IterativeRefinement,
            synth: SynthesisOptions::SPEED,
            force_priority_encoder: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = CoreConfig::paper_default(FpFormat::SINGLE, 8);
        assert_eq!(c.stages, 8);
        assert_eq!(c.round, RoundMode::NearestEven);
        assert!(c.force_priority_encoder);
        assert_eq!(c.strategy, PipelineStrategy::IterativeRefinement);
    }
}
