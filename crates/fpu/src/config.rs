//! Core configuration types.

use fpfpga_fabric::{PipelineStrategy, SynthesisOptions};
use fpfpga_softfp::{FpFormat, RoundMode};

/// Which operation a core instance performs. The adder/subtractor is one
/// datapath with a per-operand sign flip; `Sub` models driving its
/// add/sub select line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// a + b
    Add,
    /// a − b
    Sub,
    /// a × b
    Mul,
}

/// A fully specified core implementation point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreConfig {
    /// Operand format.
    pub format: FpFormat,
    /// Rounding mode (the cores implement round-to-nearest and truncate).
    pub round: RoundMode,
    /// Pipeline depth (1 = output register only).
    pub stages: u32,
    /// Register-placement strategy.
    pub strategy: PipelineStrategy,
    /// Tool objectives.
    pub synth: SynthesisOptions,
    /// Whether the priority encoder's structured synthesis is forced
    /// (the paper forces it for large bitwidths).
    pub force_priority_encoder: bool,
}

impl CoreConfig {
    /// The paper's default flow: round-to-nearest, iterative critical-path
    /// pipelining, speed objectives, forced priority-encoder synthesis.
    pub fn paper_default(format: FpFormat, stages: u32) -> CoreConfig {
        CoreConfig {
            format,
            round: RoundMode::NearestEven,
            stages,
            strategy: PipelineStrategy::IterativeRefinement,
            synth: SynthesisOptions::SPEED,
            force_priority_encoder: true,
        }
    }

    /// Start from the paper defaults and override selectively:
    ///
    /// ```
    /// use fpfpga_fpu::config::CoreConfig;
    /// use fpfpga_softfp::{FpFormat, RoundMode};
    ///
    /// let cfg = CoreConfig::builder(FpFormat::SINGLE)
    ///     .stages(8)
    ///     .round(RoundMode::Truncate)
    ///     .build();
    /// assert_eq!(cfg.stages, 8);
    /// ```
    pub fn builder(format: FpFormat) -> CoreConfigBuilder {
        CoreConfigBuilder {
            config: CoreConfig::paper_default(format, 1),
        }
    }
}

/// Builder for [`CoreConfig`]; see [`CoreConfig::builder`].
#[derive(Clone, Debug)]
pub struct CoreConfigBuilder {
    config: CoreConfig,
}

impl CoreConfigBuilder {
    /// Pipeline depth (1 = output register only).
    pub fn stages(mut self, stages: u32) -> CoreConfigBuilder {
        self.config.stages = stages;
        self
    }

    /// Rounding mode.
    pub fn round(mut self, round: RoundMode) -> CoreConfigBuilder {
        self.config.round = round;
        self
    }

    /// Register-placement strategy.
    pub fn strategy(mut self, strategy: PipelineStrategy) -> CoreConfigBuilder {
        self.config.strategy = strategy;
        self
    }

    /// Tool objectives.
    pub fn synth(mut self, synth: SynthesisOptions) -> CoreConfigBuilder {
        self.config.synth = synth;
        self
    }

    /// Force structured priority-encoder synthesis.
    pub fn force_priority_encoder(mut self, force: bool) -> CoreConfigBuilder {
        self.config.force_priority_encoder = force;
        self
    }

    pub fn build(self) -> CoreConfig {
        assert!(
            self.config.stages >= 1,
            "a core needs at least its output register"
        );
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = CoreConfig::paper_default(FpFormat::SINGLE, 8);
        assert_eq!(c.stages, 8);
        assert_eq!(c.round, RoundMode::NearestEven);
        assert!(c.force_priority_encoder);
        assert_eq!(c.strategy, PipelineStrategy::IterativeRefinement);
    }
}
