//! SIMD dispatch must be invisible to the pipeline simulators: for
//! every [`SimdPolicy`] the batched streaming path (`run_batch`, which
//! reaches the `softfp::simd` engines through the fastpath batch
//! dispatchers) returns bit-identical results — values AND flags — to
//! the generic scalar reference. One test function owns the
//! process-global policy so policy flips never race another test.

use fpfpga_fpu::prelude::*;
use fpfpga_fpu::sim::DelayOp;
use fpfpga_softfp::simd::{set_simd_policy, SimdPolicy};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = FpFormat> {
    prop_oneof![
        Just(FpFormat::SINGLE),
        Just(FpFormat::FP48),
        Just(FpFormat::DOUBLE)
    ]
}

fn modes() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

fn mask(fmt: FpFormat, raw: &[(u64, u64)]) -> Vec<(u64, u64)> {
    raw.iter()
        .map(|&(a, b)| (a & fmt.enc_mask(), b & fmt.enc_mask()))
        .collect()
}

const POLICIES: [SimdPolicy; 5] = [
    SimdPolicy::ForceScalar,
    SimdPolicy::ForceWidePortable,
    SimdPolicy::ForceWideAvx2,
    SimdPolicy::ForceWide,
    SimdPolicy::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Adder, multiplier and delay-line batches are policy-invariant
    /// and equal to the generic scalar dispatchers element for element.
    #[test]
    fn pipeline_batches_are_policy_invariant(
        fmt in formats(),
        mode in modes(),
        stage_seed in any::<u32>(),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..48),
    ) {
        let inputs = mask(fmt, &raw);
        let want_add: Vec<(u64, Flags)> = inputs
            .iter()
            .map(|&(a, b)| fpfpga_softfp::add_bits(fmt, a, b, mode))
            .collect();
        let want_mul: Vec<(u64, Flags)> = inputs
            .iter()
            .map(|&(a, b)| fpfpga_softfp::mul_bits(fmt, a, b, mode))
            .collect();
        let want_sub: Vec<(u64, Flags)> = inputs
            .iter()
            .map(|&(a, b)| fpfpga_softfp::sub_bits(fmt, a, b, mode))
            .collect();

        let tech = Tech::virtex2pro();
        for policy in POLICIES {
            set_simd_policy(policy);

            let design = AdderDesign { format: fmt, round: mode, force_priority_encoder: false };
            let stages = 1 + stage_seed % design.netlist(&tech).max_stages();
            let got = design.simulator(stages).run_batch(&inputs);
            prop_assert_eq!(&got, &want_add, "adder {:?} {:?}", policy, fmt);

            let design = MultiplierDesign { format: fmt, round: mode };
            let stages = 1 + stage_seed % design.netlist(&tech).max_stages();
            let got = design.simulator(stages).run_batch(&inputs);
            prop_assert_eq!(&got, &want_mul, "multiplier {:?} {:?}", policy, fmt);

            let got = DelayLineUnit::new(fmt, mode, DelayOp::Sub, 1 + stage_seed % 32)
                .run_batch(&inputs);
            prop_assert_eq!(&got, &want_sub, "delay-line sub {:?} {:?}", policy, fmt);
        }
        set_simd_policy(SimdPolicy::Auto);
    }
}
