//! Property tests for the batched streaming path: for every unit kind,
//! paper format and legal pipeline depth, [`FpPipe::run_batch`] is
//! bit-identical — values AND flags — to hand-driving the same unit one
//! `clock` per input and then draining. Both the structural
//! [`PipelinedUnit`] (which overrides `run_batch` with an in-place
//! slot-rotation fast path) and the [`DelayLineUnit`] twin (bulk
//! compute fast path) are covered, including units with results
//! already in flight when the batch is issued.

use fpfpga_fpu::prelude::*;
use fpfpga_fpu::sim::DelayOp;
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = FpFormat> {
    prop_oneof![
        Just(FpFormat::SINGLE),
        Just(FpFormat::FP48),
        Just(FpFormat::DOUBLE)
    ]
}

fn modes() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

/// The per-cycle reference `run_batch` is specified against: one
/// `clock` per input collecting retires, then a full drain.
fn hand_driven(unit: &mut dyn FpPipe, inputs: &[(u64, u64)]) -> Vec<(u64, Flags)> {
    let mut out = Vec::with_capacity(inputs.len());
    for &inp in inputs {
        if let Some(r) = unit.clock(Some(inp)) {
            out.push(r);
        }
    }
    out.extend(unit.drain());
    out
}

/// Mask raw pairs into `fmt` encodings.
fn mask(fmt: FpFormat, raw: &[(u64, u64)]) -> Vec<(u64, u64)> {
    raw.iter()
        .map(|&(a, b)| (a & fmt.enc_mask(), b & fmt.enc_mask()))
        .collect()
}

/// Drive `preload` operations into both units without draining, so the
/// batch lands on a pipe with results still in flight.
fn preload_pair(x: &mut dyn FpPipe, y: &mut dyn FpPipe, ops: &[(u64, u64)]) {
    for &inp in ops {
        let rx = x.clock(Some(inp));
        let ry = y.clock(Some(inp));
        assert_eq!(rx, ry, "preload retires must agree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural adder: batched == hand-driven at every legal depth.
    #[test]
    fn adder_batch_matches_hand_driven_clocking(
        fmt in formats(),
        mode in modes(),
        stage_seed in any::<u32>(),
        raw_pre in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let design = AdderDesign { format: fmt, round: mode, force_priority_encoder: false };
        let max = design.netlist(&Tech::virtex2pro()).max_stages();
        let stages = 1 + stage_seed % max;
        let mut batched = design.simulator(stages);
        let mut stepped = design.simulator(stages);
        preload_pair(&mut batched, &mut stepped, &mask(fmt, &raw_pre));
        let inputs = mask(fmt, &raw);
        let got = batched.run_batch(&inputs);
        let want = hand_driven(&mut stepped, &inputs);
        prop_assert_eq!(got, want, "fmt={:?} k={}", fmt, stages);
        prop_assert_eq!(batched.cycles(), stepped.cycles(), "cycle charge k={}", stages);
    }

    /// Structural multiplier: batched == hand-driven at every legal depth.
    #[test]
    fn multiplier_batch_matches_hand_driven_clocking(
        fmt in formats(),
        mode in modes(),
        stage_seed in any::<u32>(),
        raw_pre in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let design = MultiplierDesign { format: fmt, round: mode };
        let max = design.netlist(&Tech::virtex2pro()).max_stages();
        let stages = 1 + stage_seed % max;
        let mut batched = design.simulator(stages);
        let mut stepped = design.simulator(stages);
        preload_pair(&mut batched, &mut stepped, &mask(fmt, &raw_pre));
        let inputs = mask(fmt, &raw);
        let got = batched.run_batch(&inputs);
        let want = hand_driven(&mut stepped, &inputs);
        prop_assert_eq!(got, want, "fmt={:?} k={}", fmt, stages);
        prop_assert_eq!(batched.cycles(), stepped.cycles(), "cycle charge k={}", stages);
    }

    /// Structural divider: batched == hand-driven at every legal depth.
    #[test]
    fn divider_batch_matches_hand_driven_clocking(
        fmt in formats(),
        mode in modes(),
        stage_seed in any::<u32>(),
        raw_pre in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let design = DividerDesign { format: fmt, round: mode };
        let max = design.netlist(&Tech::virtex2pro()).max_stages();
        let stages = 1 + stage_seed % max;
        let mut batched = design.simulator(stages);
        let mut stepped = design.simulator(stages);
        preload_pair(&mut batched, &mut stepped, &mask(fmt, &raw_pre));
        let inputs = mask(fmt, &raw);
        let got = batched.run_batch(&inputs);
        let want = hand_driven(&mut stepped, &inputs);
        prop_assert_eq!(got, want, "fmt={:?} k={}", fmt, stages);
        prop_assert_eq!(batched.cycles(), stepped.cycles(), "cycle charge k={}", stages);
    }

    /// Structural square root: batched == hand-driven at every legal
    /// depth (the second operand of each pair is ignored by the core).
    #[test]
    fn sqrt_batch_matches_hand_driven_clocking(
        fmt in formats(),
        mode in modes(),
        stage_seed in any::<u32>(),
        raw_pre in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let design = SqrtDesign { format: fmt, round: mode };
        let max = design.netlist(&Tech::virtex2pro()).max_stages();
        let stages = 1 + stage_seed % max;
        let mut batched = design.simulator(stages);
        let mut stepped = design.simulator(stages);
        preload_pair(&mut batched, &mut stepped, &mask(fmt, &raw_pre));
        let inputs = mask(fmt, &raw);
        let got = batched.run_batch(&inputs);
        let want = hand_driven(&mut stepped, &inputs);
        prop_assert_eq!(got, want, "fmt={:?} k={}", fmt, stages);
        prop_assert_eq!(batched.cycles(), stepped.cycles(), "cycle charge k={}", stages);
    }

    /// Delay-line twin, all four ops: batched == hand-driven.
    #[test]
    fn delay_line_batch_matches_hand_driven_clocking(
        fmt in formats(),
        mode in modes(),
        op in prop_oneof![
            Just(DelayOp::Add), Just(DelayOp::Sub), Just(DelayOp::Mul), Just(DelayOp::Div),
        ],
        stages in 1u32..33,
        raw_pre in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..32),
    ) {
        let mut batched = DelayLineUnit::new(fmt, mode, op, stages);
        let mut stepped = DelayLineUnit::new(fmt, mode, op, stages);
        preload_pair(&mut batched, &mut stepped, &mask(fmt, &raw_pre));
        let inputs = mask(fmt, &raw);
        let got = batched.run_batch(&inputs);
        let want = hand_driven(&mut stepped, &inputs);
        prop_assert_eq!(got, want, "fmt={:?} op={:?} k={}", fmt, op, stages);
    }

    /// The structural unit's override and the delay-line's override
    /// agree with each other too (same op, same depth, same batch).
    #[test]
    fn structural_and_delay_line_batches_agree(
        fmt in formats(),
        stage_seed in any::<u32>(),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..24),
    ) {
        let design = AdderDesign::new(fmt);
        let max = design.netlist(&Tech::virtex2pro()).max_stages();
        let stages = 1 + stage_seed % max;
        let mut structural = design.simulator(stages);
        let mut twin = DelayLineUnit::new(fmt, RoundMode::NearestEven, DelayOp::Add, stages);
        let inputs = mask(fmt, &raw);
        prop_assert_eq!(structural.run_batch(&inputs), twin.run_batch(&inputs));
    }
}
