//! Property tests: the cycle-accurate pipelined cores are bit-identical
//! to the `fpfpga-softfp` reference for every format, rounding mode and
//! pipeline depth — register placement is a timing decision, never a
//! semantic one.

use fpfpga_fpu::prelude::*;
use fpfpga_fpu::sim::DelayOp;
use proptest::prelude::*;

/// A random encodable value in `fmt` (any class: zero/normal/inf —
/// denormal and NaN encodings are legal inputs too; they classify as
/// zero/inf respectively in both implementations).
fn bits_in(fmt: FpFormat) -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(move |b| b & fmt.enc_mask())
}

fn formats() -> impl Strategy<Value = FpFormat> {
    prop_oneof![
        Just(FpFormat::SINGLE),
        Just(FpFormat::FP48),
        Just(FpFormat::DOUBLE),
        // an asymmetric custom format to stress field-width generality
        Just(FpFormat::new(6, 17)),
    ]
}

fn modes() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

/// Run one operation through a pipelined unit and return the result.
fn run_once(unit: &mut PipelinedUnit, a: u64, b: u64) -> (u64, Flags) {
    let mut out = unit.clock(Some((a, b)));
    let mut guard = 0;
    while out.is_none() {
        out = unit.clock(None);
        guard += 1;
        assert!(guard <= unit.latency() + 1, "result never emerged");
    }
    out.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn adder_pipeline_matches_reference(
        fmt in formats(),
        mode in modes(),
        stages in 1u32..24,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..20),
    ) {
        let design = AdderDesign { format: fmt, round: mode, force_priority_encoder: true };
        let mut unit = design.simulator(stages);
        for &(ra, rb) in &pairs {
            let (a, b) = (ra & fmt.enc_mask(), rb & fmt.enc_mask());
            let (got, gf) = run_once(&mut unit, a, b);
            let (want, wf) = fpfpga_softfp::add_bits(fmt, a, b, mode);
            prop_assert_eq!(got, want, "fmt={:?} k={} a={:#x} b={:#x}", fmt, stages, a, b);
            prop_assert_eq!(gf, wf);
        }
    }

    #[test]
    fn multiplier_pipeline_matches_reference(
        fmt in formats(),
        mode in modes(),
        stages in 1u32..24,
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..20),
    ) {
        let design = MultiplierDesign { format: fmt, round: mode };
        let mut unit = design.simulator(stages);
        for &(ra, rb) in &pairs {
            let (a, b) = (ra & fmt.enc_mask(), rb & fmt.enc_mask());
            let (got, gf) = run_once(&mut unit, a, b);
            let (want, wf) = fpfpga_softfp::mul_bits(fmt, a, b, mode);
            prop_assert_eq!(got, want, "fmt={:?} k={} a={:#x} b={:#x}", fmt, stages, a, b);
            prop_assert_eq!(gf, wf);
        }
    }

    #[test]
    fn subtractor_pipeline_matches_reference(
        stages in 1u32..20,
        a in bits_in(FpFormat::SINGLE),
        b in bits_in(FpFormat::SINGLE),
    ) {
        let fmt = FpFormat::SINGLE;
        let design = AdderDesign::new(fmt);
        let mut unit = design.simulator(stages).with_subtract(true);
        let (got, gf) = run_once(&mut unit, a, b);
        let (want, wf) = fpfpga_softfp::sub_bits(fmt, a, b, RoundMode::NearestEven);
        prop_assert_eq!(got, want);
        prop_assert_eq!(gf, wf);
    }

    /// Back-to-back streaming at initiation interval 1 with random
    /// bubbles must preserve ordering and values.
    #[test]
    fn streaming_with_bubbles(
        stages in 1u32..16,
        ops in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..64),
    ) {
        let fmt = FpFormat::SINGLE;
        let mut unit = AdderDesign::new(fmt).simulator(stages);
        let mut injected = Vec::new();
        let mut results = Vec::new();
        for &(ra, rb, bubble) in &ops {
            let input = if bubble {
                None
            } else {
                let (a, b) = (ra & fmt.enc_mask(), rb & fmt.enc_mask());
                injected.push((a, b));
                Some((a, b))
            };
            if let Some(r) = unit.clock(input) {
                results.push(r);
            }
        }
        results.extend(unit.drain());
        prop_assert_eq!(results.len(), injected.len());
        for (&(a, b), &(got, gf)) in injected.iter().zip(&results) {
            let (want, wf) = fpfpga_softfp::add_bits(fmt, a, b, RoundMode::NearestEven);
            prop_assert_eq!(got, want);
            prop_assert_eq!(gf, wf);
        }
    }

    /// The fast delay-line twin is interchangeable with the structural
    /// simulator (used by the matmul kernel simulations).
    #[test]
    fn delay_line_twin_is_equivalent(
        stages in 1u32..16,
        ops in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..40),
    ) {
        let fmt = FpFormat::DOUBLE;
        let mut structural = MultiplierDesign::new(fmt).simulator(stages);
        let mut fast = DelayLineUnit::new(fmt, RoundMode::NearestEven, DelayOp::Mul, stages);
        prop_assert_eq!(structural.latency(), fast.latency());
        for &(a, b) in &ops {
            let inp = Some((a & fmt.enc_mask(), b & fmt.enc_mask()));
            prop_assert_eq!(structural.clock(inp), fast.clock(inp));
        }
        prop_assert_eq!(structural.drain(), fast.drain());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn divider_pipeline_matches_reference(
        fmt in formats(),
        mode in modes(),
        stages in 1u32..40,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        use fpfpga_fpu::DividerDesign;
        let (a, b) = (a & fmt.enc_mask(), b & fmt.enc_mask());
        let mut unit = DividerDesign { format: fmt, round: mode }.simulator(stages);
        let (got, gf) = run_once(&mut unit, a, b);
        let (want, wf) = fpfpga_softfp::div_bits(fmt, a, b, mode);
        prop_assert_eq!(got, want, "fmt={:?} k={} {:#x}/{:#x}", fmt, stages, a, b);
        prop_assert_eq!(gf, wf);
    }

    #[test]
    fn sqrt_pipeline_matches_reference(
        fmt in formats(),
        mode in modes(),
        stages in 1u32..30,
        a in any::<u64>(),
    ) {
        use fpfpga_fpu::SqrtDesign;
        let a = a & fmt.enc_mask();
        let mut unit = SqrtDesign { format: fmt, round: mode }.simulator(stages);
        let (got, gf) = run_once(&mut unit, a, 0);
        let (want, wf) = fpfpga_softfp::sqrt_bits(fmt, a, mode);
        prop_assert_eq!(got, want, "fmt={:?} k={} sqrt({:#x})", fmt, stages, a);
        prop_assert_eq!(gf, wf);
    }
}
