//! Machine-readable (JSON) export of every artifact, for downstream
//! plotting (the figures are line/bar charts in the paper; the series
//! here feed straight into any plotting tool).

use fpfpga::prelude::*;
use fpfpga::repro::{self, ArchPoint, Fig2, Fig3, Fig4Bar, GflopsReport, UnitTable};
use serde_json::{json, Value};

/// Figure 2 as JSON.
pub fn fig2_json(f: &Fig2) -> Value {
    let curves = |cs: &[repro::Fig2Curve]| -> Value {
        Value::Array(
            cs.iter()
                .map(|c| {
                    json!({
                        "precision": c.precision,
                        "stages": c.points.iter().map(|p| p.0).collect::<Vec<_>>(),
                        "mhz_per_slice": c.points.iter().map(|p| p.1).collect::<Vec<_>>(),
                    })
                })
                .collect(),
        )
    };
    json!({ "figure": "2", "adders": curves(&f.adders), "multipliers": curves(&f.multipliers) })
}

/// Table 1 or 2 as JSON.
pub fn unit_table_json(name: &str, t: &UnitTable) -> Value {
    let block = |b: &repro::UnitTableBlock| {
        let rep = |r: &fpfpga::fabric::ImplementationReport| {
            json!({
                "stages": r.stages, "slices": r.slices, "luts": r.luts, "ffs": r.ffs,
                "bmults": r.bmults, "clock_mhz": r.clock_mhz,
                "freq_per_area": r.freq_per_area(),
            })
        };
        json!({
            "precision": b.precision,
            "min": rep(&b.min), "max": rep(&b.max), "opt": rep(&b.opt),
        })
    };
    json!({ "table": name, "blocks": t.iter().map(block).collect::<Vec<_>>() })
}

/// Table 3 or 4 as JSON.
pub fn comparison_json(
    name: &str,
    adders: &[fpfpga::baselines::comparison::ComparisonRow],
    multipliers: &[fpfpga::baselines::comparison::ComparisonRow],
) -> Value {
    let row = |r: &fpfpga::baselines::comparison::ComparisonRow| {
        json!({
            "who": r.who, "stages": r.stages, "slices": r.slices,
            "clock_mhz": r.clock_mhz, "freq_per_area": r.freq_per_area,
            "power_mw": r.power_mw,
        })
    };
    json!({
        "table": name,
        "adders": adders.iter().map(row).collect::<Vec<_>>(),
        "multipliers": multipliers.iter().map(row).collect::<Vec<_>>(),
    })
}

/// Figure 3 as JSON.
pub fn fig3_json(f: &Fig3) -> Value {
    let curves = |cs: &[repro::Fig3Curve]| -> Value {
        Value::Array(
            cs.iter()
                .map(|c| {
                    json!({
                        "precision": c.precision,
                        "stages": c.points.iter().map(|p| p.0).collect::<Vec<_>>(),
                        "power_mw": c.points.iter().map(|p| p.1).collect::<Vec<_>>(),
                    })
                })
                .collect(),
        )
    };
    json!({ "figure": "3", "adders": curves(&f.adders), "multipliers": curves(&f.multipliers) })
}

/// Section 4.2 as JSON.
pub fn gflops_json(g: &GflopsReport) -> Value {
    let fill = |f: &DeviceFill| {
        json!({
            "device": f.device.name, "pe_count": f.pe_count, "clock_mhz": f.clock_mhz,
            "gflops": f.gflops(), "power_w": f.power_w(0.3),
            "gflops_per_watt": f.gflops_per_watt(0.3),
        })
    };
    json!({
        "section": "4.2",
        "single": fill(&g.single),
        "double": fill(&g.double),
        "processors": g.comparison.processors.iter().map(|p| json!({
            "name": p.name,
            "sustained_gflops": p.sustained_gflops_single(),
            "speedup": g.comparison.speedup_over(p),
            "gflops_per_watt_gain": g.comparison.efficiency_gain_over(p),
        })).collect::<Vec<_>>(),
    })
}

/// Figure 4 as JSON.
pub fn fig4_json(bars: &[Fig4Bar]) -> Value {
    json!({
        "figure": "4",
        "bars": bars.iter().map(|b| json!({
            "n": b.n, "level": b.level, "total_nj": b.total_nj,
            "by_class": b.by_class.iter()
                .map(|(c, e)| (c.label().to_string(), *e))
                .collect::<std::collections::BTreeMap<_, _>>(),
        })).collect::<Vec<_>>(),
    })
}

/// Figure 5 or 6 as JSON.
pub fn arch_points_json(figure: &str, x_label: &str, pts: &[ArchPoint]) -> Value {
    json!({
        "figure": figure,
        "x_label": x_label,
        "points": pts.iter().map(|p| json!({
            "x": p.x, "level": p.level, "energy_nj": p.energy_nj,
            "slices": p.slices, "bmults": p.bmults, "brams": p.brams,
            "latency_us": p.latency_us,
        })).collect::<Vec<_>>(),
    })
}

/// A serving-layer metrics snapshot as JSON (for the `fpuserve`
/// trace-replay report).
pub fn metrics_json(m: &MetricsSnapshot) -> Value {
    json!({
        "submitted": m.submitted,
        "completed": m.completed,
        "rejected": m.rejected,
        "timed_out": m.timed_out,
        "shed": m.shed,
        "cancelled": m.cancelled,
        "failed": m.failed,
        "queue_depth": m.queue_depth,
        "max_queue_depth": m.max_queue_depth,
        "batches": m.batches,
        "batched_jobs": m.batched_jobs,
        "batch_occupancy": m.batch_occupancy(),
        "work_items": m.work_items,
        "mixed_jobs": m.mixed_jobs,
        "auto_tuned": m.auto_tuned,
        "latency_p50_us": m.latency_quantile_us(0.50),
        "latency_p90_us": m.latency_quantile_us(0.90),
        "latency_p99_us": m.latency_quantile_us(0.99),
        "cache_hits": m.cache_hits,
        "cache_misses": m.cache_misses,
        "cache_evictions": m.cache_evictions,
        "cache_hit_rate": m.cache_hit_rate(),
    })
}

/// One load-sweep run record — the shared shape `fpuserve`
/// (in-process) and `fpunet` (networked) both emit, so load-sweep
/// artifacts are directly comparable across the two harnesses.
///
/// Keys: `workers` (`null` when the measuring side cannot see the pool
/// — a network client observes the server as a black box), `wall_s`,
/// `jobs_per_s`, and `metrics` (the [`metrics_json`] object; on the
/// client side the counters cover what the client observed: submitted/
/// completed/rejected and the latency histogram, with queue/cache
/// gauges at zero).
pub fn run_record(workers: Option<usize>, wall_s: f64, jobs: usize, m: &MetricsSnapshot) -> Value {
    json!({
        "workers": workers,
        "wall_s": wall_s,
        "jobs_per_s": jobs as f64 / wall_s,
        "metrics": metrics_json(m),
    })
}

/// Every artifact as one JSON document.
pub fn all_json() -> Value {
    let t3 = repro::table3();
    let t4 = repro::table4();
    json!({
        "paper": "Analysis of High-performance Floating-point Arithmetic on FPGAs (IPPS 2004)",
        "fig2": fig2_json(&repro::fig2()),
        "table1": unit_table_json("1", &repro::table1()),
        "table2": unit_table_json("2", &repro::table2()),
        "table3": comparison_json("3", &t3.adders, &t3.multipliers),
        "table4": comparison_json("4", &t4.adders, &t4.multipliers),
        "fig3": fig3_json(&repro::fig3()),
        "gflops": gflops_json(&repro::gflops()),
        "fig4": fig4_json(&repro::fig4()),
        "fig5": arch_points_json("5", "n", &repro::fig5(&repro::FIG5_PROBLEM_SIZES)),
        "fig6": arch_points_json("6", "b",
            &repro::fig6(repro::FIG6_PROBLEM_SIZE, &repro::FIG6_BLOCK_SIZES)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_json_structure() {
        let v = fig2_json(&repro::fig2());
        assert_eq!(v["figure"], "2");
        assert_eq!(v["adders"].as_array().unwrap().len(), 3);
        let c = &v["adders"][0];
        assert_eq!(
            c["stages"].as_array().unwrap().len(),
            c["mhz_per_slice"].as_array().unwrap().len()
        );
    }

    #[test]
    fn gflops_json_structure() {
        let v = gflops_json(&repro::gflops());
        assert!(v["single"]["gflops"].as_f64().unwrap() > 10.0);
        assert_eq!(v["processors"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn metrics_json_reports_counters_and_rates() {
        let pool = ServePool::new(ServeConfig::with_workers(1));
        let h = pool
            .submit(Job::uniform(
                Kernel::Sweep {
                    kind: CoreKind::Adder,
                    opts: SynthesisOptions::SPEED,
                },
                FpFormat::SINGLE,
                RoundMode::NearestEven,
            ))
            .expect("accepted");
        assert!(matches!(h.wait(), JobOutcome::Completed(_)));
        let v = metrics_json(&pool.join());
        assert_eq!(v["completed"].as_u64().unwrap(), 1);
        assert_eq!(v["cache_misses"].as_u64().unwrap(), 1);
        assert!(v["latency_p50_us"].as_u64().is_some());
        assert!(v["batch_occupancy"].as_f64().is_some());
    }

    #[test]
    fn table_json_has_min_max_opt() {
        let v = unit_table_json("1", &repro::table1());
        for b in v["blocks"].as_array().unwrap() {
            for col in ["min", "max", "opt"] {
                assert!(b[col]["slices"].as_u64().unwrap() > 0, "{col}");
            }
        }
    }
}
