//! Shared command-line plumbing for the bench binaries.
//!
//! Every binary parses flags the same way (`--flag value`, strict
//! rejection of unknown flags) and speaks the same canonical grammars:
//! formats as `f32`/`f48`/`f64`/`e<E>f<F>` ([`FpFormat`]'s `FromStr`),
//! policies as `compute[/accumulate[/storage]]`
//! ([`PrecisionPolicy`]'s `FromStr`), budgets as `<n>ulp` / `rel<x>`
//! ([`ErrorBudget`]'s `FromStr`). This module is also the **single**
//! place where a serving-layer [`SubmitError`] maps to a process exit
//! code, so `fpuserve`, `fpupolicy` and scripts wrapping them agree on
//! what each code means.

use fpfpga::prelude::*;

/// Exit code for usage errors: unknown flag, missing value, value that
/// does not parse.
pub const EXIT_USAGE: i32 = 2;
/// Exit code for an unsatisfiable error budget ([`SubmitError::Budget`]).
pub const EXIT_BUDGET: i32 = 3;
/// Exit code for backpressure ([`SubmitError::Rejected`]) — transient,
/// retry with a larger queue or later.
pub const EXIT_REJECTED: i32 = 4;
/// Exit code for submitting to a closed pool ([`SubmitError::Closed`]).
pub const EXIT_CLOSED: i32 = 5;

/// The one [`SubmitError`] → exit-code mapping. Invalid payloads are
/// usage errors (the caller constructed a bad request); the rest get
/// distinct codes so wrappers can tell "tighten the budget" from
/// "retry later".
pub fn submit_exit_code(e: &SubmitError) -> i32 {
    match e {
        SubmitError::Invalid(_) => EXIT_USAGE,
        SubmitError::Budget { .. } => EXIT_BUDGET,
        SubmitError::Rejected { .. } => EXIT_REJECTED,
        SubmitError::Closed => EXIT_CLOSED,
    }
}

/// Print `error: <context>: <e>` and exit with [`submit_exit_code`].
pub fn die_submit(context: &str, e: SubmitError) -> ! {
    eprintln!("error: {context}: {e}");
    std::process::exit(submit_exit_code(&e));
}

/// Reject a flag's value: name the flag, echo the value, list what was
/// expected, exit [`EXIT_USAGE`].
pub fn bad_flag(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: invalid value '{value}' for {flag}: expected {expected}");
    std::process::exit(EXIT_USAGE);
}

/// Parse a flag value with `FromStr`, dying via [`bad_flag`] on error.
pub fn parse_num<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bad_flag(flag, value, expected))
}

/// Parse a format name (`f32`, `f48`, `f64`, `single`, `double`,
/// `w48`, or `e<E>f<F>`).
pub fn parse_format(flag: &str, value: &str) -> FpFormat {
    value
        .parse()
        .unwrap_or_else(|_| bad_flag(flag, value, "a format like f32, f64 or e11f36"))
}

/// Parse a precision policy (`compute[/accumulate[/storage]]`, e.g.
/// `f32/f64`).
pub fn parse_policy(flag: &str, value: &str) -> PrecisionPolicy {
    value.parse().unwrap_or_else(|_| {
        bad_flag(
            flag,
            value,
            "a policy like f32, f32/f64 or f32/f64/f32 (compute[/accumulate[/storage]])",
        )
    })
}

/// Parse an error budget (`<n>ulp` or `rel<x>`, e.g. `4ulp`,
/// `rel1e-6`).
pub fn parse_budget(flag: &str, value: &str) -> ErrorBudget {
    value
        .parse()
        .unwrap_or_else(|_: String| bad_flag(flag, value, "a budget like 4ulp or rel1e-6"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_submit_error_has_a_distinct_nonzero_code() {
        let codes = [
            submit_exit_code(&SubmitError::Invalid("x".into())),
            submit_exit_code(&SubmitError::Budget { detail: "x".into() }),
            submit_exit_code(&SubmitError::Rejected { queue_depth: 1 }),
            submit_exit_code(&SubmitError::Closed),
        ];
        for (i, &a) in codes.iter().enumerate() {
            assert_ne!(a, 0, "refusals must not exit 0");
            for &b in codes.iter().skip(i + 1) {
                assert_ne!(a, b, "codes must be distinguishable");
            }
        }
    }
}
