//! Rendering of the paper's tables and figures as text (and JSON).
//!
//! `fpfpga::repro` computes the data; this crate formats it the way the
//! paper lays it out, for the `repro` binary and the integration tests.

pub mod cli;
pub mod json;

use fpfpga::prelude::*;
use fpfpga::repro::{self, ArchPoint, Fig2, Fig3, Fig4Bar, GflopsReport, UnitTable};
use std::fmt::Write as _;

/// Render Figure 2 (frequency/area vs pipeline stages).
pub fn render_fig2(f: &Fig2) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 2. Frequency/Area (MHz/slice) vs. number of pipeline stages"
    );
    for (part, curves) in [
        ("(a) Adder/Subtractor", &f.adders),
        ("(b) Multiplier", &f.multipliers),
    ] {
        let _ = writeln!(s, "\n{part}");
        let _ = writeln!(
            s,
            "{:>7} {:>10} {:>10} {:>10}",
            "stages", "32-bit", "48-bit", "64-bit"
        );
        let depth = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
        for row in 0..depth {
            let _ = write!(s, "{:>7}", row + 1);
            for c in curves.iter() {
                match c.points.get(row) {
                    Some((_, v)) => {
                        let _ = write!(s, " {v:>10.4}");
                    }
                    None => {
                        let _ = write!(s, " {:>10}", "-");
                    }
                }
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Render Table 1 or Table 2 (min/max/opt per precision).
pub fn render_unit_table(title: &str, t: &UnitTable) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "",
        "32/min",
        "32/max",
        "32/opt",
        "48/min",
        "48/max",
        "48/opt",
        "64/min",
        "64/max",
        "64/opt"
    );
    let cols: Vec<&fpfpga::fabric::ImplementationReport> =
        t.iter().flat_map(|b| [&b.min, &b.max, &b.opt]).collect();
    let row = |s: &mut String,
               label: &str,
               f: &dyn Fn(&fpfpga::fabric::ImplementationReport) -> String| {
        let _ = write!(s, "{label:<22}");
        for c in &cols {
            let _ = write!(s, " {:>9}", f(c));
        }
        let _ = writeln!(s);
    };
    row(&mut s, "No. of Pipeline Stages", &|r| r.stages.to_string());
    row(&mut s, "Area (slices)", &|r| r.slices.to_string());
    row(&mut s, "LUTs", &|r| r.luts.to_string());
    row(&mut s, "Flip Flops", &|r| r.ffs.to_string());
    row(&mut s, "Clock Rate (MHz)", &|r| {
        format!("{:.1}", r.clock_mhz)
    });
    row(&mut s, "Freq/Area (MHz/slice)", &|r| {
        format!("{:.4}", r.freq_per_area())
    });
    s
}

/// Render Table 3 (32-bit comparison).
pub fn render_table3(t: &Table3) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3. Comparison of 32-bit Floating Point Units");
    for (part, rows) in [
        ("32-bit Adder", &t.adders),
        ("32-bit Multiplier", &t.multipliers),
    ] {
        let _ = writeln!(s, "\n{part}");
        let _ = writeln!(
            s,
            "{:<12} {:>9} {:>9} {:>11} {:>12}",
            "", "Pipelines", "Slices", "Clock (MHz)", "Freq/Area"
        );
        for r in rows.iter() {
            let _ = writeln!(
                s,
                "{:<12} {:>9} {:>9} {:>11.1} {:>12.4}",
                r.who, r.stages, r.slices, r.clock_mhz, r.freq_per_area
            );
        }
    }
    s
}

/// Render Table 4 (64-bit comparison with power).
pub fn render_table4(t: &Table4) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 4. Comparison of 64-bit Floating Point Units");
    for (part, rows) in [
        ("64-bit Adder", &t.adders),
        ("64-bit Multiplier", &t.multipliers),
    ] {
        let _ = writeln!(s, "\n{part}");
        let _ = writeln!(
            s,
            "{:<8} {:>7} {:>8} {:>11} {:>11} {:>14}",
            "", "Stages", "Slices", "Clock (MHz)", "Freq/Area", "Power@100MHz"
        );
        for r in rows.iter() {
            let power = r.power_mw.map_or("-".to_string(), |p| format!("{p:.0} mW"));
            let _ = writeln!(
                s,
                "{:<8} {:>7} {:>8} {:>11.1} {:>11.4} {:>14}",
                r.who, r.stages, r.slices, r.clock_mhz, r.freq_per_area, power
            );
        }
    }
    s
}

/// Render Figure 3 (power vs pipeline stages at 100 MHz).
pub fn render_fig3(f: &Fig3) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 3. Power (mW at 100 MHz) vs. number of pipeline stages"
    );
    for (part, curves) in [
        ("(a) Adder/Subtractor", &f.adders),
        ("(b) Multiplier", &f.multipliers),
    ] {
        let _ = writeln!(s, "\n{part}");
        let _ = writeln!(
            s,
            "{:>7} {:>10} {:>10} {:>10}",
            "stages", "32-bit", "48-bit", "64-bit"
        );
        let depth = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
        for row in 0..depth {
            let _ = write!(s, "{:>7}", row + 1);
            for c in curves.iter() {
                match c.points.get(row) {
                    Some((_, v)) => {
                        let _ = write!(s, " {v:>10.1}");
                    }
                    None => {
                        let _ = write!(s, " {:>10}", "-");
                    }
                }
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Render the Section 4.2 GFLOPS report.
pub fn render_gflops(g: &GflopsReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Section 4.2. Floating-point matrix multiplication on {}",
        g.single.device.name
    );
    for (label, fill) in [
        ("single (32-bit)", &g.single),
        ("double (64-bit)", &g.double),
    ] {
        let _ = writeln!(
            s,
            "  {label:<16}: {:>3} PEs @ {:>5.1} MHz = {:>5.1} GFLOPS, {:>4.1} W, {:.2} GFLOPS/W",
            fill.pe_count,
            fill.clock_mhz,
            fill.gflops(),
            fill.power_w(0.3),
            fill.gflops_per_watt(0.3)
        );
    }
    let _ = writeln!(
        s,
        "\n  vs. general-purpose processors (single precision, sustained):"
    );
    for p in &g.comparison.processors {
        let _ = writeln!(
            s,
            "  {:<24}: {:>4.1} GFLOPS → speedup {:>4.1}x, GFLOPS/W gain {:>4.1}x",
            p.name,
            p.sustained_gflops_single(),
            g.comparison.speedup_over(p),
            g.comparison.efficiency_gain_over(p)
        );
    }
    s
}

/// Render Figure 4 (PE energy distribution).
pub fn render_fig4(bars: &[Fig4Bar]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 4. Energy distribution (nJ) per component class");
    let _ = writeln!(
        s,
        "{:>5} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "level", "I/O", "Misc.", "Storage", "MAC", "total"
    );
    for b in bars {
        let field = |class: ComponentClass| {
            b.by_class
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, e)| *e)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            s,
            "{:>5} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            b.n,
            b.level,
            field(ComponentClass::Io),
            field(ComponentClass::Misc),
            field(ComponentClass::Storage),
            field(ComponentClass::Mac),
            b.total_nj
        );
    }
    s
}

/// Render Figure 5 or 6 (energy / resources / latency sweeps).
pub fn render_arch_points(title: &str, x_label: &str, points: &[ArchPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:>6} {:>7} {:>14} {:>9} {:>8} {:>7} {:>13}",
        x_label, "level", "energy (nJ)", "slices", "BMults", "BRAMs", "latency (us)"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>6} {:>7} {:>14.1} {:>9} {:>8} {:>7} {:>13.2}",
            p.x, p.level, p.energy_nj, p.slices, p.bmults, p.brams, p.latency_us
        );
    }
    s
}

/// Render everything, in paper order.
pub fn render_all() -> String {
    let mut s = String::new();
    s.push_str(&render_fig2(&repro::fig2()));
    s.push('\n');
    s.push_str(&render_unit_table(
        "Table 1. Analysis of 32, 48, 64-bit Floating Point Adders",
        &repro::table1(),
    ));
    s.push('\n');
    s.push_str(&render_unit_table(
        "Table 2. Analysis of 32, 48, 64-bit Floating Point Multipliers",
        &repro::table2(),
    ));
    s.push('\n');
    s.push_str(&render_table3(&repro::table3()));
    s.push('\n');
    s.push_str(&render_table4(&repro::table4()));
    s.push('\n');
    s.push_str(&render_fig3(&repro::fig3()));
    s.push('\n');
    s.push_str(&render_gflops(&repro::gflops()));
    s.push('\n');
    s.push_str(&render_fig4(&repro::fig4()));
    s.push('\n');
    s.push_str(&render_arch_points(
        "Figure 5. Flat designs vs problem size n (PL = 10/19/25)",
        "n",
        &repro::fig5(&repro::FIG5_PROBLEM_SIZES),
    ));
    s.push('\n');
    s.push_str(&render_arch_points(
        &format!(
            "Figure 6. Blocked designs vs block size b at N = {} (PL = 10/19/25)",
            repro::FIG6_PROBLEM_SIZE
        ),
        "b",
        &repro::fig6(repro::FIG6_PROBLEM_SIZE, &repro::FIG6_BLOCK_SIZES),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_are_nonempty_and_labelled() {
        let f2 = render_fig2(&repro::fig2());
        assert!(f2.contains("Figure 2"));
        assert!(f2.contains("32-bit"));
        let t1 = render_unit_table("Table 1", &repro::table1());
        assert!(t1.contains("Pipeline Stages"));
        assert!(t1.contains("Freq/Area"));
        let t3 = render_table3(&repro::table3());
        assert!(t3.contains("Nallatech") && t3.contains("Quixilica") && t3.contains("USC"));
        let t4 = render_table4(&repro::table4());
        assert!(t4.contains("NEU") && t4.contains("mW"));
    }

    #[test]
    fn gflops_render_mentions_processors() {
        let s = render_gflops(&repro::gflops());
        assert!(s.contains("Pentium 4"));
        assert!(s.contains("G4"));
        assert!(s.contains("GFLOPS/W"));
    }

    #[test]
    fn arch_point_renders() {
        let pts = repro::fig5(&[8, 16]);
        let s = render_arch_points("Figure 5", "n", &pts);
        assert!(s.contains("pl=10") && s.contains("pl=25"));
        assert_eq!(s.lines().count(), 2 + pts.len());
    }
}
