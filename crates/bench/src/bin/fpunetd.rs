//! `fpunetd` — serve the fpfpga pool over TCP.
//!
//! Binds the `fpfpga-net` wire protocol on a socket and feeds decoded
//! [`JobSpec`]s to a [`ServePool`], with the serving hardening the
//! front-end adds: per-tenant token-bucket quotas, connection limits
//! with retry-after backpressure, idle timeouts, optional adaptive
//! coalescing, and drain-on-shutdown (every accepted job is answered
//! before the process exits).
//!
//! ```text
//! fpunetd --addr 127.0.0.1:7070 --workers 4 --adaptive
//! # ... serve until a client sends the Shutdown frame:
//! fpunet --addr 127.0.0.1:7070 --jobs 100 --shutdown
//! ```
//!
//! The process exits when a client sends [`FrameKind::Shutdown`]
//! (`fpunet --shutdown`) or when `--max-seconds` elapses; either way it
//! drains the pool, answers everything in flight, and prints the final
//! report (text, or the JSON report with `--json`).
//!
//! [`FrameKind::Shutdown`]: fpfpga_net::FrameKind::Shutdown

use std::time::Duration;

use fpfpga::prelude::*;
use fpfpga_bench::cli::{bad_flag, parse_num, EXIT_USAGE};
use fpfpga_bench::json::metrics_json;
use fpfpga_net::{
    AdaptiveConfig, NetConfig, NetServer, QuotaConfig, QuotaLimits, ServerReport, ShutdownPolicy,
};
use serde_json::json;

const HELP: &str = "fpunetd — TCP front-end for the fpfpga serving pool

Usage: fpunetd [options]

Transport:
  --addr <host:port>   bind address (default 127.0.0.1:7070; port 0
                       picks an ephemeral port, printed on stdout)
  --max-conns <n>      simultaneous connection limit (default 64)
  --idle-timeout-s <s> close connections idle this long (default 30)
  --max-seconds <s>    stop serving after this long (default: until a
                       Shutdown frame arrives)
  --shutdown-from <p>  who may drain the server with a Shutdown frame:
                       loopback (default) | any | none — excluded
                       peers get a typed Denied reject

Pool:
  --workers <n>        worker (= shard) count (default 4)
  --queue <n>          per-shard queue capacity (default 256)
  --window <n>         initial coalesce window (default 16)
  --adaptive           drive the coalesce window from the live
                       batch-occupancy metric

Quotas (token buckets; burst = one second's refill):
  --quota-ops <r>      default per-tenant request rate (req/s)
  --quota-bytes <r>    default per-tenant payload byte rate (bytes/s)
  --tenant-quota <t=ops[:bytes]>
                       per-tenant override, repeatable
                       (e.g. --tenant-quota noisy=100:1e6)

Report:
  --json               emit the final report as JSON
  -h, --help           print this help and exit

Exit codes: 0 clean drain, 1 runtime failure, 2 usage";

const VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--max-conns",
    "--idle-timeout-s",
    "--max-seconds",
    "--shutdown-from",
    "--workers",
    "--queue",
    "--window",
    "--quota-ops",
    "--quota-bytes",
    "--tenant-quota",
];

/// Parse `t=ops[:bytes]` into a tenant name and its limits.
fn parse_tenant_quota(value: &str) -> (String, QuotaLimits) {
    let Some((tenant, rest)) = value.split_once('=') else {
        bad_flag("--tenant-quota", value, "tenant=ops or tenant=ops:bytes");
    };
    let (ops, bytes) = match rest.split_once(':') {
        Some((o, b)) => (o, Some(b)),
        None => (rest, None),
    };
    let ops: f64 = parse_num("--tenant-quota", ops, "an ops/s rate");
    let bytes = bytes.map(|b| parse_num("--tenant-quota", b, "a bytes/s rate"));
    (
        tenant.to_string(),
        QuotaLimits {
            ops_per_s: Some(ops),
            bytes_per_s: bytes,
        },
    )
}

fn report_text(r: &ServerReport) {
    let n = &r.net;
    println!("fpunetd — drained clean");
    println!(
        "  connections: {} accepted, {} refused at the limit",
        n.accepted, n.refused_conns
    );
    println!(
        "  frames: {} in / {} out — {} requests, {} responses, {} rejects, {} protocol errors",
        n.frames_in, n.frames_out, n.requests, n.responses, n.rejects, n.protocol_errors
    );
    let m = &r.pool;
    let q = |p: f64| {
        m.latency_quantile_us(p)
            .map_or("-".to_string(), |us| format!("{us} µs"))
    };
    println!(
        "  pool: {} completed, {} rejected, {} timed out, {} shed; p50 ≤ {}, p99 ≤ {}",
        m.completed,
        m.rejected,
        m.timed_out,
        m.shed,
        q(0.50),
        q(0.99)
    );
    for (tenant, u) in &r.tenants {
        let name = if tenant.is_empty() { "(anon)" } else { tenant };
        println!(
            "  tenant {name}: {} ops / {} bytes admitted, {} + {} refused (ops/bytes)",
            u.ops, u.bytes, u.rejected_ops, u.rejected_bytes
        );
    }
    if r.evicted_tenants > 0 {
        println!(
            "  {} idle tenant meters evicted at the tracking cap",
            r.evicted_tenants
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--adaptive" || a == "--json" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(EXIT_USAGE);
                }
            }
        } else {
            eprintln!(
                "error: unrecognized argument '{a}' (flags: {} , --adaptive --json -h)",
                VALUE_FLAGS.join(" ")
            );
            std::process::exit(EXIT_USAGE);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let as_json = args.iter().any(|a| a == "--json");

    let addr = get("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let workers: usize =
        get("--workers").map_or(4, |v| parse_num("--workers", &v, "a worker count"));
    let queue: usize = get("--queue").map_or(256, |v| parse_num("--queue", &v, "a queue capacity"));
    let window: usize =
        get("--window").map_or(16, |v| parse_num("--window", &v, "a coalesce window size"));
    let max_conns: usize =
        get("--max-conns").map_or(64, |v| parse_num("--max-conns", &v, "a connection limit"));
    let idle_s: f64 = get("--idle-timeout-s").map_or(30.0, |v| {
        parse_num("--idle-timeout-s", &v, "an idle timeout in seconds")
    });
    let max_seconds: Option<f64> = get("--max-seconds")
        .map(|v| parse_num("--max-seconds", &v, "a serving duration in seconds"));
    let shutdown_policy = match get("--shutdown-from").as_deref().unwrap_or("loopback") {
        "loopback" => ShutdownPolicy::LoopbackOnly,
        "any" => ShutdownPolicy::Any,
        "none" => ShutdownPolicy::Deny,
        other => bad_flag("--shutdown-from", other, "loopback, any or none"),
    };

    let mut quotas = QuotaConfig::unlimited().with_default(QuotaLimits {
        ops_per_s: get("--quota-ops").map(|v| parse_num("--quota-ops", &v, "an ops/s rate")),
        bytes_per_s: get("--quota-bytes").map(|v| parse_num("--quota-bytes", &v, "a bytes/s rate")),
    });
    for (i, a) in args.iter().enumerate() {
        if a == "--tenant-quota" {
            let (tenant, limits) = parse_tenant_quota(&args[i + 1]);
            quotas = quotas.with_tenant(tenant, limits);
        }
    }

    let config = NetConfig {
        serve: ServeConfig {
            workers,
            queue_capacity: queue,
            coalesce_window: window,
            tech: Tech::virtex2pro(),
            ..ServeConfig::default()
        },
        quotas,
        max_connections: max_conns,
        idle_timeout: Duration::from_secs_f64(idle_s),
        adaptive: args
            .iter()
            .any(|a| a == "--adaptive")
            .then(AdaptiveConfig::default),
        shutdown_policy,
    };

    let server = match NetServer::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound address");
    // Scripts parse this line (ephemeral ports with --addr host:0).
    println!("fpunetd listening on {local}");
    use std::io::Write;
    std::io::stdout().flush().ok();

    if let Some(secs) = max_seconds {
        let stop = server.stop_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(secs));
            stop.stop();
        });
    }
    let report = server.run();

    if as_json {
        let doc = json!({
            "tool": "fpunetd",
            "addr": local.to_string(),
            "workers": workers,
            "net": json!({
                "accepted": report.net.accepted,
                "refused_conns": report.net.refused_conns,
                "frames_in": report.net.frames_in,
                "frames_out": report.net.frames_out,
                "requests": report.net.requests,
                "responses": report.net.responses,
                "rejects": report.net.rejects,
                "protocol_errors": report.net.protocol_errors,
            }),
            "pool": metrics_json(&report.pool),
            "tenants": report.tenants.iter().map(|(t, u)| json!({
                "tenant": t,
                "ops": u.ops,
                "bytes": u.bytes,
                "rejected_ops": u.rejected_ops,
                "rejected_bytes": u.rejected_bytes,
            })).collect::<Vec<_>>(),
            "evicted_tenants": report.evicted_tenants,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    } else {
        report_text(&report);
    }
}
