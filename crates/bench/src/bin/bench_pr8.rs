//! `bench_pr8` — one-shot snapshot of the multi-array blocked matmul:
//! thread-scaling of a 128³ product tiled across 8 arrays (with the
//! honest core-count gate the `matmul_threads` bench enforces), a
//! ragged-shape demo (pad overhead + reference check), and the
//! streaming `TileSource` path's residency/fetch counters. Writes the
//! numbers as `BENCH_PR8.json` at the repository root (and echoes them
//! to stdout) so EXPERIMENTS.md has a machine-readable source.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin bench_pr8
//! ```

use fpfpga::matmul::multi::FnTiles;
use fpfpga::matmul::reference::reference_matmul_flags;
use fpfpga::prelude::*;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

const MODE: RoundMode = RoundMode::NearestEven;
const LM: u32 = 4;
const LA: u32 = 5;

fn sample(fmt: FpFormat, rows: u32, cols: u32, seed: f64) -> Matrix {
    Matrix::from_fn(fmt, rows as usize, cols as usize, |i, j| {
        ((i * cols as usize + j) as f64 * 0.37 + seed).sin() * 4.0
    })
}

fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> f64 {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Thread-scaling of the multi-array path: the same problem the
/// `matmul_threads` criterion bench gates on, measured at 1/2/4/8
/// worker threads with the host core count recorded alongside so a
/// "skipped" gate is distinguishable from a passed one.
fn scaling_section(host_cores: usize) -> Value {
    const M: u32 = 128;
    const B: u32 = 32;
    const ARRAYS: u32 = 8;
    let f = FpFormat::SINGLE;
    let a = sample(f, M, M, 1.0);
    let b = sample(f, M, M, 2.0);
    let mm = MultiMatMul::new(M, M, M, B, LM + LA, ARRAYS).expect("valid plan");
    let flops = 2.0 * (M as f64).powi(3);

    // Pin every thread count to the 1-thread result before timing.
    let (c_one, s_one) = mm
        .run(MODE, LM, LA, &a, &b, UnitBackend::Fast, 1)
        .expect("valid run");
    let mut rows = Vec::new();
    let mut secs_by_threads = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (c_par, s_par) = mm
            .run(MODE, LM, LA, &a, &b, UnitBackend::Fast, threads)
            .expect("valid run");
        assert_eq!(c_par, c_one, "{threads}-thread matmul diverged");
        assert_eq!(s_par.total, s_one.total, "{threads}-thread stats diverged");
        let secs = best_of(3, || {
            mm.run(MODE, LM, LA, &a, &b, UnitBackend::Fast, threads)
                .expect("valid run")
                .1
                .total
                .cycles
        });
        println!(
            "multi matmul {M}x{M}x{M} b={B} arrays={ARRAYS} threads={threads}: \
             {:.1} ms, {:.3} GFLOP-equivalent/s",
            secs * 1e3,
            flops / secs / 1e9
        );
        secs_by_threads.push((threads, secs));
        rows.push(json!({
            "threads": threads,
            "seconds": secs,
            "gflop_equivalent_per_s": flops / secs / 1e9,
        }));
    }
    let t1 = secs_by_threads[0].1;
    let t4 = secs_by_threads
        .iter()
        .find(|(t, _)| *t == 4)
        .expect("4-thread row")
        .1;
    let speedup = t1 / t4;
    let gate = if host_cores >= 4 {
        "enforced"
    } else {
        "skipped_lt4_cores"
    };
    println!(
        "multi matmul: 4-thread speedup {speedup:.2}x on {host_cores} CPU(s) — \
         1.5x gate {gate}"
    );
    json!({
        "m": M, "k": M, "n": M,
        "block": B,
        "arrays": ARRAYS,
        "mult_stages": LM,
        "add_stages": LA,
        "flop_equivalents": flops,
        "runs": Value::Array(rows),
        "speedup_4_threads": speedup,
        "gate_1_5x": gate,
    })
}

/// Ragged-shape demo: the shapes that used to panic (`b` not dividing
/// `n`, rectangular operands) now plan, run, match the softfp
/// reference, and report their pad overhead analytically.
fn ragged_section() -> Value {
    let f = FpFormat::SINGLE;
    let mut rows = Vec::new();
    for (m, k, n, b) in [
        (100u32, 37u32, 61u32, 16u32),
        (129, 129, 129, 32),
        (7, 200, 3, 16),
    ] {
        let a = sample(f, m, k, 3.0);
        let bm = sample(f, k, n, 4.0);
        let mm = MultiMatMul::new(m, k, n, b, LM + LA, 4).expect("valid ragged plan");
        let (c, stats) = mm
            .run(MODE, LM, LA, &a, &bm, UnitBackend::Fast, 0)
            .expect("valid ragged run");
        let (want, want_flags) = reference_matmul_flags(&a, &bm, MODE);
        assert_eq!(c, want, "ragged {m}x{k}x{n} diverged from reference");
        assert_eq!(stats.flags, want_flags);
        let waste = mm.plan.waste_fraction();
        println!(
            "ragged {m}x{k}·{k}x{n} b={b}: {} cycles, pad fraction {:.3}, \
             verified against reference",
            stats.total.cycles, waste
        );
        rows.push(json!({
            "m": m, "k": k, "n": n,
            "block": b,
            "cycles": stats.total.cycles,
            "useful_macs": stats.total.useful_macs,
            "pad_macs": stats.total.pad_macs,
            "pad_fraction": waste,
            "matches_reference": true,
        }));
    }
    json!({ "shapes": Value::Array(rows) })
}

/// Streaming `TileSource` path: operands generated tile-by-tile, never
/// materialized; the counters show peak residency bounded by 2·arrays
/// and the deterministic fetch count.
fn streaming_section() -> Value {
    let f = FpFormat::SINGLE;
    let (m, k, n, b, arrays) = (96u32, 80u32, 72u32, 16u32, 4u32);
    let a_src = FnTiles {
        rows: m as usize,
        cols: k as usize,
        format: f,
        gen: |i: usize, j: usize| (((i * 80 + j) as f32 * 0.013).sin().to_bits()) as u64,
    };
    let b_src = FnTiles {
        rows: k as usize,
        cols: n as usize,
        format: f,
        gen: |i: usize, j: usize| (((i * 72 + j) as f32 * 0.017).cos().to_bits()) as u64,
    };
    let mm = MultiMatMul::new(m, k, n, b, LM + LA, arrays).expect("valid streaming plan");
    let t = Instant::now();
    let (c, stats) = mm
        .run_streamed(MODE, LM, LA, &a_src, &b_src, UnitBackend::Fast, 0)
        .expect("valid streaming run");
    let secs = t.elapsed().as_secs_f64();
    assert!(stats.peak_resident_tiles <= 2 * arrays as usize);
    let tile_words = (b as u64) * (b as u64);
    let full_words = (m as u64) * (k as u64) + (k as u64) * (n as u64);
    println!(
        "streamed {m}x{k}·{k}x{n} b={b} arrays={arrays}: {} tile fetches, \
         peak {} resident tiles ({} words vs {} materialized), {:.1} ms",
        stats.tile_fetches,
        stats.peak_resident_tiles,
        stats.peak_resident_tiles as u64 * tile_words,
        full_words,
        secs * 1e3
    );
    json!({
        "m": m, "k": k, "n": n,
        "block": b,
        "arrays": arrays,
        "output_rows": c.rows(),
        "output_cols": c.cols(),
        "tile_fetches": stats.tile_fetches,
        "peak_resident_tiles": stats.peak_resident_tiles,
        "peak_resident_words": stats.peak_resident_tiles as u64 * tile_words,
        "materialized_operand_words": full_words,
        "seconds": secs,
    })
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("bench_pr8: host has {host_cores} CPU(s)");
    let doc = json!({
        "bench": "pr8_multi_array_matmul",
        "host_cores": host_cores,
        "thread_scaling": scaling_section(host_cores),
        "ragged_shapes": ragged_section(),
        "streaming": streaming_section(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_PR8.json");
    println!("wrote {path}");
}
