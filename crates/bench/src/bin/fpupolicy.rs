//! `fpupolicy` — the auto-tuner's decision surface as a table: every
//! candidate precision policy for a storage format, with its fabric
//! cost (opt multiplier @ compute + opt adder @ accumulate, in slices)
//! and its measured probe error (deterministic dot-product sweep over
//! the tuner's depths).
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpupolicy -- --storage f32
//! cargo run --release -p fpfpga-bench --bin fpupolicy -- \
//!     --storage f32 --budget 4ulp
//! ```
//!
//! With `--budget`, the row the auto-tuner would select (cheapest that
//! meets the budget) is marked `<- selected`; if no row qualifies the
//! tool exits with the budget code (3).

use fpfpga::prelude::*;
use fpfpga::serve::autotune;
use fpfpga::serve::tuner::{candidate_policies, policy_cost, probe_stats, PROBE_DEPTHS};
use fpfpga_bench::cli::{parse_budget, parse_format, EXIT_BUDGET, EXIT_USAGE};
use serde_json::json;

const HELP: &str = "fpupolicy — cost/error table of candidate precision policies

Usage: fpupolicy [options]

Options:
  --storage <fmt>   storage format: f32, f48, f64 or e<E>f<F>
                    (default f32; 'all' sweeps the three paper formats)
  --budget <b>      mark the policy the auto-tuner would select
                    (e.g. 4ulp, rel1e-6)
  --json            emit the table as JSON instead of text
  -h, --help        print this help and exit

Exit codes: 0 ok, 2 usage, 3 budget unsatisfiable";

struct Row {
    policy: PrecisionPolicy,
    cost_slices: u32,
    stats: ErrorStats,
    selected: bool,
}

fn rows_for(storage: FpFormat, budget: Option<&ErrorBudget>, tech: &Tech) -> Vec<Row> {
    let cache = SweepCache::new();
    let mode = RoundMode::NearestEven;
    let selected = budget.and_then(|b| autotune(storage, b, tech, &cache).ok().map(|t| t.policy));
    let mut rows: Vec<Row> = candidate_policies(storage)
        .into_iter()
        .map(|policy| Row {
            policy,
            cost_slices: policy_cost(policy, tech, &cache),
            stats: probe_stats(policy, mode),
            selected: selected == Some(policy),
        })
        .collect();
    rows.sort_by_key(|r| (r.cost_slices, r.policy.canonical_name()));
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--json" {
            i += 1;
        } else if a == "--storage" || a == "--budget" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(EXIT_USAGE);
                }
            }
        } else {
            eprintln!("error: unrecognized argument '{a}' (flags: --storage --budget --json -h)");
            std::process::exit(EXIT_USAGE);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let as_json = args.iter().any(|a| a == "--json");
    let budget = get("--budget").map(|v| parse_budget("--budget", &v));
    let storage_arg = get("--storage").unwrap_or_else(|| "f32".to_string());
    let storages: Vec<FpFormat> = if storage_arg == "all" {
        FpFormat::PAPER_PRECISIONS.to_vec()
    } else {
        vec![parse_format("--storage", &storage_arg)]
    };

    let tech = Tech::virtex2pro();
    let tables: Vec<(FpFormat, Vec<Row>)> = storages
        .iter()
        .map(|&s| (s, rows_for(s, budget.as_ref(), &tech)))
        .collect();

    if let Some(b) = &budget {
        // Fail fast so scripts can branch on the exit code.
        if tables
            .iter()
            .any(|(_, rows)| !rows.iter().any(|r| r.selected))
        {
            eprintln!("error: no candidate policy meets budget {b}");
            std::process::exit(EXIT_BUDGET);
        }
    }

    if as_json {
        let doc = json!({
            "tool": "fpupolicy",
            "probe_depths": PROBE_DEPTHS,
            "budget": budget.as_ref().map(|b| b.to_string()),
            "tables": tables.iter().map(|(s, rows)| json!({
                "storage": s.canonical_name(),
                "rows": rows.iter().map(|r| json!({
                    "policy": r.policy.to_string(),
                    "compute": r.policy.compute.canonical_name(),
                    "accumulate": r.policy.accumulate.canonical_name(),
                    "cost_slices": r.cost_slices,
                    "max_ulp": r.stats.max_ulp,
                    "max_rel": r.stats.max_rel,
                    "rms": r.stats.rms,
                    "selected": r.selected,
                })).collect::<Vec<_>>(),
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return;
    }

    println!("fpupolicy — candidate policies by fabric cost (probe depths {PROBE_DEPTHS:?})");
    if let Some(b) = &budget {
        println!("budget: {b}");
    }
    for (s, rows) in &tables {
        println!("\nstorage {}:", s.canonical_name());
        println!(
            "  {:<14} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "policy", "compute", "accum", "slices", "max ulp", "max rel"
        );
        for r in rows {
            println!(
                "  {:<14} {:>8} {:>8} {:>10} {:>10.2} {:>10.2e}{}",
                r.policy.canonical_name(),
                r.policy.compute.canonical_name(),
                r.policy.accumulate.canonical_name(),
                r.cost_slices,
                r.stats.max_ulp,
                r.stats.max_rel,
                if r.selected { "  <- selected" } else { "" },
            );
        }
    }
}
