//! `bench_pr5` — one-shot performance snapshot of the fast-lane work:
//! softfp batch kernel throughput, batched matmul GFLOP-equivalents at
//! 1 and 4 worker threads, and serving p50/p99 latency. Writes the
//! numbers as `BENCH_PR5.json` at the repository root (and echoes them
//! to stdout) so EXPERIMENTS.md has a machine-readable source.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin bench_pr5
//! ```

use fpfpga::matmul::array::ArrayStats;
use fpfpga::prelude::*;
use fpfpga::softfp::{self, fastpath};
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

const MODE: RoundMode = RoundMode::NearestEven;

fn operands(fmt: FpFormat, n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) & fmt.enc_mask()
        })
        .collect()
}

fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> f64 {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of timing for two contenders with the rounds interleaved
/// (a, b, a, b, …) rather than two back-to-back windows. On a shared
/// box a congestion burst then lands on both sides instead of poisoning
/// whichever side happened to own the window, which is what the
/// speedup *ratios* reported below actually need.
fn paired_best_of<A, B>(rounds: usize, mut a: A, mut b: B) -> (f64, f64)
where
    A: FnMut() -> u64,
    B: FnMut() -> u64,
{
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(a());
        ta = ta.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(b());
        tb = tb.min(t.elapsed().as_secs_f64());
    }
    (ta, tb)
}

/// Batch kernel + generic scalar throughput for one format, in Mop/s.
fn softfp_section(fmt: FpFormat, name: &str) -> Value {
    // 16k elements keeps the whole batch (two operand slices + the
    // 16-byte-per-element result buffer) inside L2, so the comparison
    // measures the kernels rather than the memory system.
    const N: usize = 1 << 14;
    let a = operands(fmt, N, 0x5eed ^ fmt.total_bits() as u64);
    let b = operands(fmt, N, 0xcafe ^ fmt.total_bits() as u64);
    let c = operands(fmt, N, 0xf00d ^ fmt.total_bits() as u64);
    let mut out: Vec<(u64, Flags)> = Vec::with_capacity(N);
    let mops = |secs: f64| N as f64 / secs / 1e6;

    let (t_add_scalar, t_add_batch) = paired_best_of(
        7,
        || {
            let mut acc = 0u64;
            for i in 0..N {
                acc ^= softfp::add_bits(fmt, a[i], b[i], MODE).0;
            }
            acc
        },
        || {
            out.clear();
            fastpath::add_bits_batch(fmt, &a, &b, MODE, &mut out);
            out.len() as u64
        },
    );
    let (t_mul_scalar, t_mul_batch) = paired_best_of(
        7,
        || {
            let mut acc = 0u64;
            for i in 0..N {
                acc ^= softfp::mul_bits(fmt, a[i], b[i], MODE).0;
            }
            acc
        },
        || {
            out.clear();
            fastpath::mul_bits_batch(fmt, &a, &b, MODE, &mut out);
            out.len() as u64
        },
    );
    let t_fma_batch = best_of(5, || {
        out.clear();
        fastpath::fma_bits_batch(fmt, &a, &b, &c, MODE, &mut out);
        out.len() as u64
    });

    println!(
        "softfp {name}: add {:.1} -> {:.1} Mop/s ({:.2}x), mul {:.1} -> {:.1} Mop/s ({:.2}x), \
         fma batch {:.1} Mop/s",
        mops(t_add_scalar),
        mops(t_add_batch),
        t_add_scalar / t_add_batch,
        mops(t_mul_scalar),
        mops(t_mul_batch),
        t_mul_scalar / t_mul_batch,
        mops(t_fma_batch),
    );
    json!({
        "format": name,
        "elements": N,
        "add_generic_scalar_mops": mops(t_add_scalar),
        "add_fastpath_batch_mops": mops(t_add_batch),
        "add_speedup": t_add_scalar / t_add_batch,
        "mul_generic_scalar_mops": mops(t_mul_scalar),
        "mul_fastpath_batch_mops": mops(t_mul_batch),
        "mul_speedup": t_mul_scalar / t_mul_batch,
        "fma_fastpath_batch_mops": mops(t_fma_batch),
    })
}

/// Batched matmul wall clock and GFLOP-equivalents at several worker
/// counts (2·n³ flop-equivalents per product).
fn matmul_section() -> Value {
    const N: usize = 96;
    let f = FpFormat::SINGLE;
    let a = Matrix::from_fn(f, N, N, |i, j| {
        ((i * N + j) as f64 * 0.37 + 1.0).sin() * 4.0
    });
    let b = Matrix::from_fn(f, N, N, |i, j| {
        ((i * N + j) as f64 * 0.37 + 2.0).sin() * 4.0
    });
    let flops = 2.0 * (N as f64).powi(3);

    let (c_seq, _): (Matrix, ArrayStats) =
        LinearArray::multiply_batched(f, MODE, 4, 5, &a, &b, UnitBackend::Fast);
    let mut rows = Vec::new();
    let mut secs_by_threads = Vec::new();
    for threads in [1usize, 2, 4] {
        let (c_par, _) = LinearArray::multiply_batched_parallel(
            f,
            MODE,
            4,
            5,
            &a,
            &b,
            UnitBackend::Fast,
            threads,
        );
        assert_eq!(c_par, c_seq, "{threads}-thread matmul diverged");
        let secs = best_of(3, || {
            LinearArray::multiply_batched_parallel(
                f,
                MODE,
                4,
                5,
                &a,
                &b,
                UnitBackend::Fast,
                threads,
            )
            .1
            .cycles
        });
        println!(
            "matmul n={N} threads={threads}: {:.1} ms, {:.3} GFLOP-equivalent/s",
            secs * 1e3,
            flops / secs / 1e9
        );
        secs_by_threads.push((threads, secs));
        rows.push(json!({
            "threads": threads,
            "seconds": secs,
            "gflop_equivalent_per_s": flops / secs / 1e9,
        }));
    }
    let t1 = secs_by_threads[0].1;
    let t4 = secs_by_threads.last().unwrap().1;
    json!({
        "n": N,
        "mult_stages": 4,
        "add_stages": 5,
        "flop_equivalents": flops,
        "runs": Value::Array(rows),
        "speedup_4_threads": t1 / t4,
    })
}

/// Serving latency percentiles from one mixed-trace replay.
fn serve_section() -> Value {
    let specs: Vec<JobSpec> = synth_trace(&TraceConfig {
        seed: 40,
        jobs: 96,
        rate_hz: 1e6,
        payload_scale: 6,
    })
    .into_iter()
    .map(|ev| ev.spec)
    .collect();
    let pool = ServePool::new(ServeConfig {
        workers: 4,
        queue_capacity: specs.len(),
        tech: Tech::virtex2pro(),
        ..ServeConfig::default()
    });
    let t = Instant::now();
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|s| pool.submit(s.clone()).expect("bench job accepted"))
        .collect();
    for h in handles {
        match h.wait() {
            JobOutcome::Completed(_) => {}
            other => panic!("bench job must complete: {other:?}"),
        }
    }
    let wall = t.elapsed().as_secs_f64();
    let snap = pool.join();
    let p50 = snap.latency_quantile_us(0.50);
    let p99 = snap.latency_quantile_us(0.99);
    println!(
        "serve: {} jobs, wall {:.1} ms, p50 {:?} us, p99 {:?} us",
        specs.len(),
        wall * 1e3,
        p50,
        p99
    );
    json!({
        "jobs": specs.len(),
        "workers": 4,
        "wall_seconds": wall,
        "p50_us": p50,
        "p99_us": p99,
    })
}

fn main() {
    let doc = json!({
        "bench": "pr5_fastpath",
        "softfp_batch": Value::Array(vec![
            softfp_section(FpFormat::SINGLE, "f32"),
            softfp_section(FpFormat::FP48, "f48"),
            softfp_section(FpFormat::DOUBLE, "f64"),
        ]),
        "matmul_batched": matmul_section(),
        "serve": serve_section(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_PR5.json");
    println!("wrote {path}");
}
