//! `fpulimb` — one-shot snapshot of the arbitrary-precision datapath:
//! software limb-kernel throughput as the format widens (1, 2, 4 and 8
//! limbs), and the fabric model's BMULT bill and pipeline depth needed
//! to hold a 100 MHz clock at the same widths. Prints the numbers as
//! JSON so EXPERIMENTS.md has a machine-readable source.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpulimb
//! ```

use fpfpga::prelude::*;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

const MODE: RoundMode = RoundMode::NearestEven;

/// The width ladder: double precision (one limb, the scalar baseline),
/// f128, f256 and an 8-limb stress format.
fn ladder() -> Vec<(LimbFormat, ApFormat)> {
    vec![
        (LimbFormat::from_fp(FpFormat::DOUBLE), ApFormat::new(11, 52)),
        (LimbFormat::F128, ApFormat::F128),
        (LimbFormat::F256, ApFormat::F256),
        (LimbFormat::new(23, 488), ApFormat::new(23, 488)),
    ]
}

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical finite operands with exponents clustered around the bias,
/// so add/sub do real alignment work instead of fast-pathing.
fn operands(fmt: LimbFormat, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let sign = splitmix(&mut s) & 1 == 1;
            let exp = (fmt.bias() + (splitmix(&mut s) % 41) as i64 - 20) as u64;
            let frac: Vec<u64> = (0..fmt.limbs()).map(|_| splitmix(&mut s)).collect();
            fmt.pack_parts(sign, exp, &frac)
        })
        .collect()
}

fn best_of<F: FnMut() -> u64>(runs: usize, mut f: F) -> f64 {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Throughput of one kernel over `n` precomputed operand tuples.
fn throughput_mops(ops: usize, secs: f64) -> f64 {
    ops as f64 / secs / 1e6
}

fn software_section() -> Value {
    const N: usize = 20_000;
    const RUNS: usize = 5;
    let mut rows = Vec::new();
    for (fmt, _) in ladder() {
        let a = operands(fmt, N, 11);
        let b = operands(fmt, N, 23);
        let c = operands(fmt, N, 37);
        let time = |f: &dyn Fn(usize) -> (Vec<u64>, Flags)| {
            best_of(RUNS, || {
                let mut acc = 0u64;
                for i in 0..N {
                    let (bits, _) = f(i);
                    acc = acc.wrapping_add(bits[0]);
                }
                acc
            })
        };
        let add_s = time(&|i| limb_add(fmt, &a[i], &b[i], MODE));
        let mul_s = time(&|i| limb_mul(fmt, &a[i], &b[i], MODE));
        let fma_s = time(&|i| limb_fma(fmt, &a[i], &b[i], &c[i], MODE));
        rows.push(json!({
            "format": fmt.canonical_name(),
            "limbs": fmt.limbs(),
            "add_mops": throughput_mops(N, add_s),
            "mul_mops": throughput_mops(N, mul_s),
            "fma_mops": throughput_mops(N, fma_s),
        }));
    }
    Value::Array(rows)
}

fn fabric_section() -> Value {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;
    let target_mhz = 100.0;
    let mut rows = Vec::new();
    for (_, ap) in ladder() {
        let adder = ap.adder_netlist(&tech);
        let mult = ap.multiplier_netlist(&tech);
        let depth = |nl: &Netlist| -> Value {
            match ap.depth_for_clock(nl, opts, &tech, target_mhz) {
                Some(r) => json!({ "stages": r.stages, "clock_mhz": r.clock_mhz }),
                None => Value::Null,
            }
        };
        let best = |nl: &Netlist| -> f64 {
            ap.sweep(nl, opts, &tech)
                .iter()
                .map(|r| r.clock_mhz)
                .fold(0.0, f64::max)
        };
        rows.push(json!({
            "format": format!("e{}f{}", ap.exp_bits, ap.frac_bits),
            "limbs": ap.limbs(),
            "bmults": ap.bmults(),
            "adder_depth_at_100mhz": depth(&adder),
            "adder_best_mhz": best(&adder),
            "mult_depth_at_100mhz": depth(&mult),
            "mult_best_mhz": best(&mult),
        }));
    }
    Value::Array(rows)
}

fn main() {
    let doc = json!({
        "bench": "fpulimb",
        "software_throughput": software_section(),
        "fabric_scaling": fabric_section(),
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
