//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin repro            # everything
//! cargo run --release -p fpfpga-bench --bin repro -- table1  # one artifact
//! cargo run --release -p fpfpga-bench --bin repro -- fig5 --json   # machine-readable
//! ```
//!
//! Artifacts: `fig2`, `table1`, `table2`, `table3`, `table4`, `fig3`,
//! `gflops`, `fig4`, `fig5`, `fig6`, `all` (default).

use fpfpga::repro;
use fpfpga_bench as render;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let what = args.first().map(String::as_str).unwrap_or("all");
    if json {
        let doc = match what {
            "fig2" => render::json::fig2_json(&repro::fig2()),
            "table1" => render::json::unit_table_json("1", &repro::table1()),
            "table2" => render::json::unit_table_json("2", &repro::table2()),
            "table3" => {
                let t = repro::table3();
                render::json::comparison_json("3", &t.adders, &t.multipliers)
            }
            "table4" => {
                let t = repro::table4();
                render::json::comparison_json("4", &t.adders, &t.multipliers)
            }
            "fig3" => render::json::fig3_json(&repro::fig3()),
            "gflops" => render::json::gflops_json(&repro::gflops()),
            "fig4" => render::json::fig4_json(&repro::fig4()),
            "fig5" => {
                render::json::arch_points_json("5", "n", &repro::fig5(&repro::FIG5_PROBLEM_SIZES))
            }
            "fig6" => render::json::arch_points_json(
                "6",
                "b",
                &repro::fig6(repro::FIG6_PROBLEM_SIZE, &repro::FIG6_BLOCK_SIZES),
            ),
            "all" => render::json::all_json(),
            other => {
                eprintln!("unknown artifact '{other}'");
                std::process::exit(2);
            }
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("valid JSON")
        );
        return;
    }
    let out = match what {
        "fig2" => render::render_fig2(&repro::fig2()),
        "table1" => render::render_unit_table(
            "Table 1. Analysis of 32, 48, 64-bit Floating Point Adders",
            &repro::table1(),
        ),
        "table2" => render::render_unit_table(
            "Table 2. Analysis of 32, 48, 64-bit Floating Point Multipliers",
            &repro::table2(),
        ),
        "table3" => render::render_table3(&repro::table3()),
        "table4" => render::render_table4(&repro::table4()),
        "fig3" => render::render_fig3(&repro::fig3()),
        "gflops" => render::render_gflops(&repro::gflops()),
        "fig4" => render::render_fig4(&repro::fig4()),
        "fig5" => render::render_arch_points(
            "Figure 5. Flat designs vs problem size n (PL = 10/19/25)",
            "n",
            &repro::fig5(&repro::FIG5_PROBLEM_SIZES),
        ),
        "fig6" => render::render_arch_points(
            &format!(
                "Figure 6. Blocked designs vs block size b at N = {} (PL = 10/19/25)",
                repro::FIG6_PROBLEM_SIZE
            ),
            "b",
            &repro::fig6(repro::FIG6_PROBLEM_SIZE, &repro::FIG6_BLOCK_SIZES),
        ),
        "all" => render::render_all(),
        other => {
            eprintln!(
                "unknown artifact '{other}'; expected one of: fig2 table1 table2 table3 table4 \
                 fig3 gflops fig4 fig5 fig6 all"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
