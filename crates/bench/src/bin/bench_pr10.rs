//! `bench_pr10` — performance snapshot of the SIMD batch lanes: per-engine
//! softfp batch throughput (scalar fast lane vs the AVX2 wide kernels vs
//! the portable twin), a special-value density sweep for the
//! classify-then-partition pass, and the ≥4× add/mul speedup gate. Writes
//! `BENCH_PR10.json` at the repository root (and echoes to stdout) so
//! EXPERIMENTS.md has a machine-readable source.
//!
//! The gate only arms on hosts where `is_x86_feature_detected!("avx2")`
//! holds; elsewhere it records a skip notice instead of failing, so the
//! bin is safe to run on any CI runner.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin bench_pr10
//! ```

use fpfpga::prelude::*;
use fpfpga::softfp::simd::{self, SimdEngine};
use fpfpga::softfp::Flags;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

const MODE: RoundMode = RoundMode::NearestEven;
const N: usize = 1 << 14;
const ROUNDS: usize = 9;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn operands(fmt: FpFormat, n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed;
    (0..n).map(|_| splitmix(&mut s) & fmt.enc_mask()).collect()
}

/// Random operands where roughly `density_pct`% are special encodings
/// (zeros, infinities, denormal patterns) — the classify-then-partition
/// pass's fixup rate.
fn operands_with_specials(fmt: FpFormat, n: usize, seed: u64, density_pct: u32) -> Vec<u64> {
    let mut s = seed;
    let specials = [
        0u64,
        1u64 << fmt.sign_shift(),
        fmt.pos_inf(),
        fmt.neg_inf(),
        fmt.pack(false, 0, 7),
        fmt.pack(true, 0, fmt.frac_mask()),
    ];
    (0..n)
        .map(|_| {
            let r = splitmix(&mut s);
            if (r % 100) < density_pct as u64 {
                specials[(r / 100) as usize % specials.len()]
            } else {
                // Random normals: resample the exponent field away from
                // the all-zeros/all-ones encodings.
                let mut bits = splitmix(&mut s) & fmt.enc_mask();
                let em = fmt.inf_biased_exp();
                let exp = 1 + (splitmix(&mut s) % (em - 1));
                bits &= !(em << fmt.frac_bits());
                bits |= exp << fmt.frac_bits();
                bits
            }
        })
        .collect()
}

/// Interleaved best-of for two contenders (a, b, a, b, …): congestion
/// bursts on a shared box land on both sides instead of poisoning one
/// window, which the reported *ratios* need.
fn paired_best_of<A, B>(rounds: usize, mut a: A, mut b: B) -> (f64, f64)
where
    A: FnMut() -> u64,
    B: FnMut() -> u64,
{
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(a());
        ta = ta.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(b());
        tb = tb.min(t.elapsed().as_secs_f64());
    }
    (ta, tb)
}

fn engines() -> Vec<(SimdEngine, &'static str)> {
    let mut v = vec![(SimdEngine::Scalar, "scalar")];
    if simd::avx2_available() {
        v.push((SimdEngine::WideAvx2, "wide_avx2"));
    }
    if simd::avx512_available() {
        v.push((SimdEngine::WideAvx512, "wide_avx512"));
    }
    v.push((SimdEngine::WidePortable, "wide_portable"));
    v
}

/// The best wide engine the host supports (what `Auto` dispatches to),
/// with its JSON name.
fn best_wide() -> Option<(SimdEngine, &'static str)> {
    if simd::avx512_available() {
        Some((SimdEngine::WideAvx512, "wide_avx512"))
    } else if simd::avx2_available() {
        Some((SimdEngine::WideAvx2, "wide_avx2"))
    } else {
        None
    }
}

struct OpRun {
    op: &'static str,
    /// (engine name, Mop/s) pairs; scalar is always first.
    mops: Vec<(&'static str, f64)>,
}

impl OpRun {
    fn scalar(&self) -> f64 {
        self.mops[0].1
    }
    fn engine(&self, name: &str) -> Option<f64> {
        self.mops.iter().find(|(n, _)| *n == name).map(|&(_, m)| m)
    }
    fn to_json(&self) -> Value {
        let mut obj: Vec<(String, Value)> = Vec::new();
        for &(name, mops) in &self.mops {
            obj.push((format!("{name}_mops"), json!(mops)));
            if name != "scalar" {
                obj.push((format!("{name}_speedup"), json!(mops / self.scalar())));
            }
        }
        json!({ "op": self.op, "engines": Value::Object(obj) })
    }
}

/// Time one op on one engine (seconds for N elements, best-of interleaved
/// against the scalar engine so the ratio is congestion-fair).
fn run_op(
    op: &'static str,
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    out: &mut Vec<(u64, Flags)>,
) -> OpRun {
    let run = |eng: SimdEngine, out: &mut Vec<(u64, Flags)>| match op {
        "add" => {
            out.clear();
            simd::add_bits_batch_with(eng, fmt, a, b, MODE, out);
            out.len() as u64
        }
        "sub" => {
            out.clear();
            simd::sub_bits_batch_with(eng, fmt, a, b, MODE, out);
            out.len() as u64
        }
        "mul" => {
            out.clear();
            simd::mul_bits_batch_with(eng, fmt, a, b, MODE, out);
            out.len() as u64
        }
        _ => {
            out.clear();
            simd::fma_bits_batch_with(eng, fmt, a, b, c, MODE, out);
            out.len() as u64
        }
    };
    let mut mops = Vec::new();
    for (eng, name) in engines() {
        if eng == SimdEngine::Scalar {
            continue;
        }
        let mut o2 = Vec::with_capacity(N);
        let (ts, te) = paired_best_of(
            ROUNDS,
            || run(SimdEngine::Scalar, out),
            || run(eng, &mut o2),
        );
        if mops.is_empty() {
            mops.push(("scalar", N as f64 / ts / 1e6));
        } else {
            // Keep the best scalar window across pairings.
            let best = N as f64 / ts / 1e6;
            if best > mops[0].1 {
                mops[0].1 = best;
            }
        }
        mops.push((name, N as f64 / te / 1e6));
    }
    OpRun { op, mops }
}

fn format_section(fmt: FpFormat, name: &str, runs_out: &mut Vec<(String, OpRun)>) -> Value {
    let a = operands(fmt, N, 0x5eed ^ fmt.total_bits() as u64);
    let b = operands(fmt, N, 0xcafe ^ fmt.total_bits() as u64);
    let c = operands(fmt, N, 0xf00d ^ fmt.total_bits() as u64);
    let mut out: Vec<(u64, Flags)> = Vec::with_capacity(N);

    let mut rows = Vec::new();
    for op in ["add", "sub", "mul", "fma"] {
        let r = run_op(op, fmt, &a, &b, &c, &mut out);
        let line: Vec<String> = r.mops.iter().map(|(n, m)| format!("{n} {m:.1}")).collect();
        println!("softfp {name} {op}: {} Mop/s", line.join(", "));
        rows.push(r.to_json());
        runs_out.push((format!("{name}/{op}"), r));
    }
    json!({ "format": name, "elements": N, "ops": Value::Array(rows) })
}

/// Wide-vs-scalar throughput across special-value densities: where the
/// classify-then-partition fixup pass starts to dominate.
fn density_section(fmt: FpFormat, name: &str) -> Value {
    let mut rows = Vec::new();
    let mut out: Vec<(u64, Flags)> = Vec::with_capacity(N);
    let mut o2: Vec<(u64, Flags)> = Vec::with_capacity(N);
    let wide = best_wide().map_or(SimdEngine::WidePortable, |(eng, _)| eng);
    for density in [0u32, 5, 50, 100] {
        let a = operands_with_specials(fmt, N, 0xd00d + density as u64, density);
        let b = operands_with_specials(fmt, N, 0xbeef + density as u64, density);
        let (ts, tw) = paired_best_of(
            ROUNDS,
            || {
                out.clear();
                simd::add_bits_batch_with(SimdEngine::Scalar, fmt, &a, &b, MODE, &mut out);
                out.len() as u64
            },
            || {
                o2.clear();
                simd::add_bits_batch_with(wide, fmt, &a, &b, MODE, &mut o2);
                o2.len() as u64
            },
        );
        let (scalar_mops, wide_mops) = (N as f64 / ts / 1e6, N as f64 / tw / 1e6);
        println!(
            "density {name} add {density:>3}% specials: scalar {scalar_mops:.1}, wide {wide_mops:.1} Mop/s ({:.2}x)",
            wide_mops / scalar_mops
        );
        rows.push(json!({
            "special_density_pct": density,
            "scalar_mops": scalar_mops,
            "wide_mops": wide_mops,
            "wide_speedup": wide_mops / scalar_mops,
        }));
    }
    json!({ "format": name, "op": "add", "elements": N, "rows": Value::Array(rows) })
}

fn feature_report() -> Value {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        json!({
            "arch": std::env::consts::ARCH,
            "avx2": std::arch::is_x86_feature_detected!("avx2"),
            "avx512f": std::arch::is_x86_feature_detected!("avx512f"),
            "bmi2": std::arch::is_x86_feature_detected!("bmi2"),
            "lzcnt": std::arch::is_x86_feature_detected!("lzcnt"),
        })
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        json!({ "arch": std::env::consts::ARCH, "avx2": false })
    }
}

fn main() {
    let features = feature_report();
    println!("features: {features}");

    let mut runs: Vec<(String, OpRun)> = Vec::new();
    let softfp = Value::Array(vec![
        format_section(FpFormat::SINGLE, "f32", &mut runs),
        format_section(FpFormat::FP48, "f48", &mut runs),
        format_section(FpFormat::DOUBLE, "f64", &mut runs),
    ]);
    let density = Value::Array(vec![
        density_section(FpFormat::SINGLE, "f32"),
        density_section(FpFormat::DOUBLE, "f64"),
    ]);

    // The ≥4× gate: batch add and mul, best wide engine (what `Auto`
    // dispatches to) vs the scalar fast lane, every named format. Only
    // armed when a wide x86 engine is detected; a failed first look gets
    // one re-measure before the gate trips (shared-box noise insurance).
    const GATE: f64 = 4.0;
    let mut gate: Value = json!({ "armed": false, "notice": "no avx2/avx512; gate skipped" });
    if let Some((wide_eng, wide_name)) = best_wide() {
        let mut checks = Vec::new();
        let mut failed = Vec::new();
        for (label, r) in &runs {
            if !label.ends_with("/add") && !label.ends_with("/mul") {
                continue;
            }
            let wide = r.engine(wide_name).expect("wide engine measured");
            let speedup = wide / r.scalar();
            checks.push(json!({ "op": label, "speedup": speedup }));
            if speedup < GATE {
                failed.push(label.clone());
            }
        }
        let _ = wide_eng;
        if !failed.is_empty() {
            // Re-measure the failures once on a quieter window.
            println!("gate re-measure: {failed:?}");
            let mut still = Vec::new();
            for label in &failed {
                let (fname, op) = label.split_once('/').unwrap();
                let fmt = match fname {
                    "f32" => FpFormat::SINGLE,
                    "f48" => FpFormat::FP48,
                    _ => FpFormat::DOUBLE,
                };
                let a = operands(fmt, N, 0x1234);
                let b = operands(fmt, N, 0x5678);
                let c = operands(fmt, N, 0x9abc);
                let mut out = Vec::with_capacity(N);
                let r = run_op(
                    if op == "add" { "add" } else { "mul" },
                    fmt,
                    &a,
                    &b,
                    &c,
                    &mut out,
                );
                let speedup = r.engine(wide_name).unwrap() / r.scalar();
                println!("  {label}: {speedup:.2}x on re-measure");
                if speedup < GATE {
                    still.push(format!("{label} {speedup:.2}x"));
                }
            }
            assert!(
                still.is_empty(),
                "SIMD gate: wide/scalar speedup below {GATE}x for {still:?}"
            );
        }
        gate = json!({ "armed": true, "engine": wide_name, "threshold": GATE, "checks": Value::Array(checks) });
        println!("gate: all add/mul lanes >= {GATE}x on {wide_name}");
    } else {
        println!("gate: skipped (no wide x86 engine)");
    }

    let doc = json!({
        "bench": "pr10_simd",
        "features": features,
        "softfp_engines": softfp,
        "special_density": density,
        "gate": gate,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_PR10.json");
    println!("wrote {path}");
}
