//! `fpunet` — wire-protocol client and load generator for `fpunetd`.
//!
//! Replays the same synthetic traces `fpuserve` replays in-process,
//! but over real TCP sockets: N connections, each pipelining up to
//! `--inflight` requests, paced by one of three traffic shapes:
//!
//! - **poisson** — requests are sent at the trace's Poisson arrival
//!   times (open loop up to the in-flight window, which bounds the
//!   generator under server overload);
//! - **bursty** — the same jobs in back-to-back bursts of `--burst`,
//!   each burst fully drained before an idle gap sized to keep the
//!   long-run average at `--rate`;
//! - **adversarial** — poisson traffic plus a saboteur connection
//!   injecting malformed frames (bad version, oversized length
//!   prefix, undecodable request bodies) that must bounce off the
//!   server as typed rejects without disturbing the real traffic.
//!
//! Latency is measured client-side per request (send → matching
//! response) into the *same histogram type the pool uses*, and the
//! `--json` report uses the same record shape as `fpuserve --json`
//! (see README "Load-sweep JSON schema"), so in-process and networked
//! artifacts are directly comparable. `--verify` additionally checks
//! every completed result bit-for-bit against the serial in-process
//! oracle. Deadlines are stripped from trace specs (a load harness
//! wants completions); priorities and policies are kept.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fpfpga::prelude::*;
use fpfpga::serve::Metrics;
use fpfpga_bench::cli::{bad_flag, parse_num, EXIT_USAGE};
use fpfpga_bench::json::run_record;
use fpfpga_net::{ErrorCode, NetClient, NetError, Response};
use serde_json::json;

const HELP: &str = "fpunet — load generator / client for fpunetd

Usage: fpunet [options]

Target:
  --addr <host:port>   server address (default 127.0.0.1:7070)

Trace (same generator as fpuserve):
  --seed <n>           trace RNG seed (default 7)
  --jobs <n>           number of requests (default 256)
  --rate <hz>          mean arrival rate in requests/s (default 20000)
  --payload-scale <n>  multiplier on payload sizes (default 1)
  --tenants <n>        tag requests round-robin as tenant-0..n-1
                       (default 0: leave specs untagged)

Delivery:
  --conns <n>          parallel connections (default 1)
  --inflight <n>       max pipelined requests per connection (default 32)
  --traffic <shape>    poisson | bursty | adversarial (default poisson)
  --burst <n>          burst size for bursty traffic (default 64)

Checks & report:
  --verify             compare completed results bit-for-bit against
                       the in-process serial oracle (exit 1 on any
                       divergence or non-completion)
  --slo-p99-us <n>     exit 1 if client-observed p99 exceeds this
  --shutdown           send the Shutdown frame after the run (drains
                       the server; fpunetd exits cleanly)
  --json               emit the report as JSON (fpuserve record shape)
  --out <file>         also write the JSON report to a file
  -h, --help           print this help and exit

Exit codes: 0 ok, 1 runtime/SLO/verify failure, 2 usage";

const VALUE_FLAGS: &[&str] = &[
    "--addr",
    "--seed",
    "--jobs",
    "--rate",
    "--payload-scale",
    "--tenants",
    "--conns",
    "--inflight",
    "--traffic",
    "--burst",
    "--slo-p99-us",
    "--out",
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Traffic {
    Poisson,
    Bursty,
    Adversarial,
}

/// One in-flight request: global trace index, wire id, send instant.
struct Pending {
    index: usize,
    req_id: u64,
    sent: Instant,
}

/// What one connection thread brings home.
#[derive(Default)]
struct ConnOutcome {
    /// Completed results by global trace index (populated under
    /// `--verify` only; 100k-request runs don't hoard payloads).
    completed: Vec<(usize, JobResult)>,
    /// Reject counts by error-code name.
    rejects: BTreeMap<String, u64>,
}

/// Receive one response, account it, and (optionally) keep the result.
fn recv_one(
    client: &mut NetClient,
    pending: &mut VecDeque<Pending>,
    metrics: &Metrics,
    outcome: &mut ConnOutcome,
    keep_results: bool,
) -> Result<(), String> {
    let (rid, resp) = client.recv().map_err(|e| format!("recv: {e}"))?;
    let p = pending
        .pop_front()
        .ok_or_else(|| format!("response {rid} with nothing in flight"))?;
    if rid != p.req_id {
        return Err(format!(
            "out-of-order response: got {rid}, expected {}",
            p.req_id
        ));
    }
    match resp {
        Response::Completed(result) => {
            metrics.on_completed(p.sent.elapsed(), 1);
            if keep_results {
                outcome.completed.push((p.index, result));
            }
        }
        Response::Rejected(rej) => {
            match rej.code {
                ErrorCode::TimedOut => metrics.on_timed_out(),
                ErrorCode::Shed => metrics.on_shed(),
                ErrorCode::Cancelled => metrics.on_cancelled(),
                ErrorCode::Failed => metrics.on_failed(),
                _ => metrics.on_rejected(),
            }
            *outcome
                .rejects
                .entry(format!("{:?}", rej.code))
                .or_insert(0) += 1;
        }
    }
    Ok(())
}

/// Replay this connection's share of the trace. `events` is the
/// (global index, arrival offset, spec) list assigned to it.
#[allow(clippy::too_many_arguments)]
fn conn_worker(
    addr: String,
    events: Vec<(usize, Duration, JobSpec)>,
    start: Instant,
    traffic: Traffic,
    burst: usize,
    rate_hz: f64,
    inflight: usize,
    metrics: Arc<Metrics>,
    keep_results: bool,
) -> Result<ConnOutcome, String> {
    let mut client = NetClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut pending: VecDeque<Pending> = VecDeque::with_capacity(inflight);
    let mut outcome = ConnOutcome::default();
    let mut sent_in_burst = 0usize;
    for (index, at, spec) in events {
        match traffic {
            Traffic::Poisson | Traffic::Adversarial => {
                // Open-loop pacing against the shared trace clock; the
                // in-flight window below bounds it under overload.
                let now = start.elapsed();
                if at > now {
                    std::thread::sleep(at - now);
                }
            }
            Traffic::Bursty => {
                if sent_in_burst == burst {
                    // Drain everything, then idle so the long-run
                    // average rate still matches `--rate`.
                    while !pending.is_empty() {
                        recv_one(
                            &mut client,
                            &mut pending,
                            &metrics,
                            &mut outcome,
                            keep_results,
                        )?;
                    }
                    std::thread::sleep(Duration::from_secs_f64(burst as f64 / rate_hz));
                    sent_in_burst = 0;
                }
                sent_in_burst += 1;
            }
        }
        if pending.len() == inflight {
            recv_one(
                &mut client,
                &mut pending,
                &metrics,
                &mut outcome,
                keep_results,
            )?;
        }
        metrics.on_submitted();
        let req_id = client.send(&spec).map_err(|e| format!("send: {e}"))?;
        pending.push_back(Pending {
            index,
            req_id,
            sent: Instant::now(),
        });
    }
    while !pending.is_empty() {
        recv_one(
            &mut client,
            &mut pending,
            &metrics,
            &mut outcome,
            keep_results,
        )?;
    }
    client.goodbye().ok();
    Ok(outcome)
}

/// The adversarial side channel: rounds of malformed bytes that must
/// come back as typed rejects (or clean closes), never wedge the
/// server. Returns the number of rounds that got an answer.
fn saboteur(addr: String, rounds: usize, done: Arc<AtomicU64>) {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    for round in 0..rounds {
        let Ok(mut raw) = TcpStream::connect(&addr) else {
            return;
        };
        raw.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let garbage: Vec<u8> = match round % 3 {
            0 => {
                // Unsupported version byte in an otherwise fine frame.
                let mut v = Vec::new();
                v.extend_from_slice(&10u32.to_le_bytes());
                v.push(0xEE); // version
                v.push(1); // kind: request
                v.extend_from_slice(&round.to_le_bytes());
                v
            }
            1 => {
                // Length prefix over MAX_FRAME_LEN: refused before
                // allocation.
                let mut v = Vec::new();
                v.extend_from_slice(&u32::MAX.to_le_bytes());
                v.extend_from_slice(&[0u8; 10]);
                v
            }
            _ => {
                // Well-framed request whose body does not decode: a
                // per-request Malformed reject, connection survives.
                let mut v = Vec::new();
                v.extend_from_slice(&14u32.to_le_bytes());
                v.push(fpfpga_net::WIRE_VERSION);
                v.push(1); // kind: request
                v.extend_from_slice(&round.to_le_bytes());
                v.extend_from_slice(&[0xFF; 4]); // bogus kernel tag
                v
            }
        };
        if raw.write_all(&garbage).is_err() {
            continue;
        }
        let mut buf = [0u8; 512];
        if matches!(raw.read(&mut buf), Ok(n) if n > 0) {
            done.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--verify" || a == "--shutdown" || a == "--json" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(EXIT_USAGE);
                }
            }
        } else {
            eprintln!(
                "error: unrecognized argument '{a}' (flags: {} , --verify --shutdown --json -h)",
                VALUE_FLAGS.join(" ")
            );
            std::process::exit(EXIT_USAGE);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let addr = get("--addr").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let seed: u64 = get("--seed").map_or(7, |v| parse_num("--seed", &v, "a u64 seed"));
    let jobs: usize = get("--jobs").map_or(256, |v| parse_num("--jobs", &v, "a job count"));
    let rate_hz: f64 = get("--rate").map_or(20_000.0, |v| {
        parse_num("--rate", &v, "an arrival rate in requests/s")
    });
    let payload_scale: usize = get("--payload-scale").map_or(1, |v| {
        parse_num("--payload-scale", &v, "a payload size multiplier ≥ 1")
    });
    let tenants: usize =
        get("--tenants").map_or(0, |v| parse_num("--tenants", &v, "a tenant count"));
    let conns: usize = get("--conns").map_or(1, |v| {
        parse_num::<usize>("--conns", &v, "a connection count").max(1)
    });
    let inflight: usize = get("--inflight").map_or(32, |v| {
        parse_num::<usize>("--inflight", &v, "a pipelining window ≥ 1").max(1)
    });
    let burst: usize = get("--burst").map_or(64, |v| {
        parse_num::<usize>("--burst", &v, "a burst size ≥ 1").max(1)
    });
    let traffic = match get("--traffic").as_deref().unwrap_or("poisson") {
        "poisson" => Traffic::Poisson,
        "bursty" => Traffic::Bursty,
        "adversarial" => Traffic::Adversarial,
        other => bad_flag("--traffic", other, "poisson, bursty or adversarial"),
    };
    let verify = args.iter().any(|a| a == "--verify");
    let slo_p99_us: Option<u64> =
        get("--slo-p99-us").map(|v| parse_num("--slo-p99-us", &v, "a latency bound in µs"));
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let as_json = args.iter().any(|a| a == "--json");
    let out = get("--out");

    // Build the trace; strip deadlines (the harness wants completions)
    // and apply the tenant round-robin.
    let cfg = TraceConfig {
        seed,
        jobs,
        rate_hz,
        payload_scale,
    };
    let events: Vec<(usize, Duration, JobSpec)> = synth_trace(&cfg)
        .into_iter()
        .enumerate()
        .map(|(i, ev)| {
            let mut spec = ev.spec;
            spec.deadline = None;
            if tenants > 0 {
                spec.tenant = Some(format!("tenant-{}", i % tenants));
            }
            (i, ev.at, spec)
        })
        .collect();
    let oracle: Vec<JobResult> = if verify {
        let specs: Vec<JobSpec> = events.iter().map(|(_, _, s)| s.clone()).collect();
        run_serial(&specs, &Tech::virtex2pro())
    } else {
        Vec::new()
    };

    // Round-robin the trace across connections, preserving global
    // arrival offsets so poisson pacing stays faithful.
    let mut shares: Vec<Vec<(usize, Duration, JobSpec)>> = (0..conns).map(|_| Vec::new()).collect();
    for (i, ev) in events.into_iter().enumerate() {
        shares[i % conns].push(ev);
    }

    let metrics = Arc::new(Metrics::new());
    let saboteur_rounds = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let sab_handle = (traffic == Traffic::Adversarial).then(|| {
        let addr = addr.clone();
        let done = saboteur_rounds.clone();
        let rounds = (jobs / 50).clamp(3, 60);
        std::thread::spawn(move || saboteur(addr, rounds, done))
    });
    let handles: Vec<_> = shares
        .into_iter()
        .map(|share| {
            let addr = addr.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                conn_worker(
                    addr, share, start, traffic, burst, rate_hz, inflight, metrics, verify,
                )
            })
        })
        .collect();
    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for h in handles {
        match h.join().expect("connection thread") {
            Ok(o) => outcomes.push(o),
            Err(e) => failures.push(e),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    if let Some(h) = sab_handle {
        h.join().expect("saboteur thread");
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }

    if verify {
        let mut completed: Vec<(usize, JobResult)> = outcomes
            .iter()
            .flat_map(|o| o.completed.iter().cloned())
            .collect();
        completed.sort_by_key(|(i, _)| *i);
        if completed.len() != jobs {
            eprintln!(
                "error: --verify requires every job to complete ({} of {jobs} did; \
                 run without quotas/shedding)",
                completed.len()
            );
            std::process::exit(1);
        }
        for (i, got) in &completed {
            assert_eq!(
                got, &oracle[*i],
                "job {i} diverged from the serial oracle over the wire"
            );
        }
    }

    let mut rejects: BTreeMap<String, u64> = BTreeMap::new();
    for o in &outcomes {
        for (code, n) in &o.rejects {
            *rejects.entry(code.clone()).or_insert(0) += n;
        }
    }
    let snap = metrics.snapshot();

    if shutdown {
        match NetClient::connect(&addr) {
            Ok(c) => {
                if let Err(e) = c.shutdown_server() {
                    // A racing drain (server already stopping) closes
                    // the socket; that's a clean outcome too.
                    if !matches!(e, NetError::ServerClosed) {
                        eprintln!("warning: shutdown handshake: {e}");
                    }
                }
            }
            Err(e) => eprintln!("warning: shutdown connect: {e}"),
        }
    }

    let doc = json!({
        "tool": "fpunet",
        "addr": addr,
        "trace": json!({ "seed": seed, "jobs": jobs, "rate_hz": rate_hz }),
        "traffic": match traffic {
            Traffic::Poisson => "poisson",
            Traffic::Bursty => "bursty",
            Traffic::Adversarial => "adversarial",
        },
        "conns": conns,
        "inflight": inflight,
        "equivalence": if verify {
            json!("bit-identical to serial oracle")
        } else {
            json!(null)
        },
        "rejects_by_code": rejects,
        "saboteur_rounds": saboteur_rounds.load(Ordering::Relaxed),
        "runs": [run_record(None, wall_s, jobs, &snap)],
    });
    if let Some(path) = &out {
        std::fs::write(
            path,
            format!("{}\n", serde_json::to_string_pretty(&doc).unwrap()),
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if as_json {
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
    } else {
        let q = |p: f64| {
            snap.latency_quantile_us(p)
                .map_or("-".to_string(), |us| format!("{us} µs"))
        };
        println!("fpunet — networked trace replay against {addr}");
        println!(
            "trace: seed={seed} jobs={jobs} rate={rate_hz:.0} Hz, {conns} conn(s) × {inflight} in flight"
        );
        println!(
            "  {} completed, {} rejected ({} kinds), {} timed out, {} shed in {:.2} ms → {:.0} jobs/s",
            snap.completed,
            snap.rejected,
            rejects.len(),
            snap.timed_out,
            snap.shed,
            wall_s * 1e3,
            jobs as f64 / wall_s,
        );
        println!(
            "  client-observed latency: p50 ≤ {}, p90 ≤ {}, p99 ≤ {}",
            q(0.50),
            q(0.90),
            q(0.99)
        );
        if verify {
            println!("  equivalence: every completed result bit-identical to the serial oracle");
        }
        if traffic == Traffic::Adversarial {
            println!(
                "  saboteur: {} malformed rounds answered, server undisturbed",
                saboteur_rounds.load(Ordering::Relaxed)
            );
        }
    }

    if let Some(bound) = slo_p99_us {
        match snap.latency_quantile_us(0.99) {
            Some(p99) if p99 <= bound => {}
            Some(p99) => {
                eprintln!("error: p99 {p99} µs exceeds SLO {bound} µs");
                std::process::exit(1);
            }
            None => {
                eprintln!("error: no completed requests to hold the SLO against");
                std::process::exit(1);
            }
        }
    }
}
