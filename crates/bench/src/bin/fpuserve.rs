//! `fpuserve` — replay a synthetic mixed-precision job trace through
//! the serving layer and report throughput, latency and scheduling
//! metrics; or demo a single precision policy end to end.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpuserve -- \
//!     --seed 7 --jobs 256 --workers 4
//! cargo run --release -p fpfpga-bench --bin fpuserve -- --policy f32/f64
//! cargo run --release -p fpfpga-bench --bin fpuserve -- \
//!     --error-budget 4ulp --storage f32
//! ```
//!
//! The trace is a Poisson arrival process over the full kernel mix
//! (elementwise streams, dot products, MVM, matmul, LU, FFT, depth
//! sweeps) at mixed precisions and policies, a pure function of
//! `--seed`. Every replay first checks the pool's results bit-for-bit
//! against the serial oracle, then reports the replay metrics;
//! `--scale` sweeps the worker count to show throughput scaling.
//!
//! With `--policy` (pin a policy) or `--error-budget` (let the
//! ULP-budget auto-tuner choose one), the tool instead runs a
//! dot-product job under that policy through a pool and reports the
//! resolved policy, its probe error and its fabric cost. An
//! unsatisfiable budget exits with the budget code (3).

use std::time::Instant;

use fpfpga::prelude::*;
use fpfpga::serve::tuner::{policy_cost, probe_stats, PROBE_DEPTHS};
use fpfpga::serve::{autotune, run_serial, Kernel};
use fpfpga_bench::cli::{
    bad_flag, die_submit, parse_budget, parse_format, parse_num, parse_policy, EXIT_BUDGET,
    EXIT_USAGE,
};
use fpfpga_bench::json::{metrics_json, run_record};
use serde_json::json;

const HELP: &str = "fpuserve — trace-replay driver for the fpfpga serving layer

Usage: fpuserve [options]

Trace replay:
  --seed <n>         trace RNG seed (default 7)
  --jobs <n>         number of requests in the trace (default 256)
  --rate <hz>        Poisson arrival rate in requests/s (default 20000)
  --payload-scale <n> multiplier on payload sizes (default 1)
  --workers <n>      worker (= shard) count (default 4)
  --queue <n>        per-shard queue capacity (default: trace size)
  --window <n>       max jobs coalesced into one batch (default 16)
  --scale            sweep 1/2/4/8 workers and print a scaling table

Precision-policy demo (replaces the replay when given):
  --policy <p>       pin a policy, compute[/accumulate[/storage]]
                     (e.g. f32, f32/f64, f32/f64/f32)
  --error-budget <b> auto-tune the cheapest policy meeting the budget
                     (e.g. 4ulp, rel1e-6)
  --storage <fmt>    storage format for --error-budget (default f32)

Common:
  --json             emit the report as JSON instead of text
  -h, --help         print this help and exit

Exit codes: 0 ok, 1 runtime failure, 2 usage, 3 budget unsatisfiable,
4 queue rejected, 5 pool closed";

const VALUE_FLAGS: &[&str] = &[
    "--seed",
    "--jobs",
    "--rate",
    "--payload-scale",
    "--workers",
    "--queue",
    "--window",
    "--policy",
    "--error-budget",
    "--storage",
];

struct Replay {
    metrics: MetricsSnapshot,
    wall_s: f64,
}

/// Replay `specs` through a pool of `workers` workers as fast as the
/// queues accept, asserting bit-identical results against `oracle`
/// before reporting any number.
fn replay(specs: &[JobSpec], oracle: &[JobResult], config: ServeConfig) -> Replay {
    let workers = config.workers;
    let pool = ServePool::new(config);
    let start = Instant::now();
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|s| {
            pool.submit(s.clone()).unwrap_or_else(|e| {
                die_submit("trace replay (is --queue at least the trace size?)", e)
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            JobOutcome::Completed(r) => assert_eq!(
                r, oracle[i],
                "job {i} diverged from the serial oracle at {workers} workers"
            ),
            other => panic!("job {i} did not complete: {other:?}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    Replay {
        metrics: pool.join(),
        wall_s,
    }
}

fn report_text(r: &Replay, specs_len: usize, workers: usize) {
    let m = &r.metrics;
    println!(
        "pool: {} workers — {} jobs in {:.2} ms → {:.0} jobs/s, {:.2e} work items/s",
        workers,
        specs_len,
        r.wall_s * 1e3,
        specs_len as f64 / r.wall_s,
        m.work_items as f64 / r.wall_s,
    );
    println!(
        "  outcomes: {} completed, {} rejected, {} timed out, {} shed, {} failed",
        m.completed, m.rejected, m.timed_out, m.shed, m.failed
    );
    println!(
        "  policies: {} mixed-precision jobs, {} auto-tuned submissions",
        m.mixed_jobs, m.auto_tuned
    );
    println!(
        "  batching: {} batches over {} coalescible jobs, occupancy {:.2}",
        m.batches,
        m.batched_jobs,
        m.batch_occupancy()
    );
    let q = |p: f64| {
        m.latency_quantile_us(p)
            .map_or("-".to_string(), |us| format!("{us} µs"))
    };
    println!(
        "  latency (bucket upper bounds): p50 ≤ {}, p90 ≤ {}, p99 ≤ {}; peak queue depth {}",
        q(0.50),
        q(0.90),
        q(0.99),
        m.max_queue_depth
    );
    println!(
        "  sweep cache: {} hits / {} misses ({}), {} evictions",
        m.cache_hits,
        m.cache_misses,
        m.cache_hit_rate()
            .map_or("-".to_string(), |r| format!("{:.0}% hit rate", r * 100.0)),
        m.cache_evictions
    );
}

/// The policy-demo job: a deterministic 64-element dot product encoded
/// in `storage`.
fn demo_kernel(storage: FpFormat) -> Kernel {
    let enc = |v: f64| SoftFloat::from_f64(storage, v).bits();
    let x: Vec<u64> = (0..64)
        .map(|i| enc(0.75 + (i % 13) as f64 * 0.25))
        .collect();
    let y: Vec<u64> = (0..64).map(|i| enc(1.0 + (i % 7) as f64 * 0.5)).collect();
    Kernel::Dot {
        mult_stages: 5,
        add_stages: 4,
        x,
        y,
    }
}

/// Run the precision-policy demo: resolve (or auto-tune) the policy,
/// submit one dot-product job under it, and report policy, probe error
/// and fabric cost.
fn policy_demo(
    pinned: Option<PrecisionPolicy>,
    budget: Option<ErrorBudget>,
    storage: FpFormat,
    as_json: bool,
) {
    let tech = Tech::virtex2pro();
    let cache = SweepCache::new();
    let mode = RoundMode::NearestEven;

    // Resolve up front so the report can explain the choice; the pool
    // re-resolves identically (the tuner is deterministic).
    let (policy, evaluated) = match (pinned, &budget) {
        (Some(p), _) => (p, 1usize),
        (None, Some(b)) => match autotune(storage, b, &tech, &cache) {
            Ok(t) => (t.policy, t.evaluated),
            Err(detail) => {
                eprintln!("error: error budget unsatisfiable: {detail}");
                std::process::exit(EXIT_BUDGET);
            }
        },
        (None, None) => unreachable!("demo requires --policy or --error-budget"),
    };
    let stats = probe_stats(policy, mode);
    let cost = policy_cost(policy, &tech, &cache);

    let pool = ServePool::new(ServeConfig::with_workers(2));
    let spec = match budget {
        Some(b) => JobSpec::of(demo_kernel(storage)).auto_policy(storage, b),
        None => JobSpec::of(demo_kernel(policy.storage)).with_policy(policy),
    };
    let handle = pool
        .submit(spec)
        .unwrap_or_else(|e| die_submit("policy demo", e));
    let dot_bits = match handle.wait() {
        JobOutcome::Completed(JobResult::Dot { value, .. }) => value,
        other => {
            eprintln!("error: policy demo job did not complete: {other:?}");
            std::process::exit(1);
        }
    };
    let m = pool.join();
    let result = SoftFloat::from_bits(policy.storage, dot_bits).to_f64();

    if as_json {
        let doc = json!({
            "tool": "fpuserve",
            "mode": "policy-demo",
            "policy": policy.to_string(),
            "compute": policy.compute.to_string(),
            "accumulate": policy.accumulate.to_string(),
            "storage": policy.storage.to_string(),
            "auto_tuned": budget.is_some(),
            "candidates_evaluated": evaluated,
            "probe": json!({
                "depths": PROBE_DEPTHS,
                "max_ulp": stats.max_ulp,
                "max_rel": stats.max_rel,
                "rms": stats.rms,
            }),
            "cost_slices": cost,
            "dot_result": result,
            "metrics": metrics_json(&m),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return;
    }

    println!("fpuserve — precision-policy demo");
    match budget {
        Some(b) => println!(
            "auto-tuned for budget {b} on {} storage ({evaluated} candidates evaluated)",
            storage.canonical_name()
        ),
        None => println!("pinned policy"),
    }
    println!(
        "policy: {policy} — compute {}, accumulate {}, storage {}",
        policy.compute, policy.accumulate, policy.storage
    );
    println!(
        "probe error (dot depths {PROBE_DEPTHS:?}): max {:.2} ulp, rel {:.2e}, rms {:.2e}",
        stats.max_ulp, stats.max_rel, stats.rms
    );
    println!("fabric cost: {cost} slices (opt multiplier @ compute + opt adder @ accumulate)");
    println!(
        "serve: dot(64) = {result} via ServePool — {} mixed job(s), {} auto-tuned submission(s)",
        m.mixed_jobs, m.auto_tuned
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--scale" || a == "--json" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(EXIT_USAGE);
                }
            }
        } else {
            eprintln!(
                "error: unrecognized argument '{a}' (flags: {} , --scale --json -h)",
                VALUE_FLAGS.join(" ")
            );
            std::process::exit(EXIT_USAGE);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let as_json = args.iter().any(|a| a == "--json");

    let pinned = get("--policy").map(|v| parse_policy("--policy", &v));
    let budget = get("--error-budget").map(|v| parse_budget("--error-budget", &v));
    let storage = get("--storage").map_or(FpFormat::SINGLE, |v| parse_format("--storage", &v));
    if pinned.is_some() && budget.is_some() {
        bad_flag(
            "--error-budget",
            "…",
            "either --policy or --error-budget, not both",
        );
    }
    if pinned.is_some() || budget.is_some() {
        policy_demo(pinned, budget, storage, as_json);
        return;
    }

    let seed: u64 = get("--seed").map_or(7, |v| parse_num("--seed", &v, "a u64 seed"));
    let jobs: usize = get("--jobs").map_or(256, |v| parse_num("--jobs", &v, "a job count"));
    let rate_hz: f64 = get("--rate").map_or(20_000.0, |v| {
        parse_num("--rate", &v, "an arrival rate in requests/s")
    });
    let payload_scale: usize = get("--payload-scale").map_or(1, |v| {
        parse_num("--payload-scale", &v, "a payload size multiplier ≥ 1")
    });
    let workers: usize =
        get("--workers").map_or(4, |v| parse_num("--workers", &v, "a worker count"));
    let queue: usize = get("--queue").map_or(jobs.max(1), |v| {
        parse_num("--queue", &v, "a queue capacity")
    });
    let window: usize =
        get("--window").map_or(16, |v| parse_num("--window", &v, "a coalesce window size"));
    let scale = args.iter().any(|a| a == "--scale");

    let cfg = TraceConfig {
        seed,
        jobs,
        rate_hz,
        payload_scale,
    };
    let specs: Vec<JobSpec> = synth_trace(&cfg).into_iter().map(|ev| ev.spec).collect();
    let tech = Tech::virtex2pro();
    let oracle = run_serial(&specs, &tech);
    let make_config = |workers: usize| ServeConfig {
        workers,
        queue_capacity: queue,
        coalesce_window: window,
        tech: tech.clone(),
        ..ServeConfig::default()
    };

    let worker_counts: Vec<usize> = if scale {
        vec![1, 2, 4, 8]
    } else {
        vec![workers]
    };
    let replays: Vec<(usize, Replay)> = worker_counts
        .iter()
        .map(|&w| (w, replay(&specs, &oracle, make_config(w))))
        .collect();

    if as_json {
        let runs: Vec<serde_json::Value> = replays
            .iter()
            .map(|(w, r)| run_record(Some(*w), r.wall_s, specs.len(), &r.metrics))
            .collect();
        let doc = json!({
            "tool": "fpuserve",
            "trace": json!({ "seed": seed, "jobs": jobs, "rate_hz": rate_hz }),
            "queue_capacity": queue,
            "coalesce_window": window,
            "equivalence": "bit-identical to serial oracle",
            "runs": runs,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return;
    }

    println!("fpuserve — serving-layer trace replay");
    println!(
        "trace: seed={seed} jobs={jobs} rate={rate_hz:.0} Hz (Poisson, mixed kernels/policies)"
    );
    println!("queue capacity {queue}, coalesce window {window}");
    println!("equivalence: every replay checked bit-identical to the serial oracle");
    for (w, r) in &replays {
        report_text(r, specs.len(), *w);
    }
    if scale {
        let base = specs.len() as f64 / replays[0].1.wall_s;
        println!("\nworker scaling (speedup over 1 worker):");
        println!("  workers   jobs/s      speedup");
        for (w, r) in &replays {
            let jps = specs.len() as f64 / r.wall_s;
            println!("  {:>7}   {:>9.0}   {:>6.2}x", w, jps, jps / base);
        }
    }
}
