//! `fpuserve` — replay a synthetic mixed-precision job trace through
//! the serving layer and report throughput, latency and scheduling
//! metrics.
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpuserve -- \
//!     --seed 7 --jobs 256 --workers 4
//! ```
//!
//! The trace is a Poisson arrival process over the full kernel mix
//! (elementwise streams, dot products, MVM, matmul, LU, FFT, depth
//! sweeps) at mixed precisions, a pure function of `--seed`. Every
//! replay first checks the pool's results bit-for-bit against the
//! serial oracle, then reports the replay metrics; `--scale` sweeps
//! the worker count to show throughput scaling.

use std::time::Instant;

use fpfpga::prelude::*;
use fpfpga::serve::run_serial;
use fpfpga_bench::json::metrics_json;
use serde_json::json;

const HELP: &str = "fpuserve — trace-replay driver for the fpfpga serving layer

Usage: fpuserve [options]

Options:
  --seed <n>         trace RNG seed (default 7)
  --jobs <n>         number of requests in the trace (default 256)
  --rate <hz>        Poisson arrival rate in requests/s (default 20000)
  --payload-scale <n> multiplier on payload sizes (default 1)
  --workers <n>      worker (= shard) count (default 4)
  --queue <n>        per-shard queue capacity (default: trace size)
  --window <n>       max jobs coalesced into one batch (default 16)
  --scale            sweep 1/2/4/8 workers and print a scaling table
  --json             emit the report as JSON instead of text
  -h, --help         print this help and exit";

fn bad_flag(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: invalid value '{value}' for {flag}: expected {expected}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bad_flag(flag, value, expected))
}

const VALUE_FLAGS: &[&str] = &[
    "--seed",
    "--jobs",
    "--rate",
    "--payload-scale",
    "--workers",
    "--queue",
    "--window",
];

struct Replay {
    metrics: MetricsSnapshot,
    wall_s: f64,
}

/// Replay `specs` through a pool of `workers` workers as fast as the
/// queues accept, asserting bit-identical results against `oracle`
/// before reporting any number.
fn replay(specs: &[JobSpec], oracle: &[JobResult], config: ServeConfig) -> Replay {
    let workers = config.workers;
    let pool = ServePool::new(config);
    let start = Instant::now();
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|s| match pool.submit(s.clone()) {
            Submit::Accepted(h) => h,
            Submit::Rejected { queue_depth } => {
                eprintln!(
                    "error: queue full at depth {queue_depth} — raise --queue above the trace size"
                );
                std::process::exit(1);
            }
            Submit::Invalid(reason) => {
                eprintln!("error: trace produced an invalid job: {reason}");
                std::process::exit(1);
            }
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            JobOutcome::Completed(r) => assert_eq!(
                r, oracle[i],
                "job {i} diverged from the serial oracle at {workers} workers"
            ),
            other => panic!("job {i} did not complete: {other:?}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    Replay {
        metrics: pool.join(),
        wall_s,
    }
}

fn report_text(r: &Replay, specs_len: usize, workers: usize) {
    let m = &r.metrics;
    println!(
        "pool: {} workers — {} jobs in {:.2} ms → {:.0} jobs/s, {:.2e} work items/s",
        workers,
        specs_len,
        r.wall_s * 1e3,
        specs_len as f64 / r.wall_s,
        m.work_items as f64 / r.wall_s,
    );
    println!(
        "  outcomes: {} completed, {} rejected, {} timed out, {} shed, {} failed",
        m.completed, m.rejected, m.timed_out, m.shed, m.failed
    );
    println!(
        "  batching: {} batches over {} coalescible jobs, occupancy {:.2}",
        m.batches,
        m.batched_jobs,
        m.batch_occupancy()
    );
    let q = |p: f64| {
        m.latency_quantile_us(p)
            .map_or("-".to_string(), |us| format!("{us} µs"))
    };
    println!(
        "  latency (bucket upper bounds): p50 ≤ {}, p90 ≤ {}, p99 ≤ {}; peak queue depth {}",
        q(0.50),
        q(0.90),
        q(0.99),
        m.max_queue_depth
    );
    println!(
        "  sweep cache: {} hits / {} misses ({}), {} evictions",
        m.cache_hits,
        m.cache_misses,
        m.cache_hit_rate()
            .map_or("-".to_string(), |r| format!("{:.0}% hit rate", r * 100.0)),
        m.cache_evictions
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--scale" || a == "--json" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!(
                "error: unrecognized argument '{a}' (flags: {} , --scale --json -h)",
                VALUE_FLAGS.join(" ")
            );
            std::process::exit(2);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let seed: u64 = get("--seed").map_or(7, |v| parse_num("--seed", &v, "a u64 seed"));
    let jobs: usize = get("--jobs").map_or(256, |v| parse_num("--jobs", &v, "a job count"));
    let rate_hz: f64 = get("--rate").map_or(20_000.0, |v| {
        parse_num("--rate", &v, "an arrival rate in requests/s")
    });
    let payload_scale: usize = get("--payload-scale").map_or(1, |v| {
        parse_num("--payload-scale", &v, "a payload size multiplier ≥ 1")
    });
    let workers: usize =
        get("--workers").map_or(4, |v| parse_num("--workers", &v, "a worker count"));
    let queue: usize = get("--queue").map_or(jobs.max(1), |v| {
        parse_num("--queue", &v, "a queue capacity")
    });
    let window: usize =
        get("--window").map_or(16, |v| parse_num("--window", &v, "a coalesce window size"));
    let scale = args.iter().any(|a| a == "--scale");
    let as_json = args.iter().any(|a| a == "--json");

    let cfg = TraceConfig {
        seed,
        jobs,
        rate_hz,
        payload_scale,
    };
    let specs: Vec<JobSpec> = synth_trace(&cfg).into_iter().map(|ev| ev.spec).collect();
    let tech = Tech::virtex2pro();
    let oracle = run_serial(&specs, &tech);
    let make_config = |workers: usize| ServeConfig {
        workers,
        queue_capacity: queue,
        coalesce_window: window,
        tech: tech.clone(),
        ..ServeConfig::default()
    };

    let worker_counts: Vec<usize> = if scale {
        vec![1, 2, 4, 8]
    } else {
        vec![workers]
    };
    let replays: Vec<(usize, Replay)> = worker_counts
        .iter()
        .map(|&w| (w, replay(&specs, &oracle, make_config(w))))
        .collect();

    if as_json {
        let runs: Vec<serde_json::Value> = replays
            .iter()
            .map(|(w, r)| {
                json!({
                    "workers": *w,
                    "wall_s": r.wall_s,
                    "jobs_per_s": specs.len() as f64 / r.wall_s,
                    "metrics": metrics_json(&r.metrics),
                })
            })
            .collect();
        let doc = json!({
            "tool": "fpuserve",
            "trace": json!({ "seed": seed, "jobs": jobs, "rate_hz": rate_hz }),
            "queue_capacity": queue,
            "coalesce_window": window,
            "equivalence": "bit-identical to serial oracle",
            "runs": runs,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return;
    }

    println!("fpuserve — serving-layer trace replay");
    println!(
        "trace: seed={seed} jobs={jobs} rate={rate_hz:.0} Hz (Poisson, mixed kernels/precisions)"
    );
    println!("queue capacity {queue}, coalesce window {window}");
    println!("equivalence: every replay checked bit-identical to the serial oracle");
    for (w, r) in &replays {
        report_text(r, specs.len(), *w);
    }
    if scale {
        let base = specs.len() as f64 / replays[0].1.wall_s;
        println!("\nworker scaling (speedup over 1 worker):");
        println!("  workers   jobs/s      speedup");
        for (w, r) in &replays {
            let jps = specs.len() as f64 / r.wall_s;
            println!("  {:>7}   {:>9.0}   {:>6.2}x", w, jps, jps / base);
        }
    }
}
