//! `fpugen` — generate a floating-point unit from constraints, in the
//! spirit of the FPU generator the paper cites as reference \[6\].
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpugen -- \
//!     --op add --bits 32 --target-mhz 200 --metric freq-area
//! ```
//!
//! ```text
//! Options:
//!   --op <add|mul|div|sqrt|mac>       operation (required)
//!   --bits <32|48|64>                 precision (default 32)
//!   --exp <n> --frac <n>              custom format (overrides --bits)
//!   --target-mhz <f>                  required clock
//!   --max-slices <n>                  slice budget
//!   --metric <max-freq|freq-area|min-area>   selection rule (default freq-area)
//!   --tech <v2pro|virtexe>            device family (default v2pro)
//!   --objective <speed|area>          tool objective (default speed)
//!   --verbose                         print the generated netlist table
//! ```

use fpfpga::fpu::generator::{generate, Metric, Request, UnitOp};
use fpfpga::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };

    let op = match get("--op").as_deref().and_then(UnitOp::parse) {
        Some(op) => op,
        None => {
            eprintln!("--op <add|mul|div|sqrt|mac> is required");
            std::process::exit(2);
        }
    };

    let format = if let (Some(e), Some(f)) = (get("--exp"), get("--frac")) {
        let (e, f) = (e.parse().expect("--exp"), f.parse().expect("--frac"));
        FpFormat::try_new(e, f).unwrap_or_else(|| {
            eprintln!("invalid custom format 1+{e}+{f}");
            std::process::exit(2);
        })
    } else {
        match get("--bits").as_deref().unwrap_or("32") {
            "32" => FpFormat::SINGLE,
            "48" => FpFormat::FP48,
            "64" => FpFormat::DOUBLE,
            other => {
                eprintln!("--bits must be 32, 48 or 64 (got {other}); use --exp/--frac for custom");
                std::process::exit(2);
            }
        }
    };

    let metric = match get("--metric").as_deref().unwrap_or("freq-area") {
        "max-freq" => Metric::MaxFrequency,
        "freq-area" => Metric::FreqPerArea,
        "min-area" => Metric::MinArea,
        other => {
            eprintln!("unknown metric '{other}'");
            std::process::exit(2);
        }
    };

    let tech = match get("--tech").as_deref().unwrap_or("v2pro") {
        "v2pro" => Tech::virtex2pro(),
        "virtexe" => Tech::virtex_e(),
        other => {
            eprintln!("unknown tech '{other}'");
            std::process::exit(2);
        }
    };

    let opts = match get("--objective").as_deref().unwrap_or("speed") {
        "speed" => SynthesisOptions::SPEED,
        "area" => SynthesisOptions::AREA,
        other => {
            eprintln!("unknown objective '{other}'");
            std::process::exit(2);
        }
    };

    let req = Request {
        format,
        op,
        target_mhz: get("--target-mhz").map(|v| v.parse().expect("--target-mhz")),
        max_slices: get("--max-slices").map(|v| v.parse().expect("--max-slices")),
        metric,
    };

    match generate(&req, &tech, opts) {
        Ok(g) => {
            println!("generated {:?} unit, {format}:", op);
            println!("  {}", g.report);
            println!("  latency: {} cycles = {:.1} ns", g.report.stages, g.report.latency_ns());
            println!("  rationale: {}", g.rationale);
            for w in &g.warnings {
                println!("  warning: {w}");
            }
            if args.iter().any(|a| a == "--verbose") {
                use fpfpga::fpu::generator::UnitOp;
                let netlist = match op {
                    UnitOp::Add => fpfpga::prelude::AdderDesign::new(format).netlist(&tech),
                    UnitOp::Mul => fpfpga::prelude::MultiplierDesign::new(format).netlist(&tech),
                    UnitOp::Div => fpfpga::prelude::DividerDesign::new(format).netlist(&tech),
                    UnitOp::Sqrt => fpfpga::prelude::SqrtDesign::new(format).netlist(&tech),
                    UnitOp::Mac => fpfpga::fpu::FusedMacDesign::new(format).netlist(&tech),
                };
                println!("\n{}", netlist.component_table());
            }
        }
        Err(e) => {
            eprintln!("infeasible: {e}");
            std::process::exit(1);
        }
    }
}
