//! `fpugen` — generate a floating-point unit from constraints, in the
//! spirit of the FPU generator the paper cites as reference \[6\].
//!
//! ```text
//! cargo run --release -p fpfpga-bench --bin fpugen -- \
//!     --op add --bits 32 --target-mhz 200 --metric freq-area
//! ```
//!
//! ```text
//! Options:
//!   --op <add|mul|div|sqrt|mac>       operation (required)
//!   --bits <32|48|64>                 precision (default 32)
//!   --exp <n> --frac <n>              custom format (overrides --bits)
//!   --target-mhz <f>                  required clock
//!   --max-slices <n>                  slice budget
//!   --metric <max-freq|freq-area|min-area>   selection rule (default freq-area)
//!   --tech <v2pro|virtexe>            device family (default v2pro)
//!   --objective <speed|area>          tool objective (default speed)
//!   --verbose                         print the generated netlist table
//! ```

use fpfpga::fpu::generator::{Generation, Metric, Request, UnitOp};
use fpfpga::prelude::*;
use fpfpga_bench::cli::{bad_flag, parse_format, parse_num};

const HELP: &str = "fpugen — generate a floating-point unit from constraints

Usage: fpugen --op <op> [options]

Options:
  --op <add|mul|div|sqrt|mac>       operation (required)
  --format <f32|f48|f64|e<E>f<F>>   precision, canonical grammar (default f32)
  --bits <32|48|64>                 precision, legacy spelling
  --exp <n> --frac <n>              custom format (overrides --bits)
  --target-mhz <f>                  required clock
  --max-slices <n>                  slice budget
  --metric <max-freq|freq-area|min-area>   selection rule (default freq-area)
  --tech <v2pro|virtexe>            device family (default v2pro)
  --objective <speed|area>          tool objective (default speed)
  --verbose                         print the generated netlist table
  -h, --help                        print this help and exit";

/// Flags that consume a value; anything else on the command line must be
/// `--verbose` or it is rejected up front.
const VALUE_FLAGS: &[&str] = &[
    "--op",
    "--format",
    "--bits",
    "--exp",
    "--frac",
    "--target-mhz",
    "--max-slices",
    "--metric",
    "--tech",
    "--objective",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--verbose" {
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("error: {a} requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!(
                "error: unrecognized argument '{a}' (flags: {} , --verbose)",
                VALUE_FLAGS.join(" ")
            );
            std::process::exit(2);
        }
    }
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let op = match get("--op") {
        Some(v) => UnitOp::parse(&v)
            .unwrap_or_else(|| bad_flag("--op", &v, "one of add, mul, div, sqrt, mac")),
        None => {
            eprintln!("error: --op <add|mul|div|sqrt|mac> is required");
            std::process::exit(2);
        }
    };

    let format = if let (Some(e), Some(f)) = (get("--exp"), get("--frac")) {
        let exp: u32 = parse_num("--exp", &e, "an exponent width in bits");
        let frac: u32 = parse_num("--frac", &f, "a fraction width in bits");
        FpFormat::try_new(exp, frac).unwrap_or_else(|| {
            eprintln!(
                "error: invalid values '{e}'/'{f}' for --exp/--frac: \
                 1+{exp}+{frac} is not a representable format"
            );
            std::process::exit(2);
        })
    } else if let Some(v) = get("--format") {
        parse_format("--format", &v)
    } else {
        let v = get("--bits").unwrap_or_else(|| "32".to_string());
        match v.as_str() {
            "32" => FpFormat::SINGLE,
            "48" => FpFormat::FP48,
            "64" => FpFormat::DOUBLE,
            _ => bad_flag(
                "--bits",
                &v,
                "32, 48 or 64 (use --format or --exp/--frac for other formats)",
            ),
        }
    };

    let metric = {
        let v = get("--metric").unwrap_or_else(|| "freq-area".to_string());
        match v.as_str() {
            "max-freq" => Metric::MaxFrequency,
            "freq-area" => Metric::FreqPerArea,
            "min-area" => Metric::MinArea,
            _ => bad_flag("--metric", &v, "one of max-freq, freq-area, min-area"),
        }
    };

    let tech = {
        let v = get("--tech").unwrap_or_else(|| "v2pro".to_string());
        match v.as_str() {
            "v2pro" => Tech::virtex2pro(),
            "virtexe" => Tech::virtex_e(),
            _ => bad_flag("--tech", &v, "one of v2pro, virtexe"),
        }
    };

    let opts = {
        let v = get("--objective").unwrap_or_else(|| "speed".to_string());
        match v.as_str() {
            "speed" => SynthesisOptions::SPEED,
            "area" => SynthesisOptions::AREA,
            _ => bad_flag("--objective", &v, "one of speed, area"),
        }
    };

    let req = Request {
        format,
        op,
        target_mhz: get("--target-mhz")
            .map(|v| parse_num("--target-mhz", &v, "a clock frequency in MHz")),
        max_slices: get("--max-slices").map(|v| parse_num("--max-slices", &v, "a slice count")),
        metric,
    };

    match Generation::of(req).run(&tech, opts) {
        Ok(g) => {
            println!("generated {:?} unit, {format}:", op);
            println!("  {}", g.report);
            println!(
                "  latency: {} cycles = {:.1} ns",
                g.report.stages,
                g.report.latency_ns()
            );
            println!("  rationale: {}", g.rationale);
            for w in &g.warnings {
                println!("  warning: {w}");
            }
            if args.iter().any(|a| a == "--verbose") {
                use fpfpga::fpu::generator::UnitOp;
                let netlist = match op {
                    UnitOp::Add => fpfpga::prelude::AdderDesign::new(format).netlist(&tech),
                    UnitOp::Mul => fpfpga::prelude::MultiplierDesign::new(format).netlist(&tech),
                    UnitOp::Div => fpfpga::prelude::DividerDesign::new(format).netlist(&tech),
                    UnitOp::Sqrt => fpfpga::prelude::SqrtDesign::new(format).netlist(&tech),
                    UnitOp::Mac => fpfpga::fpu::FusedMacDesign::new(format).netlist(&tech),
                };
                println!("\n{}", netlist.component_table());
            }
        }
        Err(e) => {
            eprintln!("infeasible: {e}");
            std::process::exit(1);
        }
    }
}
