//! Streaming-engine bench: the per-cycle `LinearArray::multiply` loop
//! vs the batched `LinearArray::multiply_batched` fast path on a
//! single-precision 64×64 problem (and a 96×96 scaling point). Both
//! paths are bit-identical — the property and kernel tests assert it —
//! so this measures pure simulator overhead: the batched engine skips
//! the per-clock slot shuffling and bubble cycles.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::prelude::*;
use std::hint::black_box;

const LM: u32 = 7; // multiplier stages (paper's single-precision design)
const LA: u32 = 9; // adder stages

fn operands(n: usize) -> (Matrix, Matrix) {
    let fmt = FpFormat::SINGLE;
    let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.29).sin());
    let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + 3 * j) as f64 * 0.17).cos());
    (a, b)
}

fn bench_stream_batch(c: &mut Criterion) {
    let fmt = FpFormat::SINGLE;
    let mode = RoundMode::NearestEven;

    for n in [64usize, 96] {
        let (a, b) = operands(n);

        // The two paths must agree before we time them.
        let (c_cycle, s_cycle) =
            LinearArray::multiply(fmt, mode, LM, LA, &a, &b, UnitBackend::Fast);
        let (c_batch, s_batch) =
            LinearArray::multiply_batched(fmt, mode, LM, LA, &a, &b, UnitBackend::Fast);
        assert_eq!(
            c_cycle, c_batch,
            "batched result must be bit-identical (n={n})"
        );
        assert_eq!(
            s_cycle.cycles, s_batch.cycles,
            "and model the same cycles (n={n})"
        );

        let mut g = c.benchmark_group(format!("stream_{n}x{n}_single"));
        g.throughput(Throughput::Elements((2 * n * n * n) as u64)); // FLOPs
        g.sample_size(10);

        g.bench_function("per_cycle", |bch| {
            bch.iter(|| {
                let (out, _) = LinearArray::multiply(fmt, mode, LM, LA, &a, &b, UnitBackend::Fast);
                black_box(out.get(0, 0))
            })
        });

        g.bench_function("batched", |bch| {
            bch.iter(|| {
                let (out, _) =
                    LinearArray::multiply_batched(fmt, mode, LM, LA, &a, &b, UnitBackend::Fast);
                black_box(out.get(0, 0))
            })
        });

        g.finish();
    }
}

criterion_group!(benches, bench_stream_batch);
criterion_main!(benches);
