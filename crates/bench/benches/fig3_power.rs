//! Figure 3 bench: regenerates the power-vs-stages curves at 100 MHz and
//! times the power/energy models.

use criterion::{criterion_group, criterion_main, Criterion};
use fpfpga::prelude::*;
use fpfpga::repro;
use std::hint::black_box;

fn regenerate_and_print() {
    println!("\n{}", fpfpga_bench::render_fig3(&repro::fig3()));
    println!("\n{}", fpfpga_bench::render_fig4(&repro::fig4()));
}

fn bench_power(c: &mut Criterion) {
    regenerate_and_print();

    let model = PowerModel::virtex2pro();
    let area = AreaCost {
        luts: 800.0,
        ffs: 1200.0,
        bmults: 4,
        brams: 2,
        routing_slices: 0.0,
    };

    let mut g = c.benchmark_group("power_energy");
    g.bench_function("xpower_eval", |b| {
        b.iter(|| black_box(model.power_mw(&area, 100.0, 0.3).total_mw()))
    });

    let tech = Tech::virtex2pro();
    let units = UnitSet::for_level(
        FpFormat::SINGLE,
        PipeliningLevel::Moderate,
        &tech,
        SynthesisOptions::SPEED,
    );
    g.bench_function("flat_energy_report_n32", |b| {
        let arch = ArchitectureEnergy::new(units.clone(), 32, 32, &tech);
        b.iter(|| black_box(arch.charge_flat(32, &tech).total_nj()))
    });
    g.bench_function("blocked_energy_report_n160_b16", |b| {
        let plan = BlockMatMul::square(160, 16, units.pl()).unwrap();
        let arch = ArchitectureEnergy::new(units.clone(), 16, 16, &tech);
        b.iter(|| black_box(arch.charge_blocked(&plan, &tech).total_nj()))
    });
    g.finish();
}

criterion_group!(benches, bench_power);
criterion_main!(benches);
