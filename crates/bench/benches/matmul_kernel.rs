//! Matmul kernel bench: regenerates the Section 4.2 GFLOPS result and
//! the Figure 5/6 sweeps, and times the cycle-accurate array simulator
//! and the native CPU baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::baselines::cpu::native_sgemm;
use fpfpga::prelude::*;
use fpfpga::repro;
use std::hint::black_box;

fn regenerate_and_print() {
    println!("\n{}", fpfpga_bench::render_gflops(&repro::gflops()));
    println!(
        "\n{}",
        fpfpga_bench::render_arch_points(
            "Figure 5. Flat designs vs problem size n (PL = 10/19/25)",
            "n",
            &repro::fig5(&repro::FIG5_PROBLEM_SIZES),
        )
    );
    println!(
        "\n{}",
        fpfpga_bench::render_arch_points(
            &format!(
                "Figure 6. Blocked designs vs block size b at N = {} (PL = 10/19/25)",
                repro::FIG6_PROBLEM_SIZE
            ),
            "b",
            &repro::fig6(repro::FIG6_PROBLEM_SIZE, &repro::FIG6_BLOCK_SIZES),
        )
    );
}

fn bench_matmul(c: &mut Criterion) {
    regenerate_and_print();

    let fmt = FpFormat::SINGLE;
    let n = 16usize;
    let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.29).sin());
    let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + 3 * j) as f64 * 0.17).cos());

    let mut g = c.benchmark_group("matmul_kernel");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64)); // FLOPs per run
    g.sample_size(20);

    g.bench_function("array_sim_fast_16x16", |bch| {
        bch.iter(|| {
            let (c, _) =
                LinearArray::multiply(fmt, RoundMode::NearestEven, 7, 9, &a, &b, UnitBackend::Fast);
            black_box(c.get(0, 0))
        })
    });

    g.bench_function("array_sim_structural_8x8", |bch| {
        let a8 = Matrix::from_fn(fmt, 8, 8, |i, j| ((i + j) as f64 * 0.3).sin());
        let b8 = Matrix::from_fn(fmt, 8, 8, |i, j| ((i * j) as f64 * 0.2).cos());
        bch.iter(|| {
            let (c, _) = LinearArray::multiply(
                fmt,
                RoundMode::NearestEven,
                5,
                6,
                &a8,
                &b8,
                UnitBackend::Structural,
            );
            black_box(c.get(0, 0))
        })
    });

    g.bench_function("blocked_sim_32x32_b8", |bch| {
        let n = 32usize;
        let am = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.07).sin());
        let bm = Matrix::from_fn(fmt, n, n, |i, j| ((i ^ j) as f64 * 0.05).cos());
        let plan = BlockMatMul::square(n as u32, 8, 16).unwrap();
        bch.iter(|| {
            let (c, _, _) = plan
                .run(
                    fmt,
                    RoundMode::NearestEven,
                    7,
                    9,
                    &am,
                    &bm,
                    UnitBackend::Fast,
                )
                .unwrap();
            black_box(c.get(0, 0))
        })
    });

    g.bench_function("reference_softfp_16x16", |bch| {
        bch.iter(|| {
            black_box(fpfpga::matmul::reference::reference_matmul(
                &a,
                &b,
                RoundMode::NearestEven,
            ))
        })
    });

    // Native CPU baseline on the host (not era-correct, but runnable).
    g.bench_function("native_sgemm_256", |bch| {
        let n = 256usize;
        let av: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.001).sin()).collect();
        let bv: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.002).cos()).collect();
        let mut cv = vec![0.0f32; n * n];
        bch.iter(|| {
            native_sgemm(n, &av, &bv, &mut cv);
            black_box(cv[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
