//! Serving-layer throughput bench: one synthetic mixed trace replayed
//! through [`ServePool`]s of 1, 2, 4 and 8 workers. Before any timing,
//! every pool's results are asserted bit-identical to the serial
//! oracle — sharding and coalescing may only change *when* work runs,
//! never a result bit — so the numbers measure pure scheduling and
//! parallelism, and the 4-worker point is expected to clear 1.5× the
//! single-worker throughput on the compute-heavy mix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::prelude::*;
use fpfpga::serve::run_serial;
use std::hint::black_box;
use std::time::Instant;

/// A trace heavy enough that worker parallelism, not queue overhead,
/// dominates the replay.
fn trace_specs() -> Vec<JobSpec> {
    synth_trace(&TraceConfig {
        seed: 40,
        jobs: 96,
        rate_hz: 1e6,
        payload_scale: 6,
    })
    .into_iter()
    .map(|ev| ev.spec)
    .collect()
}

fn config(workers: usize, queue: usize, tech: &Tech) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: queue,
        tech: tech.clone(),
        ..ServeConfig::default()
    }
}

/// Replay the whole trace and return its results in submission order.
fn replay(specs: &[JobSpec], cfg: ServeConfig) -> Vec<JobResult> {
    let pool = ServePool::new(cfg);
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|s| pool.submit(s.clone()).expect("bench job accepted"))
        .collect();
    handles
        .into_iter()
        .map(|h| match h.wait() {
            JobOutcome::Completed(r) => r,
            other => panic!("bench job must complete: {other:?}"),
        })
        .collect()
}

fn bench_serve_throughput(c: &mut Criterion) {
    let specs = trace_specs();
    let tech = Tech::virtex2pro();
    let queue = specs.len();
    let oracle = run_serial(&specs, &tech);

    // Equivalence gate: every worker count must be bit-identical to
    // serial before we publish a single throughput number.
    for workers in [1usize, 2, 4, 8] {
        let got = replay(&specs, config(workers, queue, &tech));
        assert_eq!(got, oracle, "{workers}-worker replay diverged from serial");
    }

    // The headline scaling claim, measured outside criterion's sampling
    // so it holds for the reported run as a hard assertion: ≥ 1.5× at
    // 4 workers vs 1 (best of 3 replays each, to shave scheduler noise).
    let best = |workers: usize| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(replay(&specs, config(workers, queue, &tech)));
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = best(1);
    let t4 = best(4);
    let speedup = t1 / t4;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("serve_throughput: 4-worker speedup over 1 worker = {speedup:.2}x ({cores} CPU(s))");
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4 workers must deliver ≥1.5x the 1-worker throughput, got {speedup:.2}x"
        );
    } else {
        // On a machine without 4 cores the workers time-share one CPU
        // and a parallel speedup is physically impossible; report the
        // measurement but skip the scaling assertion.
        println!("serve_throughput: <4 CPUs — scaling assertion skipped (measured {speedup:.2}x)");
    }

    let mut g = c.benchmark_group("serve_throughput");
    g.throughput(Throughput::Elements(specs.len() as u64)); // jobs per replay
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| black_box(replay(&specs, config(workers, queue, &tech)).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
