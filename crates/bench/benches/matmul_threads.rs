//! Batched-matmul thread-scaling bench: one `n×n` product on the
//! batched streaming path, fanned out over 1, 2, 4 and 8 scoped worker
//! threads ([`LinearArray::multiply_batched_parallel`]). Every worker
//! count is first asserted bit-identical — matrix, flags and statistics
//! — to the sequential batched run; the 4-thread point must then clear
//! 1.5× the single-thread wall clock (hard assertion, CPU-gated like
//! `serve_throughput`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::matmul::array::ArrayStats;
use fpfpga::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 96;
const LM: u32 = 4;
const LA: u32 = 5;
const F: FpFormat = FpFormat::SINGLE;
const RM: RoundMode = RoundMode::NearestEven;

fn sample(n: usize, seed: f64) -> Matrix {
    Matrix::from_fn(F, n, n, |i, j| {
        ((i * n + j) as f64 * 0.37 + seed).sin() * 4.0
    })
}

fn run(a: &Matrix, b: &Matrix, threads: usize) -> (Matrix, ArrayStats) {
    LinearArray::multiply_batched_parallel(F, RM, LM, LA, a, b, UnitBackend::Fast, threads)
}

fn bench_matmul_threads(c: &mut Criterion) {
    let a = sample(N, 1.0);
    let b = sample(N, 2.0);

    // Equivalence gate: the PE fan-out may only change wall clock,
    // never a result bit, a flag or a statistic.
    let (c_seq, s_seq) = LinearArray::multiply_batched(F, RM, LM, LA, &a, &b, UnitBackend::Fast);
    for threads in [1usize, 2, 4, 8] {
        let (c_par, s_par) = run(&a, &b, threads);
        assert_eq!(c_par, c_seq, "{threads}-thread matmul diverged");
        assert_eq!(s_par, s_seq, "{threads}-thread stats diverged");
    }

    // Hard scaling assertion outside criterion's sampling (best of 3
    // to shave scheduler noise), gated on physical core count.
    let best = |threads: usize| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(run(&a, &b, threads));
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = best(1);
    let t4 = best(4);
    let speedup = t1 / t4;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("matmul_threads: 4-thread speedup over 1 thread = {speedup:.2}x ({cores} CPU(s))");
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4 threads must deliver ≥1.5x the 1-thread batched matmul, got {speedup:.2}x"
        );
    } else {
        println!("matmul_threads: <4 CPUs — scaling assertion skipped (measured {speedup:.2}x)");
    }

    let mut g = c.benchmark_group("matmul_threads");
    // 2·n³ flop-equivalents per product.
    g.throughput(Throughput::Elements(2 * (N as u64).pow(3)));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("threads_{threads}"), |bch| {
            bch.iter(|| black_box(run(&a, &b, threads)).1.cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul_threads);
criterion_main!(benches);
