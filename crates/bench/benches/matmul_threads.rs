//! Multi-array matmul thread-scaling bench: one 128×128·128×128 product
//! tiled with b = 32 across 8 simulated linear arrays
//! ([`MultiMatMul::run`]), fanned out over 1, 2, 4 and 8 worker threads.
//! Every thread count is first asserted bit-identical — matrix, flags
//! and per-array statistics — to the 1-thread run, and the 1-thread run
//! to the serial per-cycle [`BlockMatMul::run`] reference; the 4-thread
//! point must then clear 1.5× the single-thread wall clock. That gate
//! is honest about the host: `available_parallelism` is read once, the
//! core count is printed with the measurement, and hosts with fewer
//! than 4 cores skip the assertion with an explicit notice instead of
//! silently passing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::matmul::multi::MultiStats;
use fpfpga::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const M: u32 = 128;
const K: u32 = 128;
const N: u32 = 128;
const B: u32 = 32;
const ARRAYS: u32 = 8;
const LM: u32 = 4;
const LA: u32 = 5;
const F: FpFormat = FpFormat::SINGLE;
const RM: RoundMode = RoundMode::NearestEven;

fn sample(rows: u32, cols: u32, seed: f64) -> Matrix {
    Matrix::from_fn(F, rows as usize, cols as usize, |i, j| {
        ((i * cols as usize + j) as f64 * 0.37 + seed).sin() * 4.0
    })
}

fn run(mm: &MultiMatMul, a: &Matrix, b: &Matrix, threads: usize) -> (Matrix, MultiStats) {
    mm.run(RM, LM, LA, a, b, UnitBackend::Fast, threads)
        .expect("bench plan is valid")
}

fn bench_matmul_threads(c: &mut Criterion) {
    let a = sample(M, K, 1.0);
    let b = sample(K, N, 2.0);
    let mm = MultiMatMul::new(M, K, N, B, LM + LA, ARRAYS).expect("bench plan is valid");

    // Equivalence gates: the tile fan-out may only change wall clock,
    // never a result bit, a flag or a statistic. First pin the
    // multi-array path to the serial per-cycle blocked reference, then
    // every thread count to the 1-thread multi run.
    let (c_ref, s_ref, f_ref) = mm
        .plan
        .run(F, RM, LM, LA, &a, &b, UnitBackend::Fast)
        .expect("reference plan is valid");
    let (c_one, s_one) = run(&mm, &a, &b, 1);
    assert_eq!(c_one, c_ref, "multi-array matmul diverged from serial");
    assert_eq!(s_one.flags, f_ref, "multi-array flags diverged from serial");
    assert_eq!(s_one.total, s_ref, "multi-array stats diverged from serial");
    for threads in [2usize, 4, 8] {
        let (c_par, s_par) = run(&mm, &a, &b, threads);
        assert_eq!(c_par, c_one, "{threads}-thread matmul diverged");
        assert_eq!(
            s_par.per_array, s_one.per_array,
            "{threads}-thread per-array stats diverged"
        );
        assert_eq!(s_par.flags, s_one.flags, "{threads}-thread flags diverged");
    }

    // Hard scaling assertion outside criterion's sampling (best of 3
    // to shave scheduler noise), gated on physical core count — read
    // once, printed with the numbers so a skip is visible in CI logs.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let best = |threads: usize| -> f64 {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(run(&mm, &a, &b, threads));
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = best(1);
    let t4 = best(4);
    let speedup = t1 / t4;
    println!(
        "matmul_threads: {M}x{K}·{K}x{N} b={B} arrays={ARRAYS}, \
         4-thread speedup over 1 thread = {speedup:.2}x ({cores} CPU(s))"
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4 threads must deliver ≥1.5x the 1-thread multi-array matmul \
             on a {cores}-core host, got {speedup:.2}x"
        );
    } else {
        println!(
            "matmul_threads: NOTICE — host has {cores} CPU(s) (<4), \
             ≥1.5x scaling assertion skipped (measured {speedup:.2}x); \
             equivalence gates above still ran"
        );
    }

    let mut g = c.benchmark_group("matmul_threads");
    // 2·m·k·n flop-equivalents per product.
    g.throughput(Throughput::Elements(
        2 * (M as u64) * (K as u64) * (N as u64),
    ));
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("threads_{threads}"), |bch| {
            bch.iter(|| black_box(run(&mm, &a, &b, threads)).1.total.cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul_threads);
criterion_main!(benches);
