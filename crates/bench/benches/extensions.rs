//! Benches for the extension features: divider/sqrt cores, full-IEEE
//! cost, dot-product and MVM kernels, and the Pareto explorer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::fpu::ieee_cost::ieee_cost_analysis;
use fpfpga::matmul::dot::interleaved_reference;
use fpfpga::prelude::*;
use std::hint::black_box;

fn print_extension_tables() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;

    println!("\nDivider / sqrt design points (extension; not in the paper)");
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12}",
        "core", "stages", "slices", "clock (MHz)", "MHz/slice"
    );
    for fmt in [FpFormat::SINGLE, FpFormat::DOUBLE] {
        for (name, sweep) in [
            ("divider", DividerDesign::new(fmt).sweep(&tech, opts)),
            ("sqrt", SqrtDesign::new(fmt).sweep(&tech, opts)),
        ] {
            let opt = fpfpga::fabric::timing::optimal(&sweep);
            println!(
                "{:<14} {:>8} {:>8} {:>12.1} {:>12.4}",
                format!("{fmt} {name}"),
                opt.stages,
                opt.slices,
                opt.clock_mhz,
                opt.freq_per_area()
            );
        }
    }

    println!("\nFull-IEEE (denormal + NaN) support cost at the freq/area optimum");
    println!(
        "{:<12} {:>8} {:>14} {:>16}",
        "core", "format", "slice overhead", "freq/area ratio"
    );
    for r in ieee_cost_analysis(&tech, opts) {
        println!(
            "{:<12} {:>8} {:>13.1}% {:>16.2}",
            r.core,
            r.format.to_string(),
            r.slice_overhead() * 100.0,
            r.freq_area_ratio()
        );
    }
}

fn bench_extensions(c: &mut Criterion) {
    print_extension_tables();

    let fmt = FpFormat::SINGLE;
    let rm = RoundMode::NearestEven;
    let mut g = c.benchmark_group("extensions");

    // Divider simulator throughput.
    const OPS: u64 = 5_000;
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("structural_divider_fp32_20_stages", |b| {
        let design = DividerDesign::new(fmt);
        b.iter_with_setup(
            || design.simulator(20),
            |mut unit| {
                for i in 0..OPS {
                    let x = f32::from_bits(0x3f80_0000 | (i as u32 & 0xffff));
                    black_box(unit.clock(Some((x.to_bits() as u64, 0x4040_0000))));
                }
            },
        )
    });

    // softfp div/sqrt.
    g.bench_function("softfp_div_fp64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS {
                let x = 1.0f64 + i as f64 * 1e-9;
                let (r, _) = fpfpga::softfp::div_bits(
                    FpFormat::DOUBLE,
                    x.to_bits(),
                    std::f64::consts::E.to_bits(),
                    rm,
                );
                acc ^= r;
            }
            black_box(acc)
        })
    });
    g.bench_function("softfp_sqrt_fp64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS {
                let x = 1.0f64 + i as f64 * 1e-6;
                let (r, _) = fpfpga::softfp::sqrt_bits(FpFormat::DOUBLE, x.to_bits(), rm);
                acc ^= r;
            }
            black_box(acc)
        })
    });

    // Full-IEEE arithmetic (gradual underflow path included).
    g.bench_function("ieee_mode_add_fp32", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS {
                let (r, _) = fpfpga::softfp::ieee::ieee_add(
                    fmt,
                    (0x0000_1000 + i) & fmt.enc_mask(),
                    0x0080_0100,
                    rm,
                );
                acc ^= r;
            }
            black_box(acc)
        })
    });

    // Dot product kernel.
    let n = 512usize;
    let x: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.01).sin()).bits())
        .collect();
    let y: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.03).cos()).bits())
        .collect();
    g.bench_function("dot_product_sim_512", |b| {
        b.iter(|| {
            let mut unit = DotProductUnit::new(fmt, rm, 7, 9);
            black_box(unit.dot(&x, &y).0)
        })
    });
    g.bench_function("dot_product_reference_512", |b| {
        b.iter(|| black_box(interleaved_reference(fmt, rm, &x, &y, 9)))
    });

    // FIR filter streaming.
    g.bench_function("fir_8tap_512_samples", |b| {
        use fpfpga::matmul::FirFilter;
        let coeffs = [0.1f64; 8];
        let xs: Vec<u64> = (0..512)
            .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.02).sin()).bits())
            .collect();
        b.iter(|| {
            let mut fir = FirFilter::new(fmt, rm, &coeffs, 6);
            black_box(fir.filter(&xs).len())
        })
    });

    // FFT engine.
    g.bench_function("fft_256_point", |b| {
        use fpfpga::matmul::fft::{Cplx, FftEngine};
        let x: Vec<Cplx> = (0..256)
            .map(|i| Cplx::from_f64(fmt, (i as f64 * 0.04).sin(), 0.0))
            .collect();
        let eng = FftEngine::new(fmt, rm, 7, 9);
        b.iter(|| black_box(eng.run(&x, false).1))
    });

    // LU engine.
    g.bench_function("lu_24x24_4pe", |b| {
        use fpfpga::matmul::LuEngine;
        let n = 24;
        let a = Matrix::from_fn(fmt, n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * n + j) as f64 * 0.19).sin()
            }
        });
        let eng = LuEngine::new(fmt, rm, 16, 6, 4);
        b.iter(|| black_box(eng.factor(&a).cycles))
    });

    // Pareto explorer end-to-end.
    g.sample_size(10);
    g.bench_function("pareto_explorer_n128", |b| {
        let tech = Tech::virtex2pro();
        let e = Explorer::new(fmt, 128);
        b.iter(|| {
            black_box(
                e.pareto(&Constraints::default(), &tech, SynthesisOptions::SPEED)
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
