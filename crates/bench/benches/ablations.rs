//! Ablations over the design decisions DESIGN.md calls out:
//!
//! 1. register-placement strategy (paper's iterative refinement vs the
//!    optimal balanced partition vs a naive end-loaded placement);
//! 2. synthesis/P&R optimization objectives (speed vs area);
//! 3. forced vs inferred priority-encoder synthesis;
//! 4. unit-selection metric (max frequency vs max freq/area vs min area
//!    at a target clock) and its consequence for device-level GFLOPS.
//!
//! Each ablation prints its comparison table once, then criterion times
//! the underlying computations.

use criterion::{criterion_group, criterion_main, Criterion};
use fpfpga::fabric::timing;
use fpfpga::prelude::*;
use std::hint::black_box;

fn print_ablations() {
    let tech = Tech::virtex2pro();

    println!("\nAblation 1: register placement strategy (fp64 adder)");
    let netlist = AdderDesign::new(FpFormat::DOUBLE).netlist(&tech);
    println!(
        "{:>8} {:>22} {:>12} {:>10}",
        "stages", "strategy", "clock (MHz)", "FFs"
    );
    for k in [4u32, 8, 12, 16] {
        for strat in [
            PipelineStrategy::IterativeRefinement,
            PipelineStrategy::Balanced,
            PipelineStrategy::EndLoaded,
        ] {
            let r = timing::evaluate(&netlist, k, strat, SynthesisOptions::SPEED, &tech);
            println!(
                "{k:>8} {:>22} {:>12.1} {:>10}",
                format!("{strat:?}"),
                r.clock_mhz,
                r.ffs
            );
        }
    }

    println!("\nAblation 2: tool objectives (fp32 adder, opt point)");
    println!(
        "{:>26} {:>8} {:>8} {:>12} {:>12}",
        "objectives", "stages", "slices", "clock (MHz)", "MHz/slice"
    );
    for (label, opts) in [
        ("speed/speed", SynthesisOptions::SPEED),
        ("area/area", SynthesisOptions::AREA),
        (
            "speed/area",
            SynthesisOptions {
                synthesis: Objective::Speed,
                par: Objective::Area,
            },
        ),
        (
            "area/speed",
            SynthesisOptions {
                synthesis: Objective::Area,
                par: Objective::Speed,
            },
        ),
    ] {
        let sweep = AdderDesign::new(FpFormat::SINGLE).sweep(&tech, opts);
        let o = timing::optimal(&sweep);
        println!(
            "{label:>26} {:>8} {:>8} {:>12.1} {:>12.4}",
            o.stages,
            o.slices,
            o.clock_mhz,
            o.freq_per_area()
        );
    }

    println!("\nAblation 3: priority-encoder synthesis (fp64 adder peak clock)");
    for forced in [true, false] {
        let d = AdderDesign {
            force_priority_encoder: forced,
            ..AdderDesign::new(FpFormat::DOUBLE)
        };
        let best = d
            .sweep(&tech, SynthesisOptions::SPEED)
            .iter()
            .map(|r| r.clock_mhz)
            .fold(0.0, f64::max);
        println!("  forced = {forced:<5} peak = {best:.1} MHz");
    }

    println!("\nAblation 4: unit-selection metric → device GFLOPS (fp32, XC2VP125)");
    let add = CoreSweep::adder(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
    let mul = CoreSweep::multiplier(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
    let selections: Vec<(&str, u32, u32)> = vec![
        ("max frequency", add.fastest().stages, mul.fastest().stages),
        ("max freq/area", add.opt().stages, mul.opt().stages),
        (
            "min area @ 150 MHz",
            add.cheapest_at(150.0).unwrap().stages,
            mul.cheapest_at(150.0).unwrap().stages,
        ),
    ];
    for (label, ka, km) in selections {
        let units = UnitSet::with_stages(FpFormat::SINGLE, ka, km, &tech, SynthesisOptions::SPEED);
        let fill = DeviceFill::new(Device::XC2VP125, &units, 64, &tech);
        println!(
            "  {label:<18}: add {ka:2} st, mul {km:2} st → {:3} PEs @ {:5.1} MHz = {:5.1} GFLOPS",
            fill.pe_count,
            fill.clock_mhz,
            fill.gflops()
        );
    }
}

fn bench_ablations(c: &mut Criterion) {
    print_ablations();

    let tech = Tech::virtex2pro();
    let netlist = AdderDesign::new(FpFormat::DOUBLE).netlist(&tech);

    let mut g = c.benchmark_group("ablations");
    for strat in [
        PipelineStrategy::IterativeRefinement,
        PipelineStrategy::Balanced,
        PipelineStrategy::EndLoaded,
    ] {
        g.bench_function(format!("pipeline_{strat:?}_12_stages"), |b| {
            b.iter(|| {
                black_box(
                    timing::evaluate(&netlist, 12, strat, SynthesisOptions::SPEED, &tech).clock_mhz,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
