//! Tables 1-4 bench: regenerates the unit tables and the vendor
//! comparisons, and times the cycle-accurate core simulators at
//! their table configurations (the throughput the tables claim).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::prelude::*;
use fpfpga::repro;
use std::hint::black_box;

fn regenerate_and_print() {
    println!(
        "\n{}",
        fpfpga_bench::render_unit_table(
            "Table 1. Analysis of 32, 48, 64-bit Floating Point Adders",
            &repro::table1()
        )
    );
    println!(
        "\n{}",
        fpfpga_bench::render_unit_table(
            "Table 2. Analysis of 32, 48, 64-bit Floating Point Multipliers",
            &repro::table2()
        )
    );
    println!("\n{}", fpfpga_bench::render_table3(&repro::table3()));
    println!("\n{}", fpfpga_bench::render_table4(&repro::table4()));
}

fn bench_units(c: &mut Criterion) {
    regenerate_and_print();

    const OPS: u64 = 10_000;
    let mut g = c.benchmark_group("unit_simulators");
    g.throughput(Throughput::Elements(OPS));

    // Structural stage-by-stage simulation at the Table 1 "opt" depth.
    let tech = Tech::virtex2pro();
    let opt_add = CoreSweep::adder(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED)
        .opt()
        .stages;
    g.bench_function("structural_adder_fp32_opt_depth", |b| {
        let design = AdderDesign::new(FpFormat::SINGLE);
        b.iter_with_setup(
            || design.simulator(opt_add),
            |mut unit| {
                for i in 0..OPS {
                    let x = f32::from_bits(0x3f80_0000 | (i as u32 & 0xffff));
                    black_box(unit.clock(Some((x.to_bits() as u64, 0x4000_0000))));
                }
            },
        )
    });

    // The fast functional twin at the same depth.
    g.bench_function("delay_line_adder_fp32", |b| {
        b.iter_with_setup(
            || {
                DelayLineUnit::new(
                    FpFormat::SINGLE,
                    RoundMode::NearestEven,
                    fpfpga::fpu::sim::DelayOp::Add,
                    opt_add,
                )
            },
            |mut unit| {
                for i in 0..OPS {
                    let x = f32::from_bits(0x3f80_0000 | (i as u32 & 0xffff));
                    black_box(unit.clock(Some((x.to_bits() as u64, 0x4000_0000))));
                }
            },
        )
    });

    // Raw softfp arithmetic (the reference model's own speed).
    g.bench_function("softfp_mul_fp64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS {
                let x = 1.0f64 + i as f64 * 1e-9;
                let (r, _) = fpfpga::softfp::mul_bits(
                    FpFormat::DOUBLE,
                    x.to_bits(),
                    std::f64::consts::PI.to_bits(),
                    RoundMode::NearestEven,
                );
                acc ^= r;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_units);
criterion_main!(benches);
