//! Networked serving bench: the same trace `serve_throughput` replays
//! in-process, pushed through a real loopback TCP socket via the
//! `fpfpga-net` wire protocol. Before any timing, the wire replay is
//! asserted bit-identical to the serial oracle (framing and transport
//! may only add latency, never change a result bit), and a paced run
//! at a sustainable arrival rate must hold the p99 latency SLO — the
//! serving claim this PR ships. The timed section then measures
//! pipelined wire throughput at 1 and 4 connections against the
//! in-process pool as a framing-overhead baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::prelude::*;
use fpfpga::serve::run_serial;
use fpfpga_net::{NetClient, NetConfig, NetServer, Response, StopHandle};
use std::collections::VecDeque;
use std::hint::black_box;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Generous bound for shared CI hosts; a healthy run on idle hardware
/// sits well under a tenth of this.
const SLO_P99: Duration = Duration::from_millis(250);
const INFLIGHT: usize = 32;

fn trace_specs() -> Vec<JobSpec> {
    synth_trace(&TraceConfig {
        seed: 40,
        jobs: 96,
        rate_hz: 1e6,
        payload_scale: 4,
    })
    .into_iter()
    .map(|ev| JobSpec {
        priority: Priority::Normal,
        deadline: None,
        ..ev.spec
    })
    .collect()
}

fn spawn_server(workers: usize) -> (SocketAddr, StopHandle, std::thread::JoinHandle<()>) {
    let config = NetConfig {
        serve: ServeConfig {
            workers,
            queue_capacity: 4096,
            tech: Tech::virtex2pro(),
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let stop = server.stop_handle();
    let join = std::thread::spawn(move || {
        server.run();
    });
    (addr, stop, join)
}

/// Pipelined replay of `specs` over `conns` connections; returns the
/// results in submission order and the per-request latencies.
fn wire_replay(
    addr: SocketAddr,
    specs: &[JobSpec],
    conns: usize,
) -> (Vec<JobResult>, Vec<Duration>) {
    let shares: Vec<Vec<(usize, JobSpec)>> = (0..conns)
        .map(|c| {
            specs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % conns == c)
                .map(|(i, s)| (i, s.clone()))
                .collect()
        })
        .collect();
    let joins: Vec<_> = shares
        .into_iter()
        .map(|share| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut pending: VecDeque<(usize, u64, Instant)> = VecDeque::new();
                let mut out = Vec::with_capacity(share.len());
                let recv_one =
                    |client: &mut NetClient, pending: &mut VecDeque<(usize, u64, Instant)>| {
                        let (rid, resp) = client.recv().expect("recv");
                        let (idx, want, sent) = pending.pop_front().expect("in flight");
                        assert_eq!(rid, want, "responses must come back in order");
                        match resp {
                            Response::Completed(r) => (idx, r, sent.elapsed()),
                            Response::Rejected(rej) => {
                                panic!("bench job must complete, got reject {:?}", rej.code)
                            }
                        }
                    };
                for (idx, spec) in share {
                    if pending.len() == INFLIGHT {
                        out.push(recv_one(&mut client, &mut pending));
                    }
                    let rid = client.send(&spec).expect("send");
                    pending.push_back((idx, rid, Instant::now()));
                }
                while !pending.is_empty() {
                    out.push(recv_one(&mut client, &mut pending));
                }
                client.goodbye().ok();
                out
            })
        })
        .collect();
    let mut tagged: Vec<(usize, JobResult, Duration)> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    tagged.sort_by_key(|(i, _, _)| *i);
    let lats = tagged.iter().map(|(_, _, l)| *l).collect();
    (tagged.into_iter().map(|(_, r, _)| r).collect(), lats)
}

/// Paced replay: send each request at its Poisson arrival time (rate
/// chosen well under capacity) so the p99 measures service latency,
/// not a saturated queue.
fn paced_p99(addr: SocketAddr, events: &[(Duration, JobSpec)]) -> Duration {
    let mut client = NetClient::connect(addr).expect("connect");
    let mut pending: VecDeque<Instant> = VecDeque::new();
    let mut lats: Vec<Duration> = Vec::with_capacity(events.len());
    let start = Instant::now();
    for (at, spec) in events {
        while pending.len() == INFLIGHT {
            client.recv().expect("recv");
            lats.push(pending.pop_front().expect("in flight").elapsed());
        }
        let now = start.elapsed();
        if *at > now {
            std::thread::sleep(*at - now);
        }
        client.send(spec).expect("send");
        pending.push_back(Instant::now());
    }
    while !pending.is_empty() {
        client.recv().expect("recv");
        lats.push(pending.pop_front().expect("in flight").elapsed());
    }
    client.goodbye().ok();
    lats.sort();
    lats[(lats.len() as f64 * 0.99) as usize - 1]
}

fn bench_serve_net(c: &mut Criterion) {
    let specs = trace_specs();
    let tech = Tech::virtex2pro();
    let oracle = run_serial(&specs, &tech);
    let (addr, stop, join) = spawn_server(4);

    // Equivalence gate: wire framing and transport must be invisible
    // in the results, at 1 and 4 connections.
    for conns in [1usize, 4] {
        let (got, _) = wire_replay(addr, &specs, conns);
        assert_eq!(got, oracle, "{conns}-connection wire replay diverged");
    }

    // SLO gate: a paced light trace (own seed, modest payloads, rate
    // far under capacity) must hold the p99 bound.
    let paced: Vec<(Duration, JobSpec)> = synth_trace(&TraceConfig {
        seed: 41,
        jobs: 192,
        rate_hz: 2_000.0,
        payload_scale: 1,
    })
    .into_iter()
    .map(|ev| {
        (
            ev.at,
            JobSpec {
                priority: Priority::Normal,
                deadline: None,
                ..ev.spec
            },
        )
    })
    .collect();
    let p99 = paced_p99(addr, &paced);
    println!("serve_net: paced p99 = {:?} (SLO {SLO_P99:?})", p99);
    assert!(
        p99 <= SLO_P99,
        "paced p99 {p99:?} exceeds the {SLO_P99:?} SLO"
    );

    let mut g = c.benchmark_group("serve_net");
    g.throughput(Throughput::Elements(specs.len() as u64));
    g.sample_size(10);
    for conns in [1usize, 4] {
        g.bench_function(format!("wire_conns_{conns}"), |b| {
            b.iter(|| black_box(wire_replay(addr, &specs, conns).0.len()))
        });
    }
    // In-process baseline: what the same trace costs without framing.
    g.bench_function("inprocess_4w", |b| {
        b.iter_with_setup(
            || {
                ServePool::new(ServeConfig {
                    workers: 4,
                    queue_capacity: 4096,
                    tech: tech.clone(),
                    ..ServeConfig::default()
                })
            },
            |pool| {
                let handles: Vec<JobHandle> = specs
                    .iter()
                    .map(|s| pool.submit(s.clone()).expect("accepted"))
                    .collect();
                black_box(
                    handles
                        .into_iter()
                        .map(JobHandle::wait)
                        .filter(|o| matches!(o, JobOutcome::Completed(_)))
                        .count(),
                )
            },
        )
    });
    g.finish();

    stop.stop();
    join.join().expect("server thread");
}

criterion_group!(benches, bench_serve_net);
criterion_main!(benches);
