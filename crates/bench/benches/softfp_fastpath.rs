//! Fast-lane throughput bench: the monomorphized `softfp::fastpath`
//! batch kernels against the generic scalar `unpacked` path, single
//! thread, on the three named formats. Before any timing the batch
//! results are asserted bit-identical (values *and* flags) to the
//! generic path element by element; the headline claim — the batch
//! kernels clear 2× the generic scalar throughput on add and mul — is
//! a hard assertion measured outside criterion's sampling.
//!
//! A second set of lanes pins each `softfp::simd` engine explicitly
//! (`add_simd_avx512`, `mul_simd_portable`, …) through the
//! `*_bits_batch_with` entry points, so per-engine regressions show up
//! in criterion history; lanes for engines the host lacks are skipped.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpfpga::softfp::fastpath;
use fpfpga::softfp::simd::{self, SimdEngine};
use fpfpga::softfp::{self, Flags, FpFormat, RoundMode};
use std::hint::black_box;
use std::time::Instant;

// 16k elements keeps both operand slices and the 16-byte-per-element
// result buffer L2-resident, so the ratio below compares the kernels
// rather than the memory system.
const N: usize = 1 << 14;
const MODE: RoundMode = RoundMode::NearestEven;

/// Deterministic operand stream: raw masked bit patterns (mostly
/// normal numbers, with the occasional special), the same distribution
/// the units see in the serving mix.
fn operands(fmt: FpFormat, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..N)
        .map(|_| {
            // splitmix64
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) & fmt.enc_mask()
        })
        .collect()
}

/// Best-of timing for the generic/batch pair with the rounds
/// interleaved (generic, batch, generic, batch, …). Two back-to-back
/// best-of windows let one scheduler burst on a shared box poison a
/// single side and skew the ratio; alternating rounds hit both sides
/// with the same weather.
fn paired_best_of<A, B>(rounds: usize, mut a: A, mut b: B) -> (f64, f64)
where
    A: FnMut() -> u64,
    B: FnMut() -> u64,
{
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        black_box(a());
        ta = ta.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(b());
        tb = tb.min(t.elapsed().as_secs_f64());
    }
    (ta, tb)
}

fn bench_softfp_fastpath(c: &mut Criterion) {
    let formats = [
        ("f32", FpFormat::SINGLE),
        ("f48", FpFormat::FP48),
        ("f64", FpFormat::DOUBLE),
    ];

    for &(name, fmt) in &formats {
        let a = operands(fmt, 0x5eed ^ fmt.total_bits() as u64);
        let b = operands(fmt, 0xcafe ^ fmt.total_bits() as u64);

        // Equivalence gate: values and flags, every element, both ops.
        let mut batch: Vec<(u64, Flags)> = Vec::with_capacity(N);
        fastpath::add_bits_batch(fmt, &a, &b, MODE, &mut batch);
        for i in 0..N {
            assert_eq!(
                batch[i],
                softfp::add_bits(fmt, a[i], b[i], MODE),
                "{name} add [{i}]"
            );
        }
        batch.clear();
        fastpath::mul_bits_batch(fmt, &a, &b, MODE, &mut batch);
        for i in 0..N {
            assert_eq!(
                batch[i],
                softfp::mul_bits(fmt, a[i], b[i], MODE),
                "{name} mul [{i}]"
            );
        }

        // Headline hard assertion, outside criterion's sampling: the
        // batch kernel must at least double the generic scalar
        // throughput for add and mul, single-threaded.
        let mut out: Vec<(u64, Flags)> = Vec::with_capacity(N);
        for (op_name, generic, batched) in [
            (
                "add",
                softfp::add_bits as fn(FpFormat, u64, u64, RoundMode) -> (u64, Flags),
                fastpath::add_bits_batch
                    as fn(FpFormat, &[u64], &[u64], RoundMode, &mut Vec<(u64, Flags)>),
            ),
            ("mul", softfp::mul_bits, fastpath::mul_bits_batch),
        ] {
            let measure = |out: &mut Vec<(u64, Flags)>| {
                paired_best_of(
                    9,
                    || {
                        let mut acc = 0u64;
                        for i in 0..N {
                            acc ^= generic(fmt, a[i], b[i], MODE).0;
                        }
                        acc
                    },
                    || {
                        out.clear();
                        batched(fmt, &a, &b, MODE, out);
                        out.len() as u64
                    },
                )
            };
            let (mut t_generic, mut t_batch) = measure(&mut out);
            if t_generic / t_batch < 2.0 {
                // One re-measure before failing: even interleaved
                // best-of-9 can land entirely inside a noisy-neighbor
                // burst on a shared 1-CPU box. A genuine regression
                // fails both attempts.
                (t_generic, t_batch) = measure(&mut out);
            }
            let speedup = t_generic / t_batch;
            println!(
                "softfp_fastpath {name} {op_name}: generic {:.1} Mop/s, batch {:.1} Mop/s, {speedup:.2}x",
                N as f64 / t_generic / 1e6,
                N as f64 / t_batch / 1e6,
            );
            assert!(
                speedup >= 2.0,
                "{name} {op_name}: fast-lane batch must clear 2x the generic scalar \
                 path, got {speedup:.2}x"
            );
        }

        let mut g = c.benchmark_group(format!("softfp_fastpath_{name}"));
        g.throughput(Throughput::Elements(N as u64));
        g.bench_function("add_generic_scalar", |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for i in 0..N {
                    acc ^= softfp::add_bits(fmt, a[i], b[i], MODE).0;
                }
                acc
            })
        });
        g.bench_function("add_fastpath_batch", |bch| {
            bch.iter(|| {
                out.clear();
                fastpath::add_bits_batch(fmt, &a, &b, MODE, &mut out);
                out.len()
            })
        });
        g.bench_function("mul_generic_scalar", |bch| {
            bch.iter(|| {
                let mut acc = 0u64;
                for i in 0..N {
                    acc ^= softfp::mul_bits(fmt, a[i], b[i], MODE).0;
                }
                acc
            })
        });
        g.bench_function("mul_fastpath_batch", |bch| {
            bch.iter(|| {
                out.clear();
                fastpath::mul_bits_batch(fmt, &a, &b, MODE, &mut out);
                out.len()
            })
        });
        g.bench_function("fma_fastpath_batch", |bch| {
            let c_ops = operands(fmt, 0xf00d ^ fmt.total_bits() as u64);
            bch.iter(|| {
                out.clear();
                fastpath::fma_bits_batch(fmt, &a, &b, &c_ops, MODE, &mut out);
                out.len()
            })
        });

        // Engine-pinned SIMD lanes (skipping engines the host lacks).
        let mut engines = vec![
            ("scalar", SimdEngine::Scalar),
            ("portable", SimdEngine::WidePortable),
        ];
        if simd::avx2_available() {
            engines.push(("avx2", SimdEngine::WideAvx2));
        }
        if simd::avx512_available() {
            engines.push(("avx512", SimdEngine::WideAvx512));
        }
        for &(eng_name, eng) in &engines {
            g.bench_function(format!("add_simd_{eng_name}"), |bch| {
                bch.iter(|| {
                    out.clear();
                    simd::add_bits_batch_with(eng, fmt, &a, &b, MODE, &mut out);
                    out.len()
                })
            });
            g.bench_function(format!("mul_simd_{eng_name}"), |bch| {
                bch.iter(|| {
                    out.clear();
                    simd::mul_bits_batch_with(eng, fmt, &a, &b, MODE, &mut out);
                    out.len()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_softfp_fastpath);
criterion_main!(benches);
