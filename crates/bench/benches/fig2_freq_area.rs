//! Figure 2 bench: regenerates the frequency/area-vs-stages curves for
//! both cores at all three precisions, printing the series the paper
//! plots, and times the full design-space sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use fpfpga::prelude::*;
use fpfpga::repro;
use std::hint::black_box;

fn regenerate_and_print() {
    // Print once per bench run so `cargo bench` is the regeneration
    // harness for the figure.
    println!("\n{}", fpfpga_bench::render_fig2(&repro::fig2()));
}

fn bench_fig2(c: &mut Criterion) {
    regenerate_and_print();

    let tech = Tech::virtex2pro();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);

    g.bench_function("adder_sweep_32bit", |b| {
        b.iter(|| {
            let s = CoreSweep::adder(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
            black_box(s.opt().freq_per_area())
        })
    });
    g.bench_function("multiplier_sweep_64bit", |b| {
        b.iter(|| {
            let s = CoreSweep::multiplier(FpFormat::DOUBLE, &tech, SynthesisOptions::SPEED);
            black_box(s.opt().freq_per_area())
        })
    });
    g.bench_function("full_precision_analysis", |b| {
        b.iter(|| {
            black_box(
                PrecisionAnalysis::run(&tech, SynthesisOptions::SPEED)
                    .adders
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
