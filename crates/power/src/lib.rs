//! # fpfpga-power — power and energy models
//!
//! Substitute for the Xilinx XPower measurements of Section 4 (Figure 3,
//! Table 4) and the domain-specific energy modeling of Section 5
//! (Choi, Jang, Mohanty, Prasanna, *"Domain-Specific Modeling for Rapid
//! System-Wide Energy Estimation of Reconfigurable Architectures"*,
//! ERSA 2002) behind Figures 4-6.
//!
//! Two layers:
//!
//! * [`xpower`] — dynamic power of a resource bill at a clock rate and
//!   switching activity, split the way XPower reports it: **clocks**,
//!   **logic** and **signals** (plus embedded multiplier and block-RAM
//!   terms). As in the paper, "inputs, outputs and quiescent power …
//!   are not counted" at the unit level.
//! * [`energy`] — the domain-specific methodology: a design is split
//!   into components; "from the algorithm, we know when and for how long
//!   each component is active and its switching activity"; energy is the
//!   sum of per-component power × active time.

pub mod energy;
pub mod xpower;

pub use energy::{ComponentClass, ComponentEnergy, EnergyBill};
pub use xpower::{PowerBreakdown, PowerModel};
