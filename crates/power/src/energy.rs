//! Domain-specific energy modeling (Choi et al., ERSA 2002).
//!
//! "Initially, the architecture is split into its individual components
//! … From the algorithm, we know when and for how long each component is
//! active and its switching activity. Additionally, with estimates for
//! the power dissipated by each component, we can estimate the energy
//! dissipated by the design."
//!
//! An [`EnergyBill`] accumulates per-component energies; components are
//! tagged with the classes of the paper's Figure 4 (MAC, Storage, I/O,
//! Misc) so the energy-distribution plots fall out directly.

use crate::xpower::PowerModel;
use fpfpga_fabric::area::AreaCost;
use std::collections::BTreeMap;

/// The component classes of the paper's Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentClass {
    /// Floating-point MAC units (the adder + multiplier of each PE).
    Mac,
    /// Storage: block RAM buffers and data registers.
    Storage,
    /// Off-chip / inter-PE I/O drivers.
    Io,
    /// Control, counters, muxes, shift registers for control signals.
    Misc,
}

impl ComponentClass {
    /// All classes, in the paper's plotting order.
    pub const ALL: [ComponentClass; 4] = [
        ComponentClass::Io,
        ComponentClass::Misc,
        ComponentClass::Storage,
        ComponentClass::Mac,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ComponentClass::Mac => "MAC",
            ComponentClass::Storage => "Storage",
            ComponentClass::Io => "I/O",
            ComponentClass::Misc => "Misc.",
        }
    }
}

/// One component's contribution to a design's energy.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentEnergy {
    /// Component name ("PE0 adder", "weight BRAM" …).
    pub name: String,
    /// Class for the Figure 4 grouping.
    pub class: ComponentClass,
    /// Energy in nanojoules.
    pub energy_nj: f64,
}

/// An accumulating energy estimate for one design run.
#[derive(Clone, Debug, Default)]
pub struct EnergyBill {
    components: Vec<ComponentEnergy>,
}

impl EnergyBill {
    /// Empty bill.
    pub fn new() -> EnergyBill {
        EnergyBill::default()
    }

    /// Charge a component that is *active* for `active_cycles` at
    /// `f_mhz` with the given switching activity, and *idle-clocked*
    /// (clock tree only) for `idle_cycles`.
    ///
    /// Energy units: mW × µs = nJ; at `f_mhz`, a cycle is `1/f_mhz` µs.
    #[allow(clippy::too_many_arguments)]
    pub fn charge(
        &mut self,
        name: &str,
        class: ComponentClass,
        model: &PowerModel,
        area: &AreaCost,
        f_mhz: f64,
        activity: f64,
        active_cycles: u64,
        idle_cycles: u64,
    ) {
        assert!(
            f_mhz > 0.0,
            "need a positive clock to convert cycles to time"
        );
        let us_per_cycle = 1.0 / f_mhz;
        let p_active = model.power_mw(area, f_mhz, activity).total_mw();
        let p_idle = model.idle_power_mw(area, f_mhz);
        let energy_nj = p_active * active_cycles as f64 * us_per_cycle
            + p_idle * idle_cycles as f64 * us_per_cycle;
        self.components.push(ComponentEnergy {
            name: name.to_string(),
            class,
            energy_nj,
        });
    }

    /// Charge a raw, pre-computed energy (for analytically modeled
    /// components such as I/O pads).
    pub fn charge_raw(&mut self, name: &str, class: ComponentClass, energy_nj: f64) {
        self.components.push(ComponentEnergy {
            name: name.to_string(),
            class,
            energy_nj,
        });
    }

    /// Total energy (nJ).
    pub fn total_nj(&self) -> f64 {
        self.components.iter().map(|c| c.energy_nj).sum()
    }

    /// Energy grouped by class (the Figure 4 breakdown).
    pub fn by_class(&self) -> BTreeMap<ComponentClass, f64> {
        let mut map = BTreeMap::new();
        for c in &self.components {
            *map.entry(c.class).or_insert(0.0) += c.energy_nj;
        }
        map
    }

    /// Energy of one class (0 if absent).
    pub fn class_nj(&self, class: ComponentClass) -> f64 {
        self.components
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.energy_nj)
            .sum()
    }

    /// The individual entries.
    pub fn components(&self) -> &[ComponentEnergy] {
        &self.components
    }

    /// Merge another bill into this one (e.g. summing PEs).
    pub fn absorb(&mut self, other: EnergyBill) {
        self.components.extend(other.components);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_area() -> AreaCost {
        AreaCost {
            luts: 500.0,
            ffs: 600.0,
            bmults: 4,
            brams: 0,
            routing_slices: 0.0,
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::virtex2pro();
        let mut bill = EnergyBill::new();
        bill.charge(
            "mac",
            ComponentClass::Mac,
            &m,
            &mac_area(),
            100.0,
            0.3,
            1000,
            0,
        );
        let p = m.power_mw(&mac_area(), 100.0, 0.3).total_mw();
        // 1000 cycles at 100 MHz = 10 µs; E = P·t
        assert!((bill.total_nj() - p * 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_cycles_cost_less() {
        let m = PowerModel::virtex2pro();
        let mut active = EnergyBill::new();
        active.charge(
            "mac",
            ComponentClass::Mac,
            &m,
            &mac_area(),
            100.0,
            0.3,
            1000,
            0,
        );
        let mut half_idle = EnergyBill::new();
        half_idle.charge(
            "mac",
            ComponentClass::Mac,
            &m,
            &mac_area(),
            100.0,
            0.3,
            500,
            500,
        );
        assert!(half_idle.total_nj() < active.total_nj());
        assert!(half_idle.total_nj() > active.total_nj() * 0.25);
    }

    #[test]
    fn by_class_groups() {
        let m = PowerModel::virtex2pro();
        let mut bill = EnergyBill::new();
        bill.charge(
            "a0",
            ComponentClass::Mac,
            &m,
            &mac_area(),
            100.0,
            0.3,
            10,
            0,
        );
        bill.charge(
            "a1",
            ComponentClass::Mac,
            &m,
            &mac_area(),
            100.0,
            0.3,
            10,
            0,
        );
        bill.charge_raw("pads", ComponentClass::Io, 5.0);
        let g = bill.by_class();
        assert_eq!(g.len(), 2);
        assert!((g[&ComponentClass::Mac] - bill.class_nj(ComponentClass::Mac)).abs() < 1e-12);
        assert_eq!(g[&ComponentClass::Io], 5.0);
        assert!((bill.total_nj() - g.values().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn absorb_merges() {
        let mut a = EnergyBill::new();
        a.charge_raw("x", ComponentClass::Misc, 1.0);
        let mut b = EnergyBill::new();
        b.charge_raw("y", ComponentClass::Misc, 2.0);
        a.absorb(b);
        assert_eq!(a.total_nj(), 3.0);
        assert_eq!(a.components().len(), 2);
    }

    #[test]
    fn class_labels() {
        assert_eq!(ComponentClass::Mac.label(), "MAC");
        assert_eq!(ComponentClass::ALL.len(), 4);
    }
}
