//! XPower-style dynamic power estimation.
//!
//! Dynamic power on an FPGA is `P = Σ C·V²·f·α` over the toggling nodes.
//! XPower groups the nodes into clock network, logic (LUT internals) and
//! signals (routing); this model does the same with per-resource
//! coefficients calibrated to the magnitudes of the paper's Figure 3 /
//! Table 4 (tens to a couple of hundred mW per core at 100 MHz,
//! growing roughly linearly with pipeline depth through the flip-flop
//! and clock-tree terms).

use fpfpga_fabric::area::AreaCost;
use fpfpga_fabric::tech::Tech;

/// Power coefficients (mW per resource per MHz at the given activity).
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Clock-network power per flip-flop per MHz (toggles every cycle —
    /// activity-independent).
    pub clock_mw_per_ff_mhz: f64,
    /// Logic power per LUT per MHz at activity 1.0.
    pub logic_mw_per_lut_mhz: f64,
    /// Signal (routing) power per net per MHz at activity 1.0; net count
    /// is approximated as LUTs + FFs.
    pub signal_mw_per_net_mhz: f64,
    /// Power per active 18×18 multiplier block per MHz at activity 1.0.
    pub bmult_mw_per_mhz: f64,
    /// Power per active block RAM per MHz at activity 1.0.
    pub bram_mw_per_mhz: f64,
}

impl PowerModel {
    /// Virtex-II Pro (1.5 V core) coefficients.
    pub const fn virtex2pro() -> PowerModel {
        PowerModel {
            clock_mw_per_ff_mhz: 0.000_40,
            logic_mw_per_lut_mhz: 0.000_32,
            signal_mw_per_net_mhz: 0.000_38,
            bmult_mw_per_mhz: 0.022,
            bram_mw_per_mhz: 0.018,
        }
    }

    /// Dynamic power of `area` clocked at `f_mhz` with average switching
    /// activity `activity` (fraction of nodes toggling per cycle,
    /// typically 0.1-0.5 for datapaths).
    pub fn power_mw(&self, area: &AreaCost, f_mhz: f64, activity: f64) -> PowerBreakdown {
        assert!(f_mhz >= 0.0, "negative frequency");
        assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
        let nets = area.luts + area.ffs;
        PowerBreakdown {
            clock_mw: self.clock_mw_per_ff_mhz * area.ffs * f_mhz,
            logic_mw: self.logic_mw_per_lut_mhz * area.luts * f_mhz * activity,
            signal_mw: self.signal_mw_per_net_mhz * nets * f_mhz * activity,
            bmult_mw: self.bmult_mw_per_mhz * area.bmults as f64 * f_mhz * activity,
            bram_mw: self.bram_mw_per_mhz * area.brams as f64 * f_mhz * activity,
        }
    }

    /// Idle power of a clocked but inactive component: the clock tree
    /// still toggles its flip-flops (activity → 0 kills logic/signal/
    /// embedded terms only).
    pub fn idle_power_mw(&self, area: &AreaCost, f_mhz: f64) -> f64 {
        self.power_mw(area, f_mhz, 0.0).total_mw()
    }
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel::virtex2pro()
    }
}

/// Power split the way an XPower report presents it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Clock-network power (mW).
    pub clock_mw: f64,
    /// Logic power (mW).
    pub logic_mw: f64,
    /// Signal/routing power (mW).
    pub signal_mw: f64,
    /// Embedded multiplier power (mW).
    pub bmult_mw: f64,
    /// Block RAM power (mW).
    pub bram_mw: f64,
}

impl PowerBreakdown {
    /// Total dynamic power (mW).
    pub fn total_mw(&self) -> f64 {
        self.clock_mw + self.logic_mw + self.signal_mw + self.bmult_mw + self.bram_mw
    }
}

/// Sanity reference: the tech model used for slice packing (re-exported
/// so callers can compute slices consistently when reporting).
pub fn default_tech() -> Tech {
    Tech::virtex2pro()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_area() -> AreaCost {
        AreaCost {
            luts: 800.0,
            ffs: 900.0,
            bmults: 4,
            brams: 0,
            routing_slices: 0.0,
        }
    }

    #[test]
    fn magnitudes_are_xpower_like() {
        // A single-precision-core-sized design at 100 MHz should burn
        // tens of mW — the Figure 3 / Table 4 regime.
        let m = PowerModel::virtex2pro();
        let p = m.power_mw(&unit_area(), 100.0, 0.3).total_mw();
        assert!((20.0..300.0).contains(&p), "p = {p} mW");
    }

    #[test]
    fn linear_in_frequency() {
        let m = PowerModel::virtex2pro();
        let p1 = m.power_mw(&unit_area(), 50.0, 0.3).total_mw();
        let p2 = m.power_mw(&unit_area(), 100.0, 0.3).total_mw();
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_power_is_activity_independent() {
        let m = PowerModel::virtex2pro();
        let lo = m.power_mw(&unit_area(), 100.0, 0.1);
        let hi = m.power_mw(&unit_area(), 100.0, 0.9);
        assert_eq!(lo.clock_mw, hi.clock_mw);
        assert!(hi.logic_mw > lo.logic_mw);
        assert!(hi.signal_mw > lo.signal_mw);
    }

    #[test]
    fn idle_keeps_only_clock() {
        let m = PowerModel::virtex2pro();
        let idle = m.idle_power_mw(&unit_area(), 100.0);
        let full = m.power_mw(&unit_area(), 100.0, 0.5);
        assert!((idle - full.clock_mw).abs() < 1e-12);
        assert!(idle < full.total_mw());
    }

    #[test]
    fn more_ffs_means_more_power() {
        // The Figure 3 shape: power grows with pipeline depth because
        // registers (and the clock tree driving them) grow.
        let m = PowerModel::virtex2pro();
        let shallow = AreaCost {
            ffs: 200.0,
            ..unit_area()
        };
        let deep = AreaCost {
            ffs: 2000.0,
            ..unit_area()
        };
        let ps = m.power_mw(&shallow, 100.0, 0.3).total_mw();
        let pd = m.power_mw(&deep, 100.0, 0.3).total_mw();
        assert!(pd > ps * 1.5, "deep {pd} vs shallow {ps}");
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn rejects_bad_activity() {
        PowerModel::virtex2pro().power_mw(&unit_area(), 100.0, 1.5);
    }
}
