//! Integration tests for the serving layer through the `fpfpga`
//! prelude: trace replay equivalence, backpressure, priority shedding,
//! deadlines, coalescing occupancy and metrics accounting — the
//! acceptance checklist of the serving subsystem, driven end to end.

use std::time::Duration;

use fpfpga::prelude::*;
use fpfpga::serve::job::EltOp;

fn add_job(fmt: FpFormat, vals: &[(f64, f64)]) -> Job {
    Job::uniform(
        Kernel::Eltwise {
            op: EltOp::Add,
            stages: 6,
            pairs: vals
                .iter()
                .map(|&(a, b)| {
                    (
                        SoftFloat::from_f64(fmt, a).bits(),
                        SoftFloat::from_f64(fmt, b).bits(),
                    )
                })
                .collect(),
        },
        fmt,
        RoundMode::NearestEven,
    )
}

/// The default synthetic trace replayed through pools of 1 and 4
/// workers matches the serial oracle bit for bit, and the pool's
/// accounting adds up: every submitted job completed, the queues
/// drained, and the sweep jobs in the mix hit the shard caches.
#[test]
fn default_trace_replay_is_bit_identical_to_serial() {
    let trace = synth_trace(&TraceConfig {
        seed: 2026,
        jobs: 96,
        rate_hz: 1e6,
        ..TraceConfig::default()
    });
    let specs: Vec<JobSpec> = trace.into_iter().map(|ev| ev.spec).collect();
    let tech = Tech::virtex2pro();
    let want = fpfpga::serve::run_serial(&specs, &tech);

    for workers in [1usize, 4] {
        let pool = ServePool::new(ServeConfig {
            workers,
            queue_capacity: specs.len(),
            tech: tech.clone(),
            ..ServeConfig::default()
        });
        let handles: Vec<JobHandle> = specs
            .iter()
            .map(|s| pool.submit(s.clone()).expect("trace job accepted"))
            .collect();
        let got: Vec<JobResult> = handles
            .into_iter()
            .map(|h| match h.wait() {
                JobOutcome::Completed(r) => r,
                other => panic!("trace job must complete: {other:?}"),
            })
            .collect();
        assert_eq!(got, want, "{workers}-worker replay diverged from serial");

        let m = pool.join();
        assert_eq!(m.submitted, specs.len() as u64);
        assert_eq!(m.completed, specs.len() as u64);
        assert_eq!(m.queue_depth, 0, "queues must drain");
        assert!(
            m.cache_misses > 0,
            "the trace mix contains sweep jobs, so shard caches must be exercised"
        );
    }
}

/// A full queue answers `Rejected` immediately — backpressure is
/// explicit, nothing blocks and nothing is silently dropped — and the
/// rejection is visible in the metrics.
#[test]
fn backpressure_rejects_and_reports() {
    let fmt = FpFormat::SINGLE;
    let pool = ServePool::new(ServeConfig {
        workers: 1,
        queue_capacity: 3,
        ..ServeConfig::default()
    });
    pool.pause();
    let accepted: Vec<JobHandle> = (0..3)
        .map(|i| {
            pool.submit(add_job(fmt, &[(i as f64, 1.0)]))
                .expect("accepted")
        })
        .collect();
    for _ in 0..2 {
        match pool.submit(add_job(fmt, &[(9.0, 9.0)])) {
            Err(SubmitError::Rejected { queue_depth }) => assert_eq!(queue_depth, 3),
            other => panic!("full queue must reject, got {other:?}"),
        }
    }
    pool.resume();
    for h in accepted {
        assert!(matches!(h.wait(), JobOutcome::Completed(_)));
    }
    let m = pool.join();
    assert_eq!((m.submitted, m.completed, m.rejected), (3, 3, 2));
    assert_eq!(m.max_queue_depth, 3);
}

/// Graceful degradation sheds strictly-lower-priority work first and
/// reports it — on the shed job's own handle and in the metrics.
#[test]
fn overload_sheds_lowest_priority_first() {
    let fmt = FpFormat::SINGLE;
    let pool = ServePool::new(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    pool.pause();
    let low = pool
        .submit(JobSpec::new(add_job(fmt, &[(1.0, 1.0)])).with_priority(Priority::Low))
        .expect("accepted");
    let normal = pool
        .submit(JobSpec::new(add_job(fmt, &[(2.0, 2.0)])).with_priority(Priority::Normal))
        .expect("accepted");
    let high = pool
        .submit(JobSpec::new(add_job(fmt, &[(3.0, 3.0)])).with_priority(Priority::High))
        .expect("accepted");
    // The Low job went first; Normal survived a High arrival.
    assert_eq!(low.wait(), JobOutcome::Shed);
    pool.resume();
    assert!(matches!(normal.wait(), JobOutcome::Completed(_)));
    assert!(matches!(high.wait(), JobOutcome::Completed(_)));
    let m = pool.join();
    assert_eq!((m.shed, m.completed), (1, 2));
}

/// An expired deadline is reported as `TimedOut` on the handle and
/// counted in the metrics; the job is never executed late.
#[test]
fn deadlines_time_out_and_are_counted() {
    let fmt = FpFormat::SINGLE;
    let pool = ServePool::new(ServeConfig::with_workers(1));
    pool.pause();
    let doomed = pool
        .submit(JobSpec::new(add_job(fmt, &[(1.0, 1.0)])).with_deadline(Duration::ZERO))
        .expect("accepted");
    let fine = pool
        .submit(JobSpec::new(add_job(fmt, &[(2.0, 2.0)])).with_deadline(Duration::from_secs(3600)))
        .expect("accepted");
    pool.resume();
    assert_eq!(doomed.wait(), JobOutcome::TimedOut);
    assert!(matches!(fine.wait(), JobOutcome::Completed(_)));
    let m = pool.join();
    assert_eq!((m.timed_out, m.completed), (1, 1));
}

/// Compatible elementwise streams queued together are served by one
/// `run_batch` call: batch occupancy rises above 1 while results stay
/// exactly per-job.
#[test]
fn coalescing_raises_batch_occupancy() {
    let fmt = FpFormat::FP48;
    let pool = ServePool::new(ServeConfig {
        workers: 1,
        queue_capacity: 32,
        coalesce_window: 8,
        ..ServeConfig::default()
    });
    pool.pause();
    let handles: Vec<JobHandle> = (0..8)
        .map(|i| {
            pool.submit(add_job(fmt, &[(i as f64, 0.5)]))
                .expect("accepted")
        })
        .collect();
    pool.resume();
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            JobOutcome::Completed(JobResult::Eltwise(rs)) => {
                assert_eq!(
                    SoftFloat::from_bits(fmt, rs[0].0).to_f64(),
                    i as f64 + 0.5,
                    "job {i} result"
                );
            }
            other => panic!("job {i}: {other:?}"),
        }
    }
    let m = pool.join();
    assert!(
        m.batch_occupancy() > 1.0,
        "identical streams queued together must coalesce (occupancy {})",
        m.batch_occupancy()
    );
    assert_eq!(m.batched_jobs, 8);
}

/// The serving types round-trip through the prelude, and the metrics
/// snapshot exposes the latency histogram and cache hit rate.
#[test]
fn prelude_exposes_the_serving_surface() {
    let pool = ServePool::new(ServeConfig::default());
    let job = Job::uniform(
        Kernel::Sweep {
            kind: CoreKind::Adder,
            opts: SynthesisOptions::SPEED,
        },
        FpFormat::SINGLE,
        RoundMode::NearestEven,
    );
    let h1 = pool.submit(job.clone()).expect("accepted");
    assert!(matches!(
        h1.wait(),
        JobOutcome::Completed(JobResult::Sweep { .. })
    ));
    let h2 = pool.submit(job).expect("accepted");
    assert!(matches!(
        h2.wait(),
        JobOutcome::Completed(JobResult::Sweep { .. })
    ));
    let m: MetricsSnapshot = pool.join();
    assert_eq!(m.completed, 2);
    assert!(m.latency_count() >= 2);
    assert!(m.latency_quantile_us(0.5).is_some());
    // Identical sweeps route to one shard: the second is a cache hit.
    assert_eq!(m.cache_misses, 1);
    assert_eq!(m.cache_hits, 1);
    assert_eq!(m.cache_hit_rate(), Some(0.5));
}
