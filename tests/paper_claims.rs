//! The paper's headline claims, asserted against the reproduction.
//!
//! Absolute numbers depend on the substituted toolchain model (see
//! DESIGN.md); these tests pin the claims the prose states and the
//! qualitative *shapes* of every figure. EXPERIMENTS.md records the
//! measured values next to the paper's.

use fpfpga::prelude::*;
use fpfpga::repro;

// ----------------------------------------------------------- Abstract

#[test]
fn claim_throughput_240_single_200_double() {
    // "We achieve throughput rates of more than 240 MHz (200 MHz) for
    // single (double) precision operations by deeply pipelining."
    let (tech, opts) = repro::paper_flow();
    let a = PrecisionAnalysis::run(&tech, opts);
    use fpfpga::fpu::analysis::CoreKind::*;
    assert!(a.sweep(Adder, FpFormat::SINGLE).fastest().clock_mhz > 240.0);
    assert!(a.sweep(Multiplier, FpFormat::SINGLE).fastest().clock_mhz > 240.0);
    assert!(a.sweep(Adder, FpFormat::DOUBLE).fastest().clock_mhz > 200.0);
    assert!(a.sweep(Multiplier, FpFormat::DOUBLE).fastest().clock_mhz > 200.0);
}

#[test]
fn claim_device_gflops_bands() {
    // Abstract: "about 15 GFLOPS (8 GFLOPS) for the single (double)
    // precision"; Section 4.2 quotes 19.6 GFLOPS for 32-bit.
    let g = repro::gflops();
    assert!(
        (12.0..25.0).contains(&g.single.gflops()),
        "single = {}",
        g.single.gflops()
    );
    assert!(
        (5.0..12.0).contains(&g.double.gflops()),
        "double = {}",
        g.double.gflops()
    );
}

#[test]
fn claim_processor_speedups() {
    // "a 6X improvement over the 2.54 GHz Pentium 4 … a 3X improvement
    // over the 1 GHz G4"
    let g = repro::gflops();
    let p4 = g.comparison.speedup_over(&Processor::PENTIUM4_2_54GHZ);
    let g4 = g.comparison.speedup_over(&Processor::G4_1GHZ);
    assert!((4.0..9.0).contains(&p4), "P4 speedup = {p4}");
    assert!((2.0..4.5).contains(&g4), "G4 speedup = {g4}");
    assert!(p4 / g4 > 1.5, "P4 gap must exceed G4 gap");
}

#[test]
fn claim_gflops_per_watt_up_to_6x() {
    // "FPGAs are capable of achieving upto 6x improvement (for single
    // precision) in terms of the GFLOPS/W metric."
    let g = repro::gflops();
    let best_gain = g
        .comparison
        .processors
        .iter()
        .map(|p| g.comparison.efficiency_gain_over(p))
        .fold(0.0f64, f64::max);
    assert!(best_gain >= 4.0, "best GFLOPS/W gain = {best_gain}");
    let min_gain = g
        .comparison
        .processors
        .iter()
        .map(|p| g.comparison.efficiency_gain_over(p))
        .fold(f64::INFINITY, f64::min);
    assert!(min_gain > 1.0, "FPGA must beat every processor on GFLOPS/W");
}

// ------------------------------------------------------------ Figure 2

#[test]
fn fig2_curves_flatten_and_dip() {
    // "for both the adder/subtractor and the multiplier, the curves
    // flatten out towards the end and may dip for deep pipelining"
    let f = repro::fig2();
    for c in f.adders.iter().chain(&f.multipliers) {
        let ratios: Vec<f64> = c.points.iter().map(|&(_, r)| r).collect();
        let peak = ratios.iter().copied().fold(0.0, f64::max);
        let peak_idx = ratios.iter().position(|&r| r == peak).unwrap();
        assert!(
            peak_idx > 0,
            "{}: peak at the unpipelined point",
            c.precision
        );
        assert!(
            peak_idx < ratios.len() - 1,
            "{}: no flattening region",
            c.precision
        );
        assert!(
            ratios.last().unwrap() < &peak,
            "{}: deepest point should be below the peak",
            c.precision
        );
    }
}

// ------------------------------------------------------------ Tables 1-2

#[test]
fn tables_1_2_area_orders_by_precision() {
    for table in [repro::table1(), repro::table2()] {
        for w in table.windows(2) {
            assert!(
                w[1].opt.slices > w[0].opt.slices,
                "{} opt should use more slices than {}",
                w[1].precision,
                w[0].precision
            );
        }
    }
}

#[test]
fn tables_1_2_opt_beats_endpoints() {
    for table in [repro::table1(), repro::table2()] {
        for b in table {
            assert!(
                b.opt.freq_per_area() >= b.min.freq_per_area(),
                "{}",
                b.precision
            );
            assert!(
                b.opt.freq_per_area() >= b.max.freq_per_area(),
                "{}",
                b.precision
            );
        }
    }
}

#[test]
fn multipliers_use_embedded_blocks_adders_do_not() {
    for b in repro::table2() {
        assert!(
            b.opt.bmults > 0,
            "{} multiplier should use BMULTs",
            b.precision
        );
    }
    for b in repro::table1() {
        assert_eq!(
            b.opt.bmults, 0,
            "{} adder should not use BMULTs",
            b.precision
        );
    }
}

// ------------------------------------------------------------ Tables 3-4

#[test]
fn table3_usc_fastest_vendors_sometimes_denser() {
    let t = repro::table3();
    // USC wins absolute clock…
    assert!(t.adders[0].clock_mhz > t.adders[1].clock_mhz);
    assert!(t.adders[0].clock_mhz > t.adders[2].clock_mhz);
    assert!(t.multipliers[0].clock_mhz > t.multipliers[1].clock_mhz);
    // …while "due to a lower area, their Frequency/Area metric is
    // sometimes better than ours".
    assert!(fpfpga::baselines::comparison::vendor_beats_usc_on_freq_area(&t));
}

#[test]
fn table4_usc_dominates_neu() {
    let t = repro::table4();
    for rows in [&t.adders, &t.multipliers] {
        assert!(rows[0].clock_mhz > rows[1].clock_mhz * 2.0);
        assert!(rows[0].freq_per_area > rows[1].freq_per_area);
    }
}

// ------------------------------------------------------------ Figure 3

#[test]
fn fig3_power_monotone_in_stages_overall() {
    let f = repro::fig3();
    for c in f.adders.iter().chain(&f.multipliers) {
        let first = c.points.first().unwrap().1;
        let last = c.points.last().unwrap().1;
        assert!(last > 1.3 * first, "{}: {first} → {last} mW", c.precision);
    }
}

#[test]
fn fig3_wider_formats_burn_more() {
    let f = repro::fig3();
    for curves in [&f.adders, &f.multipliers] {
        let avg = |c: &fpfpga::repro::Fig3Curve| {
            c.points.iter().map(|&(_, p)| p).sum::<f64>() / c.points.len() as f64
        };
        assert!(
            avg(&curves[2]) > avg(&curves[0]),
            "64-bit should out-burn 32-bit"
        );
    }
}

// --------------------------------------------------------- Figures 4-6

#[test]
fn fig4_small_problem_wastes_energy_on_deep_pipelines() {
    // "for the smaller problem size using deeply pipelined floating-point
    // units result in lot of energy wastage due to zero padding"
    let bars = repro::fig4();
    let find = |n: u32, level: &str| {
        bars.iter()
            .find(|b| b.n == n && b.level == level)
            .expect("bar exists")
    };
    // At n = 10 the pl=25 design pads (25-10)/25 = 60% of slots: its MAC
    // energy per useful FLOP is far above the pl=10 design's.
    let mac = |b: &fpfpga::repro::Fig4Bar| {
        b.by_class
            .iter()
            .find(|(c, _)| *c == ComponentClass::Mac)
            .unwrap()
            .1
    };
    let deep = find(10, "pl=25");
    let shallow = find(10, "pl=10");
    let per_flop_deep = mac(deep) / 1000.0; // n³ = 1000 useful MACs
    let per_flop_shallow = mac(shallow) / 1000.0;
    assert!(
        per_flop_deep > 1.5 * per_flop_shallow,
        "deep {per_flop_deep} vs shallow {per_flop_shallow}"
    );
    // At n = 30 ≥ PL the padding is gone (pl=25) or irrelevant.
    let deep30 = find(30, "pl=25");
    let shallow30 = find(30, "pl=10");
    let ratio30 = (mac(deep30) / 27000.0) / (mac(shallow30) / 27000.0);
    let ratio10 = per_flop_deep / per_flop_shallow;
    assert!(
        ratio30 < ratio10,
        "waste ratio must shrink with n: {ratio30} vs {ratio10}"
    );
}

#[test]
fn fig5_shapes() {
    let pts = repro::fig5(&[4, 8, 16, 32, 64]);
    let series = |level: &str| -> Vec<&fpfpga::repro::ArchPoint> {
        pts.iter().filter(|p| p.level == level).collect()
    };
    for level in ["pl=10", "pl=19", "pl=25"] {
        let s = series(level);
        // Energy, resources and latency all grow with problem size.
        for w in s.windows(2) {
            assert!(w[1].energy_nj > w[0].energy_nj, "{level}");
            assert!(w[1].slices > w[0].slices, "{level}");
            assert!(w[1].latency_us > w[0].latency_us, "{level}");
        }
    }
    // Deeper pipelines always cost more slices at equal n…
    for (a, b) in series("pl=10").iter().zip(series("pl=25").iter()) {
        assert!(b.slices > a.slices);
    }
    // …but win latency at large n ("it might consume the least energy
    // due to less latency").
    let large10 = series("pl=10").last().unwrap().latency_us;
    let large25 = series("pl=25").last().unwrap().latency_us;
    assert!(large25 < large10);
}

#[test]
fn fig6_small_blocks_waste() {
    // "there is large amount of wasteful energy dissipation when the
    // block size is much smaller than the latency of the floating-point
    // units"
    let pts = repro::fig6(160, &[4, 8, 16, 32, 80]);
    let pl25: Vec<_> = pts.iter().filter(|p| p.level == "pl=25").collect();
    // Energy per FLOP falls steeply from b=4 to b=32 for the deep units.
    let e = |p: &fpfpga::repro::ArchPoint| p.energy_nj;
    assert!(
        e(pl25[0]) > 1.5 * e(pl25[3]),
        "b=4: {} vs b=32: {}",
        e(pl25[0]),
        e(pl25[3])
    );
    // Latency also falls as b grows (more PEs + no padding).
    assert!(pl25[0].latency_us > pl25[3].latency_us);
    // Resources grow with b.
    assert!(pl25[4].slices > pl25[0].slices);
}
