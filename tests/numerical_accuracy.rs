//! Numerical-accuracy integration: precision choices measured end to end
//! across kernels, formats and rounding modes — the quantitative backing
//! for the paper's premise that these applications "demand high numerical
//! stability and accuracy and hence are usually floating-point based".

use fpfpga::matmul::accuracy::{matmul_error, ulp_at, ErrorMeter};
use fpfpga::matmul::fft::{Cplx, FftEngine};
use fpfpga::matmul::pe::UnitBackend;
use fpfpga::matmul::reference::f64_matmul;
use fpfpga::matmul::{mixed_dot, mixed_matmul};
use fpfpga::prelude::*;

fn test_matrices(fmt: FpFormat, n: usize) -> (Matrix, Matrix) {
    (
        Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.21).sin()),
        Matrix::from_fn(fmt, n, n, |i, j| ((i * 2 + j * 3) as f64 * 0.17).cos()),
    )
}

#[test]
fn matmul_error_scales_with_format() {
    let n = 12;
    let mut errors = Vec::new();
    for fmt in FpFormat::PAPER_PRECISIONS {
        let (a, b) = test_matrices(fmt, n);
        let (c, _) =
            LinearArray::multiply(fmt, RoundMode::NearestEven, 5, 7, &a, &b, UnitBackend::Fast);
        let stats = matmul_error(&c, &a, &b);
        // Absolute error is bounded by ~n ulps *at the accumulation
        // magnitude* (errors accrue at intermediate scale, so the
        // per-result-ulp figure can be much larger after cancellation).
        let scale = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| a.get_f64(i, j).abs())
            .fold(1.0f64, f64::max)
            * n as f64;
        assert!(
            stats.max_abs <= 4.0 * n as f64 * ulp_at(fmt, scale),
            "{fmt}: abs {} vs bound {}",
            stats.max_abs,
            4.0 * n as f64 * ulp_at(fmt, scale)
        );
        errors.push(stats.max_abs);
    }
    assert!(errors[0] > errors[1] && errors[1] > errors[2], "{errors:?}");
    // 48-bit sits ~13 bits (≈ 4 decimal digits) below single's error
    assert!(errors[0] / errors[1] > 1e3, "{} / {}", errors[0], errors[1]);
}

#[test]
fn custom_format_accuracy_interpolates() {
    // A 20-bit format lands between half-precision-ish and single.
    let n = 8;
    let err_of = |fmt: FpFormat| {
        let (a, b) = test_matrices(fmt, n);
        let (c, _) =
            LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 5, &a, &b, UnitBackend::Fast);
        matmul_error(&c, &a, &b).max_abs
    };
    let e16 = err_of(FpFormat::new(6, 9));
    let e20 = err_of(FpFormat::new(7, 12));
    let e32 = err_of(FpFormat::SINGLE);
    assert!(e16 > e20 && e20 > e32, "{e16} {e20} {e32}");
}

#[test]
fn fma_kernels_beat_two_step_on_error() {
    // LU with fused MACs vs the same elimination with mul+sub: measure
    // reconstruction error over a batch; fused must not lose.
    let n = 14;
    let fmt = FpFormat::SINGLE;
    let a = Matrix::from_fn(fmt, n, n, |i, j| {
        if i == j {
            9.0 + i as f64
        } else {
            ((i * n + j) as f64 * 0.29).sin()
        }
    });
    let eng = fpfpga::matmul::LuEngine::new(fmt, RoundMode::NearestEven, 12, 5, 2);
    let fused = eng.factor(&a);
    let back = fpfpga::matmul::lu::reconstruct(&fused.lu, RoundMode::NearestEven);
    let fused_err = back.max_abs_diff(&a);

    // two-step elimination in softfp
    let mut m = a.clone();
    for k in 0..n {
        let pivot = SoftFloat::from_bits(fmt, m.get(k, k));
        for i in k + 1..n {
            let (l, _) = SoftFloat::from_bits(fmt, m.get(i, k)).div(&pivot, RoundMode::NearestEven);
            m.set(i, k, l.bits());
            for j in k + 1..n {
                let (p, _) = l.mul(
                    &SoftFloat::from_bits(fmt, m.get(k, j)),
                    RoundMode::NearestEven,
                );
                let (d, _) = SoftFloat::from_bits(fmt, m.get(i, j)).sub(&p, RoundMode::NearestEven);
                m.set(i, j, d.bits());
            }
        }
    }
    let back2 = fpfpga::matmul::lu::reconstruct(&m, RoundMode::NearestEven);
    let two_step_err = back2.max_abs_diff(&a);
    assert!(
        fused_err <= two_step_err * 1.5,
        "fused {fused_err} vs two-step {two_step_err}"
    );
}

#[test]
fn fft_accuracy_budget() {
    // An n-point FFT does log2(n) rounded stages; error stays within a
    // small multiple of sqrt(log n) ulps of the result magnitude.
    let n = 128;
    let fmt = FpFormat::SINGLE;
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::from_f64(fmt, (i as f64 * 0.05).sin(), (i as f64 * 0.03).cos()))
        .collect();
    let eng = FftEngine::new(fmt, RoundMode::NearestEven, 7, 9);
    let (got, _) = eng.run(&x, false);
    // compare against a double-precision FFT via the same engine in f64
    let eng64 = FftEngine::new(FpFormat::DOUBLE, RoundMode::NearestEven, 7, 9);
    let x64: Vec<Cplx> = x
        .iter()
        .map(|c| {
            let (re, im) = c.to_f64(fmt);
            Cplx::from_f64(FpFormat::DOUBLE, re, im)
        })
        .collect();
    let (want, _) = eng64.run(&x64, false);
    let mut meter = ErrorMeter::new(fmt, 1e-30);
    for (g, w) in got.iter().zip(&want) {
        let (wr, wi) = w.to_f64(FpFormat::DOUBLE);
        meter.record(g.re, wr);
        meter.record(g.im, wi);
    }
    let s = meter.stats();
    assert!(
        s.max_abs < 6.0 * (n as f64) * ulp_at(fmt, 1.0),
        "max abs = {}",
        s.max_abs
    );
    assert!(s.rms < s.max_abs);
    assert_eq!(s.count, 2 * n);
}

#[test]
fn truncation_mode_costs_accuracy_everywhere() {
    let n = 10;
    let fmt = FpFormat::SINGLE;
    let (a, b) = test_matrices(fmt, n);
    let (ne, _) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 5, &a, &b, UnitBackend::Fast);
    let (tr, _) = LinearArray::multiply(fmt, RoundMode::Truncate, 4, 5, &a, &b, UnitBackend::Fast);
    let base = f64_matmul(&a, &b);
    let mut m_ne = ErrorMeter::new(fmt, 1e-30);
    m_ne.record_matrix(&ne, &base);
    let mut m_tr = ErrorMeter::new(fmt, 1e-30);
    m_tr.record_matrix(&tr, &base);
    assert!(m_tr.stats().rms > m_ne.stats().rms);
    assert!(m_tr.stats().max_abs >= m_ne.stats().max_abs);
}

#[test]
fn dot_interleave_order_does_not_degrade_accuracy() {
    // Banked accumulation is as accurate as sequential for benign data
    // (it is the classical pairwise-ish improvement, if anything).
    let fmt = FpFormat::SINGLE;
    let n = 512;
    let xs: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.013).sin()).bits())
        .collect();
    let ys: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.027).cos()).bits())
        .collect();
    let exact: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(&a, &b)| {
            SoftFloat::from_bits(fmt, a).to_f64() * SoftFloat::from_bits(fmt, b).to_f64()
        })
        .sum();
    // sequential softfp
    let mut acc = SoftFloat::zero(fmt);
    for (&a, &b) in xs.iter().zip(&ys) {
        let (r, _) = acc.mac(
            &SoftFloat::from_bits(fmt, a),
            &SoftFloat::from_bits(fmt, b),
            RoundMode::NearestEven,
        );
        acc = r;
    }
    let seq_err = (acc.to_f64() - exact).abs();
    // banked
    let mut unit = DotProductUnit::new(fmt, RoundMode::NearestEven, 5, 9);
    let (banked, _) = unit.dot(&xs, &ys);
    let banked_err = (SoftFloat::from_bits(fmt, banked).to_f64() - exact).abs();
    assert!(
        banked_err <= seq_err * 2.0,
        "banked {banked_err} vs sequential {seq_err}"
    );
}

/// Deterministic positive operands in [1, 2) with full-width mantissas
/// (dyadic values would sum exactly in any format and hide the
/// accumulator) — a growing sum, the regime where the accumulator's
/// precision is the whole story.
fn probe_vectors(fmt: FpFormat, n: usize) -> (Vec<u64>, Vec<u64>) {
    let enc = |v: f64| SoftFloat::from_f64(fmt, v).bits();
    let xs = (0..n)
        .map(|i| enc(1.0 + (i as f64 * 0.37).sin().abs()))
        .collect();
    let ys = (0..n)
        .map(|i| enc(1.0 + (i as f64 * 0.53).cos().abs()))
        .collect();
    (xs, ys)
}

/// f64 reference for a dot product of storage-encoded vectors: exact
/// products of the decoded values, summed in f64.
fn dot_reference(fmt: FpFormat, xs: &[u64], ys: &[u64]) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(&a, &b)| {
            SoftFloat::from_bits(fmt, a).to_f64() * SoftFloat::from_bits(fmt, b).to_f64()
        })
        .sum()
}

/// The tentpole's numerical claim, measured end to end: a dot product
/// that multiplies in f32 but accumulates in f64 tracks the
/// high-precision reference across every depth, while the uniform-f32
/// accumulator's error grows with depth — by the deepest probe the
/// mixed policy is a decisive win.
#[test]
fn wide_accumulation_tightens_dot_error_across_depths() {
    let fmt = FpFormat::SINGLE;
    let mode = RoundMode::NearestEven;
    let uniform = PrecisionPolicy::uniform(fmt);
    let mixed = PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE);
    let (xs, ys) = probe_vectors(fmt, 4096);
    let mut last_ratio = 0.0;
    for depth in [64usize, 512, 4096] {
        let base = dot_reference(fmt, &xs[..depth], &ys[..depth]);
        let err_of = |p: PrecisionPolicy| {
            let r = mixed_dot(p, mode, &xs[..depth], &ys[..depth], 5, 4);
            let mut m = ErrorMeter::new(fmt, 1e-30);
            m.record(r.bits, base);
            m.stats().max_ulp
        };
        let u = err_of(uniform);
        let w = err_of(mixed);
        assert!(
            w <= u,
            "depth {depth}: wide accumulate ({w} ulp) must not lose to uniform ({u} ulp)"
        );
        last_ratio = u / w.max(0.5);
    }
    assert!(
        last_ratio >= 4.0,
        "at depth 4096 the f64 accumulator must win clearly (ratio {last_ratio})"
    );
}

/// Ill-conditioned summation: a huge head absorbs a long tail of small
/// addends and is then cancelled away, so only the tail survives. The
/// f32 accumulator flushes the tail into the big value's ulp gap and
/// blows a 0.1% relative-error budget; the f64 accumulator keeps every
/// tail bit and passes the same budget.
#[test]
fn ill_conditioned_sum_needs_the_wide_accumulator() {
    let fmt = FpFormat::SINGLE;
    let mode = RoundMode::NearestEven;
    let n = 1024;
    let enc = |v: f64| SoftFloat::from_f64(fmt, v).bits();
    let mut xs = vec![enc(1.0); n];
    xs[0] = enc(1.0e8);
    xs[n - 1] = enc(-1.0e8);
    let ys = vec![enc(1.0); n];
    let base = dot_reference(fmt, &xs, &ys); // = n - 2 exactly

    let budget = ErrorBudget::MaxRelative(1e-3);
    let stats_of = |p: PrecisionPolicy| {
        let r = mixed_dot(p, mode, &xs, &ys, 5, 4);
        let mut m = ErrorMeter::new(fmt, 1e-30);
        m.record(r.bits, base);
        m.stats()
    };
    let narrow = stats_of(PrecisionPolicy::uniform(fmt));
    let wide = stats_of(PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE));
    assert!(
        !budget.accepts(&narrow),
        "f32 accumulation must blow the budget (rel err {})",
        narrow.max_rel
    );
    assert!(
        budget.accepts(&wide),
        "f64 accumulation must pass the budget (rel err {})",
        wide.max_rel
    );
}

/// Mixed-precision matmul against the f64 reference: the f64-accumulate
/// policy stays within a tight absolute bound and never loses to the
/// uniform-f32 array on the same operands.
#[test]
fn mixed_matmul_tracks_the_f64_reference() {
    let fmt = FpFormat::SINGLE;
    let mode = RoundMode::NearestEven;
    let n = 12;
    let (a, b) = test_matrices(fmt, n);
    let base = f64_matmul(&a, &b);

    let (uniform_c, _) = mixed_matmul(PrecisionPolicy::uniform(fmt), mode, &a, &b);
    let (mixed_c, _) = mixed_matmul(PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE), mode, &a, &b);
    let stats_of = |c: &Matrix| {
        let mut m = ErrorMeter::new(fmt, 1e-30);
        m.record_matrix(c, &base);
        m.stats()
    };
    let u = stats_of(&uniform_c);
    let w = stats_of(&mixed_c);
    assert!(
        w.max_abs <= u.max_abs,
        "mixed {} vs uniform {}",
        w.max_abs,
        u.max_abs
    );
    // With exact f64 accumulation the only errors are the per-product
    // f32 roundings and the final narrowing: ~n/2 + 1 half-ulps at the
    // accumulation magnitude.
    assert!(
        w.max_abs <= (n as f64 / 2.0 + 1.0) * ulp_at(fmt, n as f64),
        "mixed matmul abs error {} exceeds its rounding budget",
        w.max_abs
    );
}

/// Tightening the error budget provably changes the policy the
/// auto-tuner selects: a budget the uniform-f32 policy meets buys the
/// cheapest fabric, halving it below uniform's measured error forces a
/// wider (more expensive) accumulator.
#[test]
fn tightening_the_budget_changes_the_served_policy() {
    use fpfpga::serve::tuner::probe_stats;
    let storage = FpFormat::SINGLE;
    let tech = Tech::virtex2pro();
    let cache = SweepCache::new();
    let uniform_err =
        probe_stats(PrecisionPolicy::uniform(storage), RoundMode::NearestEven).max_ulp;

    let loose = fpfpga::serve::autotune(
        storage,
        &ErrorBudget::MaxUlp(uniform_err * 2.0),
        &tech,
        &cache,
    )
    .expect("loose budget is satisfiable");
    let tight = fpfpga::serve::autotune(
        storage,
        &ErrorBudget::MaxUlp(uniform_err / 2.0),
        &tech,
        &cache,
    )
    .expect("a wider accumulator can halve uniform error");

    assert_eq!(loose.policy, PrecisionPolicy::uniform(storage));
    assert_ne!(
        tight.policy, loose.policy,
        "the tight budget must change the selection"
    );
    assert!(
        tight.cost_slices > loose.cost_slices,
        "accuracy is bought with area: {} vs {} slices",
        tight.cost_slices,
        loose.cost_slices
    );
    assert!(tight.stats.max_ulp <= uniform_err / 2.0);
}

/// The policy surface end to end through the serving API: a tenant book
/// routes one tenant to f48, an auto-tuned submission resolves and
/// runs, and the metrics account for both.
#[test]
fn serve_policies_resolve_per_tenant_and_per_budget() {
    use fpfpga::serve::Kernel;
    let fmt = FpFormat::SINGLE;
    let enc = |v: f64| SoftFloat::from_f64(fmt, v).bits();
    let book =
        PolicyBook::default().with_tenant("science", PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE));
    let pool = ServePool::new(ServeConfig {
        workers: 2,
        policies: book,
        ..ServeConfig::default()
    });
    let dot = |n: usize| Kernel::Dot {
        mult_stages: 5,
        add_stages: 4,
        x: (0..n).map(|i| enc(1.0 + i as f64 * 0.125)).collect(),
        y: (0..n).map(|i| enc(2.0 - i as f64 * 0.0625)).collect(),
    };
    let h1 = pool
        .submit(JobSpec::of(dot(33)).for_tenant("science"))
        .expect("tenant job accepted");
    let h2 = pool
        .submit(JobSpec::of(dot(33)).auto_policy(fmt, ErrorBudget::MaxUlp(1e9)))
        .expect("auto job accepted");
    assert!(matches!(
        h1.wait(),
        JobOutcome::Completed(JobResult::Dot { .. })
    ));
    assert!(matches!(
        h2.wait(),
        JobOutcome::Completed(JobResult::Dot { .. })
    ));
    match pool.submit(JobSpec::of(dot(9)).auto_policy(fmt, ErrorBudget::MaxRelative(0.0))) {
        Err(SubmitError::Budget { detail }) => {
            assert!(detail.contains("no policy"), "{detail}")
        }
        other => panic!("impossible budget must be refused, got {other:?}"),
    }
    let m = pool.join();
    assert_eq!(m.completed, 2);
    assert_eq!(m.mixed_jobs, 1, "the science tenant's job is mixed");
    assert_eq!(m.auto_tuned, 1);
    assert_eq!(m.failed, 1);
}
