//! Numerical-accuracy integration: precision choices measured end to end
//! across kernels, formats and rounding modes — the quantitative backing
//! for the paper's premise that these applications "demand high numerical
//! stability and accuracy and hence are usually floating-point based".

use fpfpga::matmul::accuracy::{matmul_error, ulp_at, ErrorMeter};
use fpfpga::matmul::fft::{Cplx, FftEngine};
use fpfpga::matmul::pe::UnitBackend;
use fpfpga::matmul::reference::f64_matmul;
use fpfpga::prelude::*;

fn test_matrices(fmt: FpFormat, n: usize) -> (Matrix, Matrix) {
    (
        Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.21).sin()),
        Matrix::from_fn(fmt, n, n, |i, j| ((i * 2 + j * 3) as f64 * 0.17).cos()),
    )
}

#[test]
fn matmul_error_scales_with_format() {
    let n = 12;
    let mut errors = Vec::new();
    for fmt in FpFormat::PAPER_PRECISIONS {
        let (a, b) = test_matrices(fmt, n);
        let (c, _) =
            LinearArray::multiply(fmt, RoundMode::NearestEven, 5, 7, &a, &b, UnitBackend::Fast);
        let stats = matmul_error(&c, &a, &b);
        // Absolute error is bounded by ~n ulps *at the accumulation
        // magnitude* (errors accrue at intermediate scale, so the
        // per-result-ulp figure can be much larger after cancellation).
        let scale = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| a.get_f64(i, j).abs())
            .fold(1.0f64, f64::max)
            * n as f64;
        assert!(
            stats.max_abs <= 4.0 * n as f64 * ulp_at(fmt, scale),
            "{fmt}: abs {} vs bound {}",
            stats.max_abs,
            4.0 * n as f64 * ulp_at(fmt, scale)
        );
        errors.push(stats.max_abs);
    }
    assert!(errors[0] > errors[1] && errors[1] > errors[2], "{errors:?}");
    // 48-bit sits ~13 bits (≈ 4 decimal digits) below single's error
    assert!(errors[0] / errors[1] > 1e3, "{} / {}", errors[0], errors[1]);
}

#[test]
fn custom_format_accuracy_interpolates() {
    // A 20-bit format lands between half-precision-ish and single.
    let n = 8;
    let err_of = |fmt: FpFormat| {
        let (a, b) = test_matrices(fmt, n);
        let (c, _) =
            LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 5, &a, &b, UnitBackend::Fast);
        matmul_error(&c, &a, &b).max_abs
    };
    let e16 = err_of(FpFormat::new(6, 9));
    let e20 = err_of(FpFormat::new(7, 12));
    let e32 = err_of(FpFormat::SINGLE);
    assert!(e16 > e20 && e20 > e32, "{e16} {e20} {e32}");
}

#[test]
fn fma_kernels_beat_two_step_on_error() {
    // LU with fused MACs vs the same elimination with mul+sub: measure
    // reconstruction error over a batch; fused must not lose.
    let n = 14;
    let fmt = FpFormat::SINGLE;
    let a = Matrix::from_fn(fmt, n, n, |i, j| {
        if i == j {
            9.0 + i as f64
        } else {
            ((i * n + j) as f64 * 0.29).sin()
        }
    });
    let eng = fpfpga::matmul::LuEngine::new(fmt, RoundMode::NearestEven, 12, 5, 2);
    let fused = eng.factor(&a);
    let back = fpfpga::matmul::lu::reconstruct(&fused.lu, RoundMode::NearestEven);
    let fused_err = back.max_abs_diff(&a);

    // two-step elimination in softfp
    let mut m = a.clone();
    for k in 0..n {
        let pivot = SoftFloat::from_bits(fmt, m.get(k, k));
        for i in k + 1..n {
            let (l, _) = SoftFloat::from_bits(fmt, m.get(i, k)).div(&pivot, RoundMode::NearestEven);
            m.set(i, k, l.bits());
            for j in k + 1..n {
                let (p, _) = l.mul(
                    &SoftFloat::from_bits(fmt, m.get(k, j)),
                    RoundMode::NearestEven,
                );
                let (d, _) = SoftFloat::from_bits(fmt, m.get(i, j)).sub(&p, RoundMode::NearestEven);
                m.set(i, j, d.bits());
            }
        }
    }
    let back2 = fpfpga::matmul::lu::reconstruct(&m, RoundMode::NearestEven);
    let two_step_err = back2.max_abs_diff(&a);
    assert!(
        fused_err <= two_step_err * 1.5,
        "fused {fused_err} vs two-step {two_step_err}"
    );
}

#[test]
fn fft_accuracy_budget() {
    // An n-point FFT does log2(n) rounded stages; error stays within a
    // small multiple of sqrt(log n) ulps of the result magnitude.
    let n = 128;
    let fmt = FpFormat::SINGLE;
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::from_f64(fmt, (i as f64 * 0.05).sin(), (i as f64 * 0.03).cos()))
        .collect();
    let eng = FftEngine::new(fmt, RoundMode::NearestEven, 7, 9);
    let (got, _) = eng.run(&x, false);
    // compare against a double-precision FFT via the same engine in f64
    let eng64 = FftEngine::new(FpFormat::DOUBLE, RoundMode::NearestEven, 7, 9);
    let x64: Vec<Cplx> = x
        .iter()
        .map(|c| {
            let (re, im) = c.to_f64(fmt);
            Cplx::from_f64(FpFormat::DOUBLE, re, im)
        })
        .collect();
    let (want, _) = eng64.run(&x64, false);
    let mut meter = ErrorMeter::new(fmt, 1e-30);
    for (g, w) in got.iter().zip(&want) {
        let (wr, wi) = w.to_f64(FpFormat::DOUBLE);
        meter.record(g.re, wr);
        meter.record(g.im, wi);
    }
    let s = meter.stats();
    assert!(
        s.max_abs < 6.0 * (n as f64) * ulp_at(fmt, 1.0),
        "max abs = {}",
        s.max_abs
    );
    assert!(s.rms < s.max_abs);
    assert_eq!(s.count, 2 * n);
}

#[test]
fn truncation_mode_costs_accuracy_everywhere() {
    let n = 10;
    let fmt = FpFormat::SINGLE;
    let (a, b) = test_matrices(fmt, n);
    let (ne, _) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 5, &a, &b, UnitBackend::Fast);
    let (tr, _) = LinearArray::multiply(fmt, RoundMode::Truncate, 4, 5, &a, &b, UnitBackend::Fast);
    let base = f64_matmul(&a, &b);
    let mut m_ne = ErrorMeter::new(fmt, 1e-30);
    m_ne.record_matrix(&ne, &base);
    let mut m_tr = ErrorMeter::new(fmt, 1e-30);
    m_tr.record_matrix(&tr, &base);
    assert!(m_tr.stats().rms > m_ne.stats().rms);
    assert!(m_tr.stats().max_abs >= m_ne.stats().max_abs);
}

#[test]
fn dot_interleave_order_does_not_degrade_accuracy() {
    // Banked accumulation is as accurate as sequential for benign data
    // (it is the classical pairwise-ish improvement, if anything).
    let fmt = FpFormat::SINGLE;
    let n = 512;
    let xs: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.013).sin()).bits())
        .collect();
    let ys: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.027).cos()).bits())
        .collect();
    let exact: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(&a, &b)| {
            SoftFloat::from_bits(fmt, a).to_f64() * SoftFloat::from_bits(fmt, b).to_f64()
        })
        .sum();
    // sequential softfp
    let mut acc = SoftFloat::zero(fmt);
    for (&a, &b) in xs.iter().zip(&ys) {
        let (r, _) = acc.mac(
            &SoftFloat::from_bits(fmt, a),
            &SoftFloat::from_bits(fmt, b),
            RoundMode::NearestEven,
        );
        acc = r;
    }
    let seq_err = (acc.to_f64() - exact).abs();
    // banked
    let mut unit = DotProductUnit::new(fmt, RoundMode::NearestEven, 5, 9);
    let (banked, _) = unit.dot(&xs, &ys);
    let banked_err = (SoftFloat::from_bits(fmt, banked).to_f64() - exact).abs();
    assert!(
        banked_err <= seq_err * 2.0,
        "banked {banked_err} vs sequential {seq_err}"
    );
}
