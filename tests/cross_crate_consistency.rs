//! Cross-crate consistency: quantities that two different layers compute
//! independently must agree — the simulator against the analytical
//! models, the facade against the underlying crates.

use fpfpga::matmul::pe::UnitBackend;
use fpfpga::prelude::*;

#[test]
fn schedule_model_matches_array_simulation() {
    // The analytical Schedule cycle counts must equal the cycle-accurate
    // array's counters for a spread of (n, PL) shapes.
    for (n, ms, asl) in [(4u32, 3u32, 4u32), (8, 5, 6), (12, 9, 12), (20, 7, 9)] {
        let fmt = FpFormat::SINGLE;
        let a = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| (i + j) as f64 * 0.1);
        let b = Matrix::identity(fmt, n as usize);
        let (_, stats) = LinearArray::multiply(
            fmt,
            RoundMode::NearestEven,
            ms,
            asl,
            &a,
            &b,
            UnitBackend::Fast,
        );
        let sched = Schedule::new(n, ms + asl);
        assert_eq!(stats.useful_macs, sched.useful_cycles() * n as u64, "n={n}");
        assert_eq!(stats.pad_macs, sched.pad_cycles() * n as u64, "n={n}");
        assert_eq!(
            stats.cycles,
            sched.issue_cycles() + n as u64 + (ms + asl) as u64 + 1,
            "n={n}"
        );
    }
}

#[test]
fn block_model_matches_block_simulation() {
    for (n, b, ms, asl) in [(8u32, 4u32, 3u32, 4u32), (16, 8, 7, 9), (12, 6, 4, 5)] {
        let fmt = FpFormat::SINGLE;
        let am = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
            ((i * 3 + j) as f64).sin()
        });
        let bm = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
            ((i + j * 2) as f64).cos()
        });
        let plan = BlockMatMul::square(n, b, ms + asl).unwrap();
        let (_, stats, _) = plan
            .run(
                fmt,
                RoundMode::NearestEven,
                ms,
                asl,
                &am,
                &bm,
                UnitBackend::Fast,
            )
            .unwrap();
        assert_eq!(stats.cycles, plan.total_cycles(), "n={n} b={b}");
        assert_eq!(stats.useful_macs, plan.useful_macs(), "n={n} b={b}");
        assert_eq!(stats.pad_macs, plan.pad_macs(), "n={n} b={b}");
    }
}

#[test]
fn unit_set_reports_match_fpu_sweeps() {
    // UnitSet::with_stages must return exactly the sweep rows the fpu
    // crate computes.
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;
    let set = UnitSet::with_stages(FpFormat::DOUBLE, 12, 9, &tech, opts);
    let add_sweep = CoreSweep::adder(FpFormat::DOUBLE, &tech, opts);
    let mul_sweep = CoreSweep::multiplier(FpFormat::DOUBLE, &tech, opts);
    let add12 = add_sweep.reports.iter().find(|r| r.stages == 12).unwrap();
    let mul9 = mul_sweep.reports.iter().find(|r| r.stages == 9).unwrap();
    assert_eq!(&set.adder, add12);
    assert_eq!(&set.multiplier, mul9);
    assert_eq!(set.pl(), 21);
}

#[test]
fn pipelined_unit_latency_equals_report_stages() {
    // The structural simulator's latency must equal the stage count the
    // timing report claims for the same configuration.
    let design = AdderDesign::new(FpFormat::FP48);
    for k in [1u32, 5, 9, 14] {
        let unit = design.simulator(k);
        assert_eq!(unit.latency(), k);
    }
}

#[test]
fn energy_report_resources_match_device_fill_pe() {
    // The per-PE area used by the energy model is the same PeResources
    // the device fill uses.
    let tech = Tech::virtex2pro();
    let units = UnitSet::for_level(
        FpFormat::SINGLE,
        PipeliningLevel::Moderate,
        &tech,
        SynthesisOptions::SPEED,
    );
    let n = 16u32;
    let arch = ArchitectureEnergy::new(units.clone(), n, n, &tech);
    let rep = arch.charge_flat(n, &tech);
    let pe = PeResources::new(&units, n, &tech);
    let expect = (pe.area * n as f64).slices(&tech) as u32;
    assert_eq!(rep.slices, expect);
}

#[test]
fn power_of_fill_equals_model_on_total_area() {
    let tech = Tech::virtex2pro();
    let units = UnitSet::for_level(
        FpFormat::SINGLE,
        PipeliningLevel::Maximum,
        &tech,
        SynthesisOptions::SPEED,
    );
    let fill = DeviceFill::new(Device::XC2VP125, &units, 64, &tech);
    let model = PowerModel::virtex2pro();
    let total = fill.pe.area * fill.pe_count as f64;
    let expect = model.power_mw(&total, fill.clock_mhz, 0.3).total_mw() / 1000.0;
    assert!((fill.power_w(0.3) - expect).abs() < 1e-9);
}

#[test]
fn softfp_and_fpu_agree_through_the_facade() {
    // Smoke-check the re-exports wire to the same implementations.
    let fmt = FpFormat::SINGLE;
    let (a, b) = (2.75f32, -1.5f32);
    let (bits, _) = fpfpga::softfp::add_bits(
        fmt,
        a.to_bits() as u64,
        b.to_bits() as u64,
        RoundMode::NearestEven,
    );
    let mut unit = AdderDesign::new(fmt).simulator(4);
    let mut out = unit.clock(Some((a.to_bits() as u64, b.to_bits() as u64)));
    while out.is_none() {
        out = unit.clock(None);
    }
    assert_eq!(out.unwrap().0, bits);
    assert_eq!(f32::from_bits(bits as u32), 1.25);
}
