//! Integration tests for the extension features, end to end across
//! crates: divider/sqrt cores, fused MAC, full-IEEE mode, the dot/MVM/
//! FFT kernels, the Pareto explorer and the Virtex-E technology port.

use fpfpga::fpu::ieee_cost::ieee_cost_analysis;
use fpfpga::fpu::{FusedMacDesign, MacComparison};
use fpfpga::matmul::fft::{reference_fft, Cplx, FftEngine};
use fpfpga::prelude::*;

#[test]
fn divider_core_end_to_end() {
    // Sweep → pick a config → simulate → verify against softfp.
    let tech = Tech::virtex2pro();
    let sweep = DividerDesign::new(FpFormat::SINGLE).sweep(&tech, SynthesisOptions::SPEED);
    let at200 = sweep
        .iter()
        .find(|r| r.clock_mhz >= 200.0)
        .expect("reachable");
    let mut unit = DividerDesign::new(FpFormat::SINGLE).simulator(at200.stages);
    let (a, b) = (355.0f32, 113.0f32);
    let mut out = unit.clock(Some((a.to_bits() as u64, b.to_bits() as u64)));
    while out.is_none() {
        out = unit.clock(None);
    }
    assert_eq!(f32::from_bits(out.unwrap().0 as u32), a / b);
    // Digit recurrence: deep pipelines for high clocks.
    assert!(at200.stages > 15, "stages = {}", at200.stages);
}

#[test]
fn fused_mac_vs_pe_chain() {
    // The fused unit and the PE's chained units agree except where the
    // single rounding matters — and then the fused one is the correctly
    // rounded answer.
    let fmt = FpFormat::SINGLE;
    let mut fused = FusedMacDesign::new(fmt).unit(4);
    let cases = [
        (1.5f32, 2.5f32, 3.25f32),
        (0.1, 0.2, 0.3),
        (1e8, 1e-8, -1.0),
    ];
    for (a, b, c) in cases {
        let mut out = fused.clock(Some((
            a.to_bits() as u64,
            b.to_bits() as u64,
            c.to_bits() as u64,
        )));
        while out.is_none() {
            out = fused.clock(None);
        }
        assert_eq!(
            f32::from_bits(out.unwrap().0 as u32),
            a.mul_add(b, c),
            "{a}*{b}+{c}"
        );
    }
    let cmp = MacComparison::build(fmt, &Tech::virtex2pro(), SynthesisOptions::SPEED);
    assert!(cmp.stage_saving() >= 0);
}

#[test]
fn full_ieee_costs_what_the_paper_saved() {
    let reports = ieee_cost_analysis(&Tech::virtex2pro(), SynthesisOptions::SPEED);
    // Average slice overhead across cores/precisions is substantial —
    // the quantified version of "may not justify the usage of a lot of
    // hardware".
    let avg: f64 = reports.iter().map(MacOverhead::overhead).sum::<f64>() / reports.len() as f64;
    assert!(avg > 0.3, "average IEEE slice overhead = {:.2}", avg);
}

// Small helper to keep the test above readable.
trait MacOverhead {
    fn overhead(&self) -> f64;
}
impl MacOverhead for fpfpga::fpu::ieee_cost::IeeeCostReport {
    fn overhead(&self) -> f64 {
        self.slice_overhead()
    }
}

#[test]
fn ieee_mode_recovers_what_ftz_loses() {
    // The documented flush-to-zero loss, demonstrated through the public
    // API: subtracting nearby small normals.
    let fmt = FpFormat::SINGLE;
    let a = f32::from_bits(0x0080_0007);
    let b = f32::from_bits(0x0080_0001);
    let (ftz, fl) = fpfpga::softfp::sub_bits(
        fmt,
        a.to_bits() as u64,
        b.to_bits() as u64,
        RoundMode::NearestEven,
    );
    assert_eq!(ftz, 0);
    assert!(fl.underflow);
    let (ieee, _) = fpfpga::softfp::ieee::ieee_sub(
        fmt,
        a.to_bits() as u64,
        b.to_bits() as u64,
        RoundMode::NearestEven,
    );
    assert_eq!(ieee as u32, (a - b).to_bits());
    assert_ne!(ieee, 0);
}

#[test]
fn fft_pipeline_of_paper_units() {
    // An FFT built from the paper's optimal single-precision units.
    let tech = Tech::virtex2pro();
    let add = CoreSweep::adder(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
    let mul = CoreSweep::multiplier(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
    let eng = FftEngine::new(
        FpFormat::SINGLE,
        RoundMode::NearestEven,
        mul.opt().stages,
        add.opt().stages,
    );
    let n = 64;
    let x: Vec<Cplx> = (0..n)
        .map(|i| Cplx::from_f64(FpFormat::SINGLE, (i as f64 * 0.1).sin(), 0.0))
        .collect();
    let (got, cycles) = eng.run(&x, false);
    assert_eq!(
        got,
        reference_fft(FpFormat::SINGLE, RoundMode::NearestEven, &x, false)
    );
    assert_eq!(cycles, eng.cycle_model(n));
}

#[test]
fn explorer_recommendations_fit_their_device() {
    let tech = Tech::virtex2pro();
    let e = Explorer::new(FpFormat::SINGLE, 128);
    for device in [Device::XC2VP20, Device::XC2VP50] {
        let frontier = e.pareto(
            &Constraints::for_device(&device),
            &tech,
            SynthesisOptions::SPEED,
        );
        assert!(!frontier.is_empty(), "{}", device.name);
        for c in &frontier {
            assert!(c.slices <= device.slices, "{} on {}", c.slices, device.name);
        }
    }
}

#[test]
fn designs_port_to_virtex_e() {
    // The same netlists evaluate on the older family: slower, bigger
    // relative cost, same shapes.
    let old = Tech::virtex_e();
    let new = Tech::virtex2pro();
    let d = AdderDesign::new(FpFormat::SINGLE);
    let sweep_old = d.sweep(&old, SynthesisOptions::SPEED);
    let sweep_new = d.sweep(&new, SynthesisOptions::SPEED);
    let best_old = sweep_old.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
    let best_new = sweep_new.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
    assert!(
        best_old < best_new * 0.85,
        "VirtexE {best_old} vs V2Pro {best_new}"
    );
    // The freq/area optimum is still an interior point on the old family.
    let opt = fpfpga::fabric::timing::optimal(&sweep_old);
    assert!(opt.stages > 1 && opt.stages < sweep_old.len() as u32);
    // Quixilica's published VirtexE adder rate (169 MFLOPS ≈ 169 MHz) is
    // within the old family's achievable band.
    assert!(
        best_old > 169.0,
        "a deeply pipelined adder must beat the 2003 datasheet"
    );
}

#[test]
fn waveform_trace_shows_matmul_padding() {
    // Trace a PE's adder while a padded schedule runs: utilization lands
    // between the pad fraction and full.
    use fpfpga::fpu::Waveform;
    let design = AdderDesign::new(FpFormat::SINGLE);
    let mut unit = design.simulator(6);
    let mut wave = Waveform::new(unit.latency());
    // Emulate a padded inner loop: 4 real ops, 6 bubbles, repeated.
    for _ in 0..5 {
        for i in 0..10 {
            let inp = if i < 4 {
                Some((1.0f32.to_bits() as u64, 2.0f32.to_bits() as u64))
            } else {
                None
            };
            unit.clock(inp);
            wave.sample(&unit);
        }
    }
    let u = wave.utilization();
    assert!((0.2..0.7).contains(&u), "utilization = {u}");
    let rendered = wave.render();
    assert!(rendered.contains('#') && rendered.contains('.'));
}
