//! End-to-end integration: exercise the full stack — format → pipelined
//! cores → linear array → block algorithm → device fill — in single
//! flows, the way the examples and the repro binary use it.

use fpfpga::matmul::pe::UnitBackend;
use fpfpga::matmul::reference::{error_vs_f64, reference_matmul};
use fpfpga::prelude::*;

#[test]
fn design_then_simulate_then_deploy() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;

    // 1. Design: pick throughput/area-optimal units for single precision.
    let add = CoreSweep::adder(FpFormat::SINGLE, &tech, opts);
    let mul = CoreSweep::multiplier(FpFormat::SINGLE, &tech, opts);
    let (ka, km) = (add.opt().stages, mul.opt().stages);
    assert!(ka >= 2 && km >= 2);

    // 2. Simulate: the exact configuration computes correctly.
    let n = 8usize;
    let a = Matrix::from_fn(FpFormat::SINGLE, n, n, |i, j| {
        ((i * n + j) as f64 * 0.23).sin()
    });
    let b = Matrix::from_fn(FpFormat::SINGLE, n, n, |i, j| {
        ((i + j * 2) as f64 * 0.19).cos()
    });
    let (c, stats) = LinearArray::multiply(
        FpFormat::SINGLE,
        RoundMode::NearestEven,
        km,
        ka,
        &a,
        &b,
        UnitBackend::Fast,
    );
    assert_eq!(c, reference_matmul(&a, &b, RoundMode::NearestEven));
    assert_eq!(stats.useful_macs, (n * n * n) as u64);
    assert!(error_vs_f64(&c, &a, &b) < 1e-4);

    // 3. Deploy: the same units fill the paper's device to a sane size.
    let units = UnitSet::with_stages(FpFormat::SINGLE, ka, km, &tech, opts);
    let fill = DeviceFill::new(Device::XC2VP125, &units, 64, &tech);
    assert!(fill.pe_count >= 20, "PEs = {}", fill.pe_count);
    assert!(fill.gflops() > 5.0);
}

#[test]
fn all_three_precisions_run_the_same_flow() {
    let tech = Tech::virtex2pro();
    for fmt in FpFormat::PAPER_PRECISIONS {
        let add = CoreSweep::adder(fmt, &tech, SynthesisOptions::SPEED);
        let mul = CoreSweep::multiplier(fmt, &tech, SynthesisOptions::SPEED);
        let n = 6usize;
        let a = Matrix::from_fn(fmt, n, n, |i, j| (i as f64 - j as f64) * 0.5);
        let b = Matrix::from_fn(fmt, n, n, |i, j| (i * j) as f64 * 0.25);
        let (c, _) = LinearArray::multiply(
            fmt,
            RoundMode::NearestEven,
            mul.opt().stages,
            add.opt().stages,
            &a,
            &b,
            UnitBackend::Fast,
        );
        assert_eq!(c, reference_matmul(&a, &b, RoundMode::NearestEven), "{fmt}");
    }
}

#[test]
fn blocked_and_flat_agree_bitwise() {
    let fmt = FpFormat::SINGLE;
    let n = 16u32;
    let a = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
        ((i * 7 + j) as f64 * 0.31).sin()
    });
    let b = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
        ((i + j * 5) as f64 * 0.27).cos()
    });
    let (flat, _) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 7, 9, &a, &b, UnitBackend::Fast);
    for bs in [4u32, 8, 16] {
        let plan = BlockMatMul::square(n, bs, 16).unwrap();
        let (blocked, _, _) = plan
            .run(fmt, RoundMode::NearestEven, 7, 9, &a, &b, UnitBackend::Fast)
            .unwrap();
        assert_eq!(blocked, flat, "b = {bs}");
    }
}

#[test]
fn structural_and_fast_backends_agree_in_the_array() {
    let fmt = FpFormat::SINGLE;
    let n = 5usize;
    let a = Matrix::from_fn(fmt, n, n, |i, j| (i as f64 + 1.0) / (j as f64 + 2.0));
    let b = Matrix::from_fn(fmt, n, n, |i, j| (j as f64 - i as f64) * 1.5);
    let (fast, s1) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 6, &a, &b, UnitBackend::Fast);
    let (structural, s2) = LinearArray::multiply(
        fmt,
        RoundMode::NearestEven,
        4,
        6,
        &a,
        &b,
        UnitBackend::Structural,
    );
    assert_eq!(fast, structural);
    assert_eq!(s1, s2);
}

#[test]
fn truncation_mode_flows_through_the_kernel() {
    let fmt = FpFormat::SINGLE;
    let n = 6usize;
    let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.41).sin());
    let b = Matrix::from_fn(fmt, n, n, |i, j| ((i * 2 + j) as f64 * 0.37).cos());
    let (ne, _) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 4, 5, &a, &b, UnitBackend::Fast);
    let (tr, _) = LinearArray::multiply(fmt, RoundMode::Truncate, 4, 5, &a, &b, UnitBackend::Fast);
    assert_eq!(tr, reference_matmul(&a, &b, RoundMode::Truncate));
    assert_ne!(ne, tr, "rounding mode must be observable");
}

#[test]
fn custom_format_end_to_end() {
    // A 20-bit format runs the whole stack: sweep, simulate, multiply.
    let fmt = FpFormat::new(7, 12);
    let tech = Tech::virtex2pro();
    let sweep = CoreSweep::adder(fmt, &tech, SynthesisOptions::SPEED);
    assert!(sweep.fastest().clock_mhz > 200.0, "small formats are fast");
    let n = 4usize;
    let a = Matrix::identity(fmt, n);
    let b = Matrix::from_fn(fmt, n, n, |i, j| (i + j) as f64);
    let (c, _) =
        LinearArray::multiply(fmt, RoundMode::NearestEven, 3, 4, &a, &b, UnitBackend::Fast);
    assert_eq!(c, b);
}
