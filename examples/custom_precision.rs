//! Custom precisions beyond the paper's three.
//!
//! The cores are parameterized over any (exponent, fraction) split, so a
//! designer can trade numerical error against area and clock rate. This
//! example sweeps a family of formats, reports the hardware cost of each
//! and measures the actual numerical error of a matrix multiplication in
//! each format against an f64 baseline.
//!
//! Run with: `cargo run --release --example custom_precision`

use fpfpga::matmul::reference::{error_vs_f64, reference_matmul};
use fpfpga::prelude::*;

fn main() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;

    // sign + exponent + fraction = total bits
    let formats: Vec<(&str, FpFormat)> = vec![
        ("fp16 (1+6+9)", FpFormat::new(6, 9)),
        ("fp20 (1+7+12)", FpFormat::new(7, 12)),
        ("fp24 (1+7+16)", FpFormat::new(7, 16)),
        ("fp32 (IEEE single)", FpFormat::SINGLE),
        ("fp48 (paper's 48-bit)", FpFormat::FP48),
        ("fp64 (IEEE double)", FpFormat::DOUBLE),
    ];

    let n = 12usize;
    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>9} {:>12}",
        "format", "add-sl", "mul-sl", "add-MHz", "mul-MHz", "matmul err"
    );
    for (name, fmt) in &formats {
        // Hardware cost at each core's freq/area optimum.
        let add = CoreSweep::adder(*fmt, &tech, opts);
        let mul = CoreSweep::multiplier(*fmt, &tech, opts);
        let (ao, mo) = (add.opt(), mul.opt());

        // Numerical error of an n×n matmul in this format.
        let a = Matrix::from_fn(*fmt, n, n, |i, j| ((i * n + j) as f64 * 0.29).sin());
        let b = Matrix::from_fn(*fmt, n, n, |i, j| ((i * 5 + j) as f64 * 0.13).cos());
        let c = reference_matmul(&a, &b, RoundMode::NearestEven);
        let err = error_vs_f64(&c, &a, &b);

        println!(
            "{:<22} {:>7} {:>7} {:>9.1} {:>9.1} {:>12.2e}",
            name, ao.slices, mo.slices, ao.clock_mhz, mo.clock_mhz, err
        );
    }

    // The monotone story: smaller formats are cheaper and faster but
    // less accurate. Verify the ends of the sweep explicitly.
    let small_add = CoreSweep::adder(FpFormat::new(6, 9), &tech, opts);
    let big_add = CoreSweep::adder(FpFormat::DOUBLE, &tech, opts);
    assert!(small_add.opt().slices < big_add.opt().slices);
    assert!(small_add.fastest().clock_mhz >= big_add.fastest().clock_mhz);
    println!("\nOK — smaller formats are cheaper and at least as fast.");

    // Cycle-accurate sanity at an unusual width: the pipelined cores are
    // bit-exact in any format.
    let fmt = FpFormat::new(7, 12);
    let mut unit = MultiplierDesign::new(fmt).simulator(6);
    let x = SoftFloat::from_f64(fmt, 1.375);
    let y = SoftFloat::from_f64(fmt, -2.5);
    let mut out = unit.clock(Some((x.bits(), y.bits())));
    while out.is_none() {
        out = unit.clock(None);
    }
    let (bits, _) = out.unwrap();
    println!(
        "fp20: 1.375 × -2.5 = {} (exact: -3.4375)",
        SoftFloat::from_bits(fmt, bits).to_f64()
    );
}
