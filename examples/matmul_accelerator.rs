//! Size a complete matrix-multiplication accelerator.
//!
//! The workflow a designer would follow with this library:
//!
//! 1. pick a precision and a device;
//! 2. choose the per-PE floating-point units by throughput/area, *at the
//!    frequency the surrounding architecture sustains* (Section 4.2's
//!    point: a unit faster than the array clock wastes slices);
//! 3. fill the device with PEs, read off GFLOPS and power, compare with
//!    general-purpose processors;
//! 4. validate the design numerically with a cycle-accurate block run.
//!
//! Run with: `cargo run --release --example matmul_accelerator`

use fpfpga::prelude::*;

fn main() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;
    let fmt = FpFormat::SINGLE;
    let device = Device::XC2VP125;

    // --- Unit selection at the kernel's operating point.
    println!("=== unit selection ({fmt}) ===");
    let units = UnitSet::for_level(fmt, PipeliningLevel::Maximum, &tech, opts);
    println!("adder:      {}", units.adder);
    println!("multiplier: {}", units.multiplier);
    println!("combined MAC latency PL = {} cycles", units.pl());

    // --- Device fill.
    let fill = DeviceFill::new(device, &units, 64, &tech);
    println!("\n=== {} fill ===", fill.device.name);
    println!("PE slices: {:.0}", fill.pe.slices(&tech));
    println!(
        "PEs: {}   array clock: {:.0} MHz",
        fill.pe_count, fill.clock_mhz
    );
    println!("sustained: {:.1} GFLOPS", fill.gflops());
    println!(
        "dynamic power: {:.1} W   → {:.2} GFLOPS/W",
        fill.power_w(0.3),
        fill.gflops_per_watt(0.3)
    );

    // --- Processor comparison (Section 4.2).
    let cmp = ProcessorComparison::new(fill.gflops(), fill.power_w(0.3));
    println!("\n=== vs general-purpose processors ===");
    for p in &cmp.processors {
        println!(
            "{:24} {:5.1} GFLOPS sustained → FPGA speedup {:.1}x, GFLOPS/W gain {:.1}x",
            p.name,
            p.sustained_gflops_single(),
            cmp.speedup_over(p),
            cmp.efficiency_gain_over(p),
        );
    }

    // --- Numerical validation with a cycle-accurate blocked run.
    println!("\n=== cycle-accurate validation (blocked 32x32, b = 16) ===");
    let n = 32u32;
    let b = 16u32;
    let plan = BlockMatMul::square(n, b, units.pl()).expect("positive plan");
    let a_m = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
        ((i + j) as f64 * 0.21).sin()
    });
    let b_m = Matrix::from_fn(fmt, n as usize, n as usize, |i, j| {
        ((i * 3 + j) as f64 * 0.17).cos()
    });
    let (c, stats, _) = plan
        .run(
            fmt,
            RoundMode::NearestEven,
            units.multiplier.stages,
            units.adder.stages,
            &a_m,
            &b_m,
            UnitBackend::Fast,
        )
        .expect("operands match the plan");
    let err = fpfpga::matmul::reference::error_vs_f64(&c, &a_m, &b_m);
    println!(
        "cycles: {} (model: {})   pad share: {:.1}%   max |err| vs f64: {err:.2e}",
        stats.cycles,
        plan.total_cycles(),
        100.0 * stats.pad_macs as f64 / (stats.pad_macs + stats.useful_macs) as f64,
    );
    assert!(err < 1e-4, "single-precision block matmul must be accurate");

    // --- Scale out: a ragged rectangular problem across 4 arrays.
    println!("\n=== multi-array run (100x37 · 37x61, b = 16, 4 arrays) ===");
    let mm = MultiMatMul::new(100, 37, 61, b, units.pl(), 4).expect("positive plan");
    let a_r = Matrix::from_fn(fmt, 100, 37, |i, j| ((i * 37 + j) as f64 * 0.03).sin());
    let b_r = Matrix::from_fn(fmt, 37, 61, |i, j| ((i + 5 * j) as f64 * 0.02).cos());
    let (c_r, ms) = mm
        .run(
            RoundMode::NearestEven,
            units.multiplier.stages,
            units.adder.stages,
            &a_r,
            &b_r,
            UnitBackend::Fast,
            0, // one worker per CPU; result is thread-count invariant
        )
        .expect("operands match the plan");
    let err_r = fpfpga::matmul::reference::error_vs_f64(&c_r, &a_r, &b_r);
    println!(
        "array-cycles: {}   makespan: {}   peak resident tiles: {}   max |err| vs f64: {err_r:.2e}",
        ms.total.cycles,
        ms.makespan_cycles(),
        ms.peak_resident_tiles,
    );
    assert!(err_r < 1e-4, "multi-array matmul must be accurate");
    println!("OK — accelerator validated.");
}
