//! LU decomposition — the follow-on kernel of the same research group
//! (Govindu, Choi, Prasanna, "A High-Performance and Energy-efficient
//! Architecture for Floating-point based LU Decomposition on FPGAs").
//!
//! Demonstrates the library as a *platform*: the kernel is built from
//! the same parameterized units — the divider produces each column's
//! multipliers, MACs perform the rank-1 update — and the performance is
//! estimated from the unit reports the fabric model produces.
//!
//! Numerics: Doolittle LU without pivoting on diagonally dominant
//! matrices, computed entirely in library arithmetic (`SoftFloat`), then
//! validated by reconstructing `L·U` and comparing against `A`.
//!
//! Run with: `cargo run --release --example lu_decomposition`

use fpfpga::prelude::*;

/// In-place Doolittle LU in the given format. Returns (L, U) packed in
/// one matrix (unit diagonal of L implicit) and the operation counts.
fn lu_softfp(a: &Matrix, mode: RoundMode) -> (Matrix, u64, u64) {
    let fmt = a.format();
    let n = a.rows();
    let mut m = a.clone();
    let mut divs = 0u64;
    let mut macs = 0u64;
    for k in 0..n {
        let pivot = SoftFloat::from_bits(fmt, m.get(k, k));
        assert!(
            !pivot.is_zero(),
            "zero pivot at {k} (no pivoting in this kernel)"
        );
        for i in k + 1..n {
            let (l, _) = SoftFloat::from_bits(fmt, m.get(i, k)).div(&pivot, mode);
            divs += 1;
            m.set(i, k, l.bits());
            for j in k + 1..n {
                // a[i][j] -= l * a[k][j]  (one multiply + one subtract)
                let (p, _) = l.mul(&SoftFloat::from_bits(fmt, m.get(k, j)), mode);
                let (d, _) = SoftFloat::from_bits(fmt, m.get(i, j)).sub(&p, mode);
                m.set(i, j, d.bits());
                macs += 1;
            }
        }
    }
    (m, divs, macs)
}

/// Reconstruct L·U from the packed factorization.
fn reconstruct(lu: &Matrix) -> Matrix {
    let fmt = lu.format();
    let n = lu.rows();
    let mut c = Matrix::zero(fmt, n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = SoftFloat::zero(fmt);
            for k in 0..=i.min(j) {
                let l = if k == i {
                    SoftFloat::one(fmt) // unit diagonal
                } else {
                    SoftFloat::from_bits(fmt, lu.get(i, k))
                };
                let u = SoftFloat::from_bits(fmt, lu.get(k, j));
                let (r, _) = acc.mac(&l, &u, RoundMode::NearestEven);
                acc = r;
            }
            c.set(i, j, acc.bits());
        }
    }
    c
}

fn main() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;
    let fmt = FpFormat::SINGLE;
    let n = 24usize;

    // A diagonally dominant test matrix (well-conditioned, no pivoting
    // needed).
    let a = Matrix::from_fn(fmt, n, n, |i, j| {
        if i == j {
            10.0 + i as f64
        } else {
            ((i * n + j) as f64 * 0.17).sin()
        }
    });

    // --- Numerics.
    let (lu, divs, macs) = lu_softfp(&a, RoundMode::NearestEven);
    let back = reconstruct(&lu);
    let err = back.max_abs_diff(&a);
    println!("LU of a {n}x{n} matrix: {divs} divisions, {macs} MACs");
    println!("reconstruction max |L·U - A| = {err:.3e}");
    assert!(err < 1e-4, "single-precision LU must reconstruct A closely");

    // --- Performance estimate from the unit reports, per the companion
    // paper's architecture (one divider + an array of p MAC PEs; the
    // rank-1 update dominates, the division chain is the serial tail).
    let add = CoreSweep::adder(fmt, &tech, opts);
    let mul = CoreSweep::multiplier(fmt, &tech, opts);
    let div = DividerDesign::new(fmt).sweep(&tech, opts);
    let (ka, km) = (add.opt(), mul.opt());
    let kd = fpfpga::fabric::timing::optimal(&div);
    let clock = ka.clock_mhz.min(km.clock_mhz).min(kd.clock_mhz) * 0.92;

    for p in [4u32, 8, 16, 32] {
        // update work: Σ_k (n-k-1)² MACs on p PEs; division: Σ_k (n-k-1)
        // through one divider, latency-bound per column.
        let update: u64 = (0..n).map(|k| ((n - k - 1) * (n - k - 1)) as u64).sum();
        let div_ops: u64 = (0..n).map(|k| (n - k - 1) as u64).sum();
        let cycles = update.div_ceil(p as u64) + div_ops + (n as u64) * kd.stages as u64;
        let us = cycles as f64 / clock;
        let gflops = (2 * update + div_ops) as f64 / (us * 1000.0);
        println!(
            "p = {p:>2} MAC PEs @ {clock:.0} MHz: {cycles:>6} cycles = {us:>7.2} us  (~{gflops:.2} GFLOPS)"
        );
    }

    println!(
        "\nunit configs: adder {} st / mult {} st / divider {} st ({} slices)",
        ka.stages, km.stages, kd.stages, kd.slices
    );
}
