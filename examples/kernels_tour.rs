//! A tour of the extension features beyond the paper's evaluation:
//!
//! * divider and square-root cores (digit recurrence — latency scales
//!   with precision);
//! * the price of full IEEE 754 support (denormals + NaN) that the
//!   paper's cores deliberately skip;
//! * dot-product and matrix-vector kernels with the banked-accumulator
//!   treatment of the reduction hazard;
//! * the Pareto design-space explorer over (pipelining level, block
//!   size).
//!
//! Run with: `cargo run --release --example kernels_tour`

use fpfpga::fpu::ieee_cost::ieee_cost_analysis;
use fpfpga::matmul::dot::dot_f64;
use fpfpga::prelude::*;

fn main() {
    let tech = Tech::virtex2pro();
    let opts = SynthesisOptions::SPEED;

    // --- Divider / sqrt cores.
    println!("=== divider & sqrt cores (digit recurrence) ===");
    for fmt in [FpFormat::SINGLE, FpFormat::DOUBLE] {
        let div = DividerDesign::new(fmt).sweep(&tech, opts);
        let sqrt = SqrtDesign::new(fmt).sweep(&tech, opts);
        let d200 = div.iter().find(|r| r.clock_mhz >= 200.0);
        let s200 = sqrt.iter().find(|r| r.clock_mhz >= 200.0);
        println!(
            "{fmt}: divider reaches 200 MHz at {} stages ({} slices); sqrt at {} stages ({} slices)",
            d200.map_or("—".into(), |r| r.stages.to_string()),
            d200.map_or("—".into(), |r| r.slices.to_string()),
            s200.map_or("—".into(), |r| r.stages.to_string()),
            s200.map_or("—".into(), |r| r.slices.to_string()),
        );
    }
    // Spot-check the arithmetic through a pipelined divider.
    let mut unit = DividerDesign::new(FpFormat::SINGLE).simulator(20);
    let mut out = unit.clock(Some((1.0f32.to_bits() as u64, 3.0f32.to_bits() as u64)));
    while out.is_none() {
        out = unit.clock(None);
    }
    println!(
        "1.0 / 3.0 = {} (20-stage divider)",
        f32::from_bits(out.unwrap().0 as u32)
    );

    // --- The cost of full IEEE.
    println!("\n=== what denormal/NaN support would cost (the paper omits it) ===");
    for r in ieee_cost_analysis(&tech, opts) {
        println!(
            "{:10} {:>6}: +{:>4.1}% slices, freq/area × {:.2}",
            r.core,
            r.format.to_string(),
            r.slice_overhead() * 100.0,
            r.freq_area_ratio(),
        );
    }

    // --- Dot product with the banked accumulator.
    println!("\n=== dot product (reduction hazard handled by La-way banking) ===");
    let fmt = FpFormat::SINGLE;
    let n = 1000;
    let x: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.01).sin()).bits())
        .collect();
    let y: Vec<u64> = (0..n)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.02).cos()).bits())
        .collect();
    let mut dot = DotProductUnit::new(fmt, RoundMode::NearestEven, 7, 9);
    let (result, cycles) = dot.dot(&x, &y);
    let got = SoftFloat::from_bits(fmt, result).to_f64();
    println!(
        "x·y over {n} elements: {got:.6} (f64: {:.6}) in {cycles} cycles ({} overhead)",
        dot_f64(fmt, &x, &y),
        cycles - n as u64,
    );

    // --- Matrix-vector multiply.
    println!("\n=== matrix-vector multiply ===");
    let a = Matrix::from_fn(fmt, 32, 32, |i, j| ((i * 32 + j) as f64 * 0.07).sin());
    let xv: Vec<u64> = (0..32)
        .map(|k| SoftFloat::from_f64(fmt, (k as f64 * 0.1).cos()).bits())
        .collect();
    let eng = MvmEngine::new(fmt, RoundMode::NearestEven, 7, 9, 8);
    let (yv, cycles) = eng.multiply(&a, &xv);
    assert_eq!(
        yv,
        eng.reference(&a, &xv),
        "cycle-accurate MVM must match its reference"
    );
    println!(
        "y = A·x (32×32, 8 PEs): {cycles} cycles; y[0] = {:.6}",
        SoftFloat::from_bits(fmt, yv[0]).to_f64()
    );

    // --- FIR filter (transposed form: no padding at any depth).
    println!("\n=== FIR filter (transposed form) ===");
    let coeffs = [0.2, 0.3, 0.2, 0.15, 0.15];
    let mut fir = fpfpga::matmul::FirFilter::new(fmt, RoundMode::NearestEven, &coeffs, 6);
    let samples: Vec<u64> = (0..64)
        .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.25).sin()).bits())
        .collect();
    let filtered = fir.filter(&samples);
    println!(
        "{}-tap FIR over {} samples: {} cycles, y[10] = {:.6}",
        coeffs.len(),
        samples.len(),
        fir.cycles,
        SoftFloat::from_bits(fmt, filtered[10]).to_f64()
    );

    // --- LU decomposition on divider + fused-MAC PEs.
    println!("\n=== LU decomposition engine ===");
    let n = 16;
    let a_lu = Matrix::from_fn(fmt, n, n, |i, j| {
        if i == j {
            10.0 + i as f64
        } else {
            ((i * n + j) as f64 * 0.19).sin()
        }
    });
    let lu = fpfpga::matmul::LuEngine::new(fmt, RoundMode::NearestEven, 16, 6, 4);
    let r = lu.factor(&a_lu);
    let back = fpfpga::matmul::lu::reconstruct(&r.lu, RoundMode::NearestEven);
    println!(
        "{n}x{n} LU: {} cycles ({} divs, {} MACs), |L·U − A| ≤ {:.2e}",
        r.cycles,
        r.divs,
        r.macs,
        back.max_abs_diff(&a_lu)
    );

    // --- 2-D convolution (image processing).
    println!("\n=== 2-D convolution ===");
    let gauss = vec![
        vec![0.0625, 0.125, 0.0625],
        vec![0.125, 0.25, 0.125],
        vec![0.0625, 0.125, 0.0625],
    ];
    let img = Matrix::from_fn(fmt, 24, 24, |i, j| {
        ((i as f64 - 12.0).hypot(j as f64 - 12.0) * 0.5).cos()
    });
    let conv = fpfpga::matmul::Conv2dEngine::new(fmt, RoundMode::NearestEven, &gauss, 5);
    let (blurred, cycles) = conv.convolve(&img);
    println!(
        "24x24 Gaussian blur: {cycles} row-filter cycles; centre {:.4} → {:.4}",
        img.get_f64(12, 12),
        blurred.get_f64(12, 12)
    );

    // --- Pareto explorer.
    println!("\n=== Pareto frontier: blocked 128x128 matmul on an XC2VP30 ===");
    let explorer = Explorer::new(fmt, 128);
    let constraints = Constraints::for_device(&Device::XC2VP30);
    for c in explorer.pareto(&constraints, &tech, opts) {
        println!(
            "  {:6} b={:3}: {:6} slices, {:9.1} us, {:11.0} nJ, {:4.1}% padded",
            c.level.label(),
            c.b,
            c.slices,
            c.latency_us,
            c.energy_nj,
            c.pad_fraction * 100.0,
        );
    }
}
