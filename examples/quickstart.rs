//! Quickstart: the three layers of the library in ~60 lines.
//!
//! 1. Sweep a floating-point core's pipeline depth (the paper's core
//!    analysis) and pick the throughput/area-optimal implementation;
//! 2. Run the chosen core cycle by cycle, bit-exactly;
//! 3. Multiply two matrices on the cycle-accurate linear array.
//!
//! Run with: `cargo run --example quickstart`

use fpfpga::prelude::*;

fn main() {
    let tech = Tech::virtex2pro();

    // --- 1. Design-space sweep for a single-precision adder, through
    // the builder entry point and a memoizing cache (a second sweep of
    // the same space would be a pure cache hit).
    let cache = SweepCache::new();
    let sweep = CoreSweep::builder(CoreKind::Adder, FpFormat::SINGLE)
        .cached(&cache)
        .run(&tech, SynthesisOptions::SPEED);
    println!("single-precision adder, pipeline-depth sweep:");
    println!("  min: {}", sweep.min());
    println!("  opt: {}", sweep.opt());
    println!("  max: {}", sweep.max());
    let opt_stages = sweep.opt().stages;

    // --- 2. Cycle-accurate simulation of the optimal configuration,
    // over the batched streaming path (bit-identical to clocking by
    // hand, one call).
    let design = AdderDesign::new(FpFormat::SINGLE);
    let mut unit = design.simulator(opt_stages);
    let (a, b) = (1.5f32, 2.25f32);
    let results = unit.run_batch(&[(a.to_bits() as u64, b.to_bits() as u64)]);
    let (bits, flags) = results[0];
    println!(
        "\n{a} + {b} = {} (latency = {} stages, flags: {flags:?})",
        f32::from_bits(bits as u32),
        unit.latency(),
    );

    // --- 3. Matrix multiplication on the linear array.
    let fmt = FpFormat::SINGLE;
    let n = 8;
    let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.37).sin());
    let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + j) as f64 * 0.11).cos());
    let (c, stats) = LinearArray::multiply_batched(
        fmt,
        RoundMode::NearestEven,
        7, // multiplier stages
        9, // adder stages
        &a,
        &b,
        UnitBackend::Fast,
    );
    let err = fpfpga::matmul::reference::error_vs_f64(&c, &a, &b);
    println!(
        "\n{n}x{n} matmul: {} cycles, {} useful MACs, {} padded, max |err| vs f64 = {err:.2e}",
        stats.cycles, stats.useful_macs, stats.pad_macs
    );
    println!("c[0][0] = {:.6}", c.get_f64(0, 0));
}
