//! Design-space exploration across every knob the paper identifies:
//! pipeline depth, tool optimization objectives, register-placement
//! strategy, and the forced priority-encoder synthesis.
//!
//! Prints, for each precision, where the throughput/area optimum sits
//! and how much each knob moves it — the quantitative version of the
//! paper's "note that using a different optimization objective … gives
//! vastly different results".
//!
//! Run with: `cargo run --release --example design_space_explorer`

use fpfpga::fabric::timing;
use fpfpga::prelude::*;

fn main() {
    let tech = Tech::virtex2pro();

    println!("=== optimization-objective sensitivity (32-bit adder) ===");
    let design = AdderDesign::new(FpFormat::SINGLE);
    for (label, opts) in [
        ("synth: speed, P&R: speed", SynthesisOptions::SPEED),
        ("synth: area,  P&R: area ", SynthesisOptions::AREA),
        (
            "synth: speed, P&R: area ",
            SynthesisOptions {
                synthesis: Objective::Speed,
                par: Objective::Area,
            },
        ),
        (
            "synth: area,  P&R: speed",
            SynthesisOptions {
                synthesis: Objective::Area,
                par: Objective::Speed,
            },
        ),
    ] {
        let sweep = design.sweep(&tech, opts);
        let opt = timing::optimal(&sweep);
        println!(
            "  {label}: opt @ {:2} stages, {:4} slices, {:5.1} MHz, {:.4} MHz/slice",
            opt.stages,
            opt.slices,
            opt.clock_mhz,
            opt.freq_per_area()
        );
    }

    println!("\n=== register-placement strategy (64-bit adder netlist, 12 stages) ===");
    let netlist = AdderDesign::new(FpFormat::DOUBLE).netlist(&tech);
    for strategy in [
        PipelineStrategy::IterativeRefinement,
        PipelineStrategy::Balanced,
        PipelineStrategy::EndLoaded,
    ] {
        let r = timing::evaluate(&netlist, 12, strategy, SynthesisOptions::SPEED, &tech);
        println!("  {strategy:?}: {:5.1} MHz, {} FFs", r.clock_mhz, r.ffs);
    }

    println!("\n=== forced vs inferred priority encoder (64-bit adder) ===");
    for forced in [true, false] {
        let d = AdderDesign {
            force_priority_encoder: forced,
            ..AdderDesign::new(FpFormat::DOUBLE)
        };
        let sweep = d.sweep(&tech, SynthesisOptions::SPEED);
        let best = sweep.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
        println!("  forced = {forced}: peak {best:.1} MHz");
    }

    println!("\n=== throughput/area optimum per precision ===");
    let analysis = PrecisionAnalysis::run(&tech, SynthesisOptions::SPEED);
    for (label, sweeps) in [
        ("adder", &analysis.adders),
        ("multiplier", &analysis.multipliers),
    ] {
        for s in sweeps.iter() {
            let opt = s.opt();
            println!(
                "  {:6} {:>6}: opt @ {:2} stages  {:4} slices  {:5.1} MHz  ({:.4} MHz/slice; peak {:5.1} MHz @ {:2} stages)",
                label,
                s.format.to_string(),
                opt.stages,
                opt.slices,
                opt.clock_mhz,
                opt.freq_per_area(),
                s.fastest().clock_mhz,
                s.fastest().stages,
            );
        }
    }

    println!("\n=== metric choice matters: device GFLOPS under three selection rules ===");
    // The paper's Section 4.2 argument: picking units by max frequency
    // (ignoring area) can lower *device* performance.
    let tech = Tech::virtex2pro();
    for (rule, pick) in [
        ("max frequency ", Rule::Fastest),
        ("max freq/area ", Rule::Opt),
        ("min area @150M", Rule::CheapestAt(150.0)),
    ] {
        let add = CoreSweep::adder(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
        let mul = CoreSweep::multiplier(FpFormat::SINGLE, &tech, SynthesisOptions::SPEED);
        let (ra, rm) = (pick.select(&add), pick.select(&mul));
        let units = UnitSet::with_stages(
            FpFormat::SINGLE,
            ra.stages,
            rm.stages,
            &tech,
            SynthesisOptions::SPEED,
        );
        let fill = DeviceFill::new(Device::XC2VP125, &units, 64, &tech);
        println!(
            "  {rule}: adder {:2} st / mult {:2} st → {:3} PEs @ {:3.0} MHz = {:4.1} GFLOPS",
            ra.stages,
            rm.stages,
            fill.pe_count,
            fill.clock_mhz,
            fill.gflops()
        );
    }
}

/// A unit-selection rule for the metric-comparison ablation.
enum Rule {
    Fastest,
    Opt,
    CheapestAt(f64),
}

impl Rule {
    fn select<'a>(&self, sweep: &'a CoreSweep) -> &'a fpfpga::fabric::ImplementationReport {
        match self {
            Rule::Fastest => sweep.fastest(),
            Rule::Opt => sweep.opt(),
            Rule::CheapestAt(mhz) => sweep.cheapest_at(*mhz).unwrap_or_else(|| sweep.fastest()),
        }
    }
}
